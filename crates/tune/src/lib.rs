//! # cl-tune — online autotuning with a persistent performance cache
//!
//! The decision layer over the runtime's sensors (ROADMAP item 4). When a
//! program passes NULL for `local_work_size`, the runtime historically falls
//! back to a fixed heuristic — the paper's Figure 3 shows that heuristic
//! losing to a hand-tuned explicit size. This crate closes the loop:
//!
//! 1. **Static prior** — [`shortlist`] derives a small candidate set of
//!    (workgroup size, groups-per-chunk) configurations from the launch
//!    geometry and the kernel's architecture-independent
//!    [`KernelFeatures`] (lane classes, barrier count, arithmetic
//!    intensity). Every workgroup-size candidate is a divisor of the
//!    innermost global size ≤ the device cap, so every candidate is a
//!    *legal* explicit local size by construction.
//! 2. **Bandit refinement** — [`Tuner::decide`] runs successive halving
//!    over the shortlist: each surviving candidate gets
//!    [`SAMPLES_PER_ROUND`] measured launches per round (the PR 3
//!    profiling timestamps), the worse half is dropped each round, and the
//!    survivor converges. Candidates are ranked by their *minimum* sample:
//!    scheduler interference is additive and one-sided (a noisy neighbour
//!    only ever makes a launch slower), so with 3 samples per round the
//!    minimum estimates the uncontended cost far more robustly than the
//!    median, which one CI load spike out of three contaminates. The trial
//!    *count* for a given shortlist size is deterministic — only *which*
//!    candidate survives is measured — so report schedules stay
//!    drift-stable. The final pick is noise-floored with the PR 5 MAD
//!    machinery: candidates within `MAD_K · MAD` of the best are ties,
//!    resolved toward fewer dispatch chunks.
//! 3. **Persistent cache** — converged decisions are written to a
//!    cross-process JSON cache keyed by `(kernel name, geometry, device,
//!    workers)`: versioned schema, atomic tmp+rename writes, merge with
//!    concurrent writers on save, corrupt/stale/foreign-schema content
//!    ignored rather than fatal. A second process starting cold reuses the
//!    decisions with zero additional trials.
//!
//! Knobs: `CL_TUNE=0/1` opts a [`QueueConfig`](../ocl_rt) into the
//! per-process tuner; `CL_TUNE_CACHE=<path>` overrides the cache location
//! (default `target/tune-cache.json`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use cl_analyze::{KernelFeatures, LaneClass};
use cl_util::json::{self, Json};
use cl_util::sync::Mutex;

/// Cache-file schema version; files carrying any other version are ignored
/// wholesale (stale ≠ fatal).
pub const CACHE_SCHEMA: u32 = 1;

/// Measured launches per candidate per halving round.
pub const SAMPLES_PER_ROUND: usize = 3;

/// Noise multiplier on the winner's MAD: candidates within `MAD_K · MAD`
/// of the best are statistical ties (same constant family as the PR 5
/// bench gate).
pub const MAD_K: f64 = 6.0;

/// Hard cap on the candidate shortlist: successive halving over 8
/// candidates costs `3·(8+4+2) = 42` trials, small enough to amortize in
/// one benchmark warmup loop.
pub const MAX_CANDIDATES: usize = 8;

/// Hard cap on a groups-per-chunk candidate (mirrors
/// `cl_analyze::coarsen::MAX_FACTOR`).
pub const MAX_CHUNK: usize = 64;

/// Identity of one tuning problem: a kernel at a geometry on a device with
/// a worker count. Everything that changes the optimal configuration is in
/// the key; everything else (buffer contents, queue flags) is not.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TuneKey {
    pub kernel: String,
    pub global: [usize; 3],
    pub dims: usize,
    pub device: String,
    pub workers: usize,
}

/// One launch configuration the tuner can choose: the innermost workgroup
/// size (always a divisor of `global[0]`) and the requested groups-fused-
/// per-dispatch-chunk (clamped at enqueue time to the coarsening prover's
/// `Proven{k_max}` certificate — the tuner proposes, the prover disposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TunedConfig {
    pub wg: usize,
    pub chunk: usize,
}

impl TunedConfig {
    pub fn label(&self) -> String {
        format!("wg={} chunk={}", self.wg, self.chunk)
    }
}

/// What an enqueue should do, per [`Tuner::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Use this configuration; the decision is final (cacheable).
    Converged(TunedConfig),
    /// Run this configuration as a measured trial and report the launch
    /// time back via [`Tuner::observe`]. Not cacheable — the next enqueue
    /// may try a different candidate.
    Trial(TunedConfig),
    /// The tuner has nothing to say (empty shortlist); use the untuned
    /// fallback heuristic.
    Fallback,
}

/// The launch geometry as the prior sees it (no kernel object needed).
#[derive(Debug, Clone, Copy)]
pub struct TuneGeometry {
    pub global: [usize; 3],
    pub dims: usize,
}

impl TuneGeometry {
    fn outer_items(&self) -> usize {
        self.global[1].max(1) * self.global[2].max(1)
    }
}

// ---------------------------------------------------------------------------
// Static prior
// ---------------------------------------------------------------------------

/// All divisors of `n` that are ≤ `cap`, ascending.
fn divisors_at_most(n: usize, cap: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut high = Vec::new();
    let mut d = 1usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            if d <= cap {
                out.push(d);
            }
            let q = n / d;
            if q != d && q <= cap {
                high.push(q);
            }
        }
        d += 1;
    }
    high.reverse();
    out.extend(high);
    out.sort_unstable();
    out
}

fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    let cap = cap.min(n).max(1);
    (1..=cap).rev().find(|&d| n.is_multiple_of(d)).unwrap_or(1)
}

/// Does any lane of the kernel gather or diverge? Such kernels prefer
/// smaller groups (less work serialized behind the worst lane).
fn irregular(features: &KernelFeatures) -> bool {
    features.barrier_count > 0
        || features
            .lanes
            .iter()
            .any(|l| matches!(l.class, LaneClass::Gather | LaneClass::Divergent))
}

/// Static prior score for a workgroup-size candidate — lower is better.
/// Streaming kernels want large groups (dispatch amortization); irregular
/// or barrier-heavy kernels want moderate ones (tail latency and
/// divergence); the distance is measured in octaves so 128-vs-256 matters
/// as much as 16-vs-32.
fn prior_score(wg: usize, features: Option<&KernelFeatures>) -> f64 {
    let ideal: f64 = match features {
        Some(f) if irregular(f) => 64.0,
        Some(f) if f.arith_mem_ratio >= 4.0 => 128.0,
        _ => 256.0,
    };
    ((wg.max(1) as f64).log2() - ideal.log2()).abs()
}

/// Build the candidate shortlist for one tuning problem.
///
/// * `features` — the kernel's static feature record at the default
///   resolution, when it publishes an access spec.
/// * `max_wg` — the device workgroup-size cap (`Device::default_wg`).
/// * `workers` — pool workers (load-balance bound for chunk candidates).
/// * `heuristic_wg` — the untuned NULL-local heuristic's pick, always
///   included so the tuner can never do worse than the fallback on the
///   configurations it actually measured.
///
/// Every candidate's `wg` divides `global[0]` and is ≤ `max_wg`; every
/// candidate's `chunk` is ≤ the group count and [`MAX_CHUNK`]. Deterministic:
/// same inputs, same list, same order.
pub fn shortlist(
    geom: &TuneGeometry,
    features: Option<&KernelFeatures>,
    max_wg: usize,
    workers: usize,
    heuristic_wg: usize,
) -> Vec<TunedConfig> {
    let g0 = geom.global[0];
    if g0 == 0 {
        return Vec::new();
    }
    let cap = max_wg.min(g0).max(1);
    let divs = divisors_at_most(g0, cap);

    // Ladder targets: one candidate near each power-of-four rung, plus the
    // cap and the untuned heuristic's pick.
    let mut wgs: Vec<usize> = Vec::new();
    for target in [16usize, 64, 256, cap] {
        let pick = largest_divisor_at_most(g0, target.min(cap));
        if !wgs.contains(&pick) {
            wgs.push(pick);
        }
    }
    if divs.len() <= 4 {
        // Divisor-poor (skewed) sizes: take every legal size there is.
        for &d in &divs {
            if !wgs.contains(&d) {
                wgs.push(d);
            }
        }
    }
    if heuristic_wg >= 1
        && g0.is_multiple_of(heuristic_wg)
        && heuristic_wg <= cap
        && !wgs.contains(&heuristic_wg)
    {
        wgs.push(heuristic_wg);
    }

    // Chunk candidates per workgroup size: uncoarsened, and the load-
    // balance-bounded fused factor (when they differ).
    let mut out: Vec<TunedConfig> = Vec::new();
    for &wg in &wgs {
        let n_groups = (g0 / wg) * geom.outer_items();
        let balance = (n_groups / (4 * workers.max(1))).clamp(1, MAX_CHUNK);
        out.push(TunedConfig { wg, chunk: 1 });
        if balance > 1 {
            out.push(TunedConfig { wg, chunk: balance });
        }
    }

    // Rank by the static prior (stable: ties keep insertion order, so the
    // heuristic pick survives truncation deterministically) and truncate.
    let mut indexed: Vec<(usize, TunedConfig)> = out.into_iter().enumerate().collect();
    indexed.sort_by(|(ia, a), (ib, b)| {
        prior_score(a.wg, features)
            .partial_cmp(&prior_score(b.wg, features))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ia.cmp(ib))
    });
    let mut out: Vec<TunedConfig> = indexed.into_iter().map(|(_, c)| c).collect();
    out.truncate(MAX_CANDIDATES);
    out.sort_by_key(|c| (c.wg, c.chunk));
    out.dedup();
    out
}

/// Total measured trials successive halving spends on a shortlist of `n`
/// candidates: `SAMPLES_PER_ROUND · (n + ⌈n/2⌉ + … + 2)`. Deterministic —
/// the convergence *budget* the harness gates against.
pub fn schedule_trials(n: usize) -> usize {
    let mut total = 0usize;
    let mut len = n;
    while len > 1 {
        total += SAMPLES_PER_ROUND * len;
        len = len.div_ceil(2);
    }
    if n == 1 {
        total = SAMPLES_PER_ROUND; // still sample the lone candidate once per round
    }
    total
}

// ---------------------------------------------------------------------------
// Bandit state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct CandState {
    cfg: TunedConfig,
    samples: Vec<f64>,
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n == 0 {
        return f64::INFINITY;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// Ranking statistic for candidate comparison. Interference noise on a
/// shared machine is additive and strictly one-sided, so the minimum of a
/// handful of samples tracks the uncontended launch cost; the median of 3
/// flips whenever a single load spike lands in the window.
fn min_ns(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::INFINITY, f64::min)
}

#[derive(Debug, Clone)]
enum KeyState {
    Exploring {
        /// Surviving candidates, in pinned schedule order.
        cands: Vec<CandState>,
        /// Next candidate index in the round-robin.
        next: usize,
        /// Samples each survivor must reach before the next halving.
        round_quota: usize,
        /// Trials performed by this process on this key.
        trials: usize,
    },
    Converged {
        cfg: TunedConfig,
        /// Total trials behind the decision (may come from another process
        /// via the cache file).
        trials: usize,
        /// Winning median in ns (0.0 when unknown/loaded without one).
        median_ns: f64,
        /// Trials performed by *this process* on this key (0 when the
        /// decision was reused from the persistent cache).
        session_trials: usize,
    },
}

// ---------------------------------------------------------------------------
// Tuner
// ---------------------------------------------------------------------------

/// The per-process tuner: bandit state per [`TuneKey`] plus the persistent
/// cache file. Cheap to share (`Arc`); all state behind one mutex — the
/// converged hot path never takes it because converged decisions ride the
/// runtime's enqueue-plan cache.
pub struct Tuner {
    path: PathBuf,
    state: Mutex<BTreeMap<TuneKey, KeyState>>,
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tuner({})", self.path.display())
    }
}

/// Distinguishes concurrent in-process writers' tmp files; cross-process
/// uniqueness comes from the pid.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Tuner {
    /// A tuner over the cache file at `path` (`None` = the
    /// `CL_TUNE_CACHE`/default path). Loads whatever valid entries the file
    /// holds; a missing, corrupt, truncated, or foreign-schema file yields
    /// an empty (not failed) tuner.
    pub fn new(path: Option<PathBuf>) -> Self {
        let path = path.unwrap_or_else(Self::cache_path_from_env);
        let mut state = BTreeMap::new();
        for (key, cfg, trials, median_ns) in load_cache(&path) {
            state.insert(
                key,
                KeyState::Converged {
                    cfg,
                    trials,
                    median_ns,
                    session_trials: 0,
                },
            );
        }
        Tuner {
            path,
            state: Mutex::new(state),
        }
    }

    /// `CL_TUNE=1`/`true` opts queues into the process tuner (default off).
    pub fn enabled_from_env() -> bool {
        std::env::var("CL_TUNE")
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false)
    }

    /// `CL_TUNE_CACHE=<path>` wins over the default `target/tune-cache.json`.
    pub fn cache_path_from_env() -> PathBuf {
        std::env::var("CL_TUNE_CACHE")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/tune-cache.json"))
    }

    /// The shared per-process tuner (lazily built from the environment).
    /// Serving tenants and every `CL_TUNE=1` queue share this instance, so
    /// traffic from many clients compounds into one learning curve.
    pub fn process() -> &'static Arc<Tuner> {
        static TUNER: OnceLock<Arc<Tuner>> = OnceLock::new();
        TUNER.get_or_init(|| Arc::new(Tuner::new(None)))
    }

    /// The cache file this tuner loads from and persists to.
    pub fn cache_path(&self) -> &Path {
        &self.path
    }

    /// Decide what an enqueue should run. `candidates` is called at most
    /// once per key (the first time the key is seen) to build the
    /// shortlist.
    pub fn decide<F>(&self, key: &TuneKey, candidates: F) -> Decision
    where
        F: FnOnce() -> Vec<TunedConfig>,
    {
        let mut state = self.state.lock();
        if !state.contains_key(key) {
            let shortlist = candidates();
            if shortlist.is_empty() {
                // Remember the refusal so the closure doesn't re-run on
                // every enqueue of an untunable launch.
                state.insert(
                    key.clone(),
                    KeyState::Exploring {
                        cands: Vec::new(),
                        next: 0,
                        round_quota: 0,
                        trials: 0,
                    },
                );
            } else if shortlist.len() == 1 {
                state.insert(
                    key.clone(),
                    KeyState::Converged {
                        cfg: shortlist[0],
                        trials: 0,
                        median_ns: 0.0,
                        session_trials: 0,
                    },
                );
            } else {
                state.insert(
                    key.clone(),
                    KeyState::Exploring {
                        cands: shortlist
                            .into_iter()
                            .map(|cfg| CandState {
                                cfg,
                                samples: Vec::new(),
                            })
                            .collect(),
                        next: 0,
                        round_quota: SAMPLES_PER_ROUND,
                        trials: 0,
                    },
                );
            }
        }
        match state.get_mut(key).expect("inserted above") {
            KeyState::Converged { cfg, .. } => Decision::Converged(*cfg),
            KeyState::Exploring { cands, next, .. } => {
                if cands.is_empty() {
                    return Decision::Fallback;
                }
                let cfg = cands[*next % cands.len()].cfg;
                Decision::Trial(cfg)
            }
        }
    }

    /// Report one measured launch time (ns) for a trial configuration.
    /// Advances the pinned round-robin schedule; on the last sample of a
    /// halving round drops the worse half, and on convergence persists the
    /// decision to the cache file (best-effort: IO failure leaves the
    /// in-process decision intact).
    pub fn observe(&self, key: &TuneKey, cfg: TunedConfig, sample_ns: f64) {
        let mut state = self.state.lock();
        let Some(KeyState::Exploring {
            cands,
            next,
            round_quota,
            trials,
        }) = state.get_mut(key)
        else {
            return; // converged concurrently, or never decided: stale report
        };
        if cands.is_empty() {
            return;
        }
        let idx = *next % cands.len();
        if cands[idx].cfg != cfg {
            return; // out-of-schedule report (e.g. two queues racing); drop
        }
        cands[idx].samples.push(sample_ns.max(0.0));
        *trials += 1;
        *next = (idx + 1) % cands.len();

        // Halve once every survivor fills the round quota.
        if !cands.iter().all(|c| c.samples.len() >= *round_quota) {
            return;
        }
        let keep = cands.len().div_ceil(2);
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by(|&a, &b| {
            min_ns(&cands[a].samples)
                .partial_cmp(&min_ns(&cands[b].samples))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(keep);
        order.sort_unstable(); // keep schedule order stable across rounds
        let survivors: Vec<CandState> = order.iter().map(|&i| cands[i].clone()).collect();

        if survivors.len() == 1 {
            // Final round: noise-floored pick over the full last field, not
            // just the raw median winner — within MAD_K·MAD is a tie.
            let t = *trials;
            let (wcfg, wmed) = {
                let winner = self.final_pick(cands);
                (winner.cfg, median(&winner.samples))
            };
            state.insert(
                key.clone(),
                KeyState::Converged {
                    cfg: wcfg,
                    trials: t,
                    median_ns: wmed,
                    session_trials: t,
                },
            );
            drop(state);
            let _ = self.save();
            return;
        }
        *cands = survivors;
        *next = 0;
        *round_quota += SAMPLES_PER_ROUND;
        if cands.len() == 2 && *round_quota > SAMPLES_PER_ROUND * 16 {
            // Pathological tie loop guard: force a winner.
            let t = *trials;
            let (wcfg, wmed) = {
                let winner = self.final_pick(cands);
                (winner.cfg, median(&winner.samples))
            };
            state.insert(
                key.clone(),
                KeyState::Converged {
                    cfg: wcfg,
                    trials: t,
                    median_ns: wmed,
                    session_trials: t,
                },
            );
            drop(state);
            let _ = self.save();
        }
    }

    /// Noise-floored final selection: the best minimum wins; candidates
    /// within `MAD_K · MAD` of it are ties, resolved toward the larger
    /// `wg·chunk` (fewer dispatch chunks — the cheaper config when timing
    /// cannot tell them apart).
    fn final_pick<'a>(&self, cands: &'a [CandState]) -> &'a CandState {
        let best = cands
            .iter()
            .min_by(|a, b| {
                min_ns(&a.samples)
                    .partial_cmp(&min_ns(&b.samples))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty candidates");
        let floor = MAD_K * mad(&best.samples);
        let best_min = min_ns(&best.samples);
        cands
            .iter()
            .filter(|c| min_ns(&c.samples) <= best_min + floor)
            .max_by_key(|c| (c.cfg.wg * c.cfg.chunk, c.cfg.wg))
            .unwrap_or(best)
    }

    /// The converged decision for `key`, if any.
    pub fn converged(&self, key: &TuneKey) -> Option<TunedConfig> {
        match self.state.lock().get(key) {
            Some(KeyState::Converged { cfg, .. }) => Some(*cfg),
            _ => None,
        }
    }

    /// Total trials behind `key`'s state (including trials a previous
    /// process performed, when the decision came from the cache file).
    pub fn trials(&self, key: &TuneKey) -> usize {
        match self.state.lock().get(key) {
            Some(KeyState::Converged { trials, .. }) => *trials,
            Some(KeyState::Exploring { trials, .. }) => *trials,
            None => 0,
        }
    }

    /// Trials *this process* performed on `key` — 0 when the decision was
    /// reused from the persistent cache (the cold-start reuse guarantee the
    /// harness gates).
    pub fn session_trials(&self, key: &TuneKey) -> usize {
        match self.state.lock().get(key) {
            Some(KeyState::Converged { session_trials, .. }) => *session_trials,
            Some(KeyState::Exploring { trials, .. }) => *trials,
            None => 0,
        }
    }

    /// Keys this tuner holds a converged decision for.
    pub fn converged_keys(&self) -> Vec<TuneKey> {
        self.state
            .lock()
            .iter()
            .filter(|(_, s)| matches!(s, KeyState::Converged { .. }))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Persist every converged decision: read-merge-write with atomic
    /// tmp+rename, so concurrent writers never tear the file and a crash
    /// mid-write leaves the previous version intact.
    pub fn save(&self) -> std::io::Result<()> {
        // Merge entries already on disk (another process may have converged
        // keys we never saw); our own decisions win on conflict.
        let mut entries: BTreeMap<TuneKey, (TunedConfig, usize, f64)> = load_cache(&self.path)
            .into_iter()
            .map(|(k, cfg, trials, med)| (k, (cfg, trials, med)))
            .collect();
        {
            let state = self.state.lock();
            for (key, s) in state.iter() {
                if let KeyState::Converged {
                    cfg,
                    trials,
                    median_ns,
                    ..
                } = s
                {
                    entries.insert(key.clone(), (*cfg, *trials, *median_ns));
                }
            }
        }
        let mut body = String::new();
        body.push_str("{\n");
        body.push_str(&format!("  \"schema\": {CACHE_SCHEMA},\n"));
        body.push_str("  \"entries\": [\n");
        let n = entries.len();
        for (i, (key, (cfg, trials, median_ns))) in entries.into_iter().enumerate() {
            body.push_str(&format!(
                "    {{ \"kernel\": \"{}\", \"global\": [{}, {}, {}], \"dims\": {}, \
                 \"device\": \"{}\", \"workers\": {}, \"wg\": {}, \"chunk\": {}, \
                 \"trials\": {}, \"median_ns\": {:.1} }}{}\n",
                json::escape(&key.kernel),
                key.global[0],
                key.global[1],
                key.global[2],
                key.dims,
                json::escape(&key.device),
                key.workers,
                cfg.wg,
                cfg.chunk,
                trials,
                median_ns,
                if i + 1 < n { "," } else { "" },
            ));
        }
        body.push_str("  ]\n}\n");

        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = self.path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, body)?;
        let renamed = std::fs::rename(&tmp, &self.path);
        if renamed.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        renamed
    }
}

/// Parse the cache file at `path` into converged entries. Anything that is
/// missing, unreadable, syntactically corrupt, the wrong schema, or
/// per-entry malformed is skipped silently — the cache is an accelerator,
/// never a failure source.
fn load_cache(path: &Path) -> Vec<(TuneKey, TunedConfig, usize, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = json::parse(&text) else {
        return Vec::new();
    };
    if doc.get("schema").and_then(Json::as_f64) != Some(CACHE_SCHEMA as f64) {
        return Vec::new();
    }
    let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for e in entries {
        let (Some(kernel), Some(device)) = (
            e.get("kernel").and_then(Json::as_str),
            e.get("device").and_then(Json::as_str),
        ) else {
            continue;
        };
        let num = |k: &str| e.get(k).and_then(Json::as_f64);
        let Some(global) = e.get("global").and_then(Json::as_arr) else {
            continue;
        };
        if global.len() != 3 || global.iter().any(|g| g.as_f64().is_none()) {
            continue;
        }
        let (Some(dims), Some(workers), Some(wg), Some(chunk)) =
            (num("dims"), num("workers"), num("wg"), num("chunk"))
        else {
            continue;
        };
        if wg < 1.0 || chunk < 1.0 {
            continue;
        }
        let g = [
            global[0].as_f64().unwrap_or(0.0) as usize,
            global[1].as_f64().unwrap_or(0.0) as usize,
            global[2].as_f64().unwrap_or(0.0) as usize,
        ];
        // Stale-entry guard: a decision whose workgroup size no longer
        // divides the recorded geometry (hand-edited or bit-rotted file)
        // would produce illegal explicit locals — skip it.
        if g[0] == 0 || !g[0].is_multiple_of(wg as usize) {
            continue;
        }
        out.push((
            TuneKey {
                kernel: kernel.to_string(),
                global: g,
                dims: dims as usize,
                device: device.to_string(),
                workers: workers as usize,
            },
            TunedConfig {
                wg: wg as usize,
                chunk: chunk as usize,
            },
            num("trials").unwrap_or(0.0) as usize,
            num("median_ns").unwrap_or(0.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kernel: &str, n: usize) -> TuneKey {
        TuneKey {
            kernel: kernel.to_string(),
            global: [n, 1, 1],
            dims: 1,
            device: "test-device".to_string(),
            workers: 2,
        }
    }

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cl-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn shortlist_is_legal_and_deterministic() {
        let geom = TuneGeometry {
            global: [10_000, 1, 1],
            dims: 1,
        };
        let a = shortlist(&geom, None, 512, 2, 500);
        let b = shortlist(&geom, None, 512, 2, 500);
        assert_eq!(a, b, "prior must be deterministic");
        assert!(!a.is_empty() && a.len() <= MAX_CANDIDATES);
        for c in &a {
            assert_eq!(10_000 % c.wg, 0, "wg must divide global: {c:?}");
            assert!(c.wg <= 512);
            assert!(c.chunk >= 1 && c.chunk <= MAX_CHUNK);
            assert!(c.chunk <= 10_000 / c.wg, "chunk beyond group count: {c:?}");
        }
        assert!(
            a.iter().any(|c| c.wg == 500),
            "heuristic pick must be a candidate: {a:?}"
        );
    }

    #[test]
    fn shortlist_survives_prime_sizes() {
        let geom = TuneGeometry {
            global: [9973, 1, 1],
            dims: 1,
        };
        let cands = shortlist(&geom, None, 512, 2, 1);
        assert!(!cands.is_empty());
        assert!(
            cands.iter().all(|c| c.wg == 1),
            "prime size has one divisor"
        );
    }

    #[test]
    fn halving_converges_to_fastest_with_pinned_trial_count() {
        let t = Tuner::new(Some(tmpfile("halving.json")));
        let k = key("bench", 4096);
        let cands = vec![
            TunedConfig { wg: 16, chunk: 1 },
            TunedConfig { wg: 64, chunk: 1 },
            TunedConfig { wg: 256, chunk: 1 },
            TunedConfig { wg: 256, chunk: 4 },
        ];
        let budget = schedule_trials(cands.len());
        let mut trials = 0usize;
        loop {
            match t.decide(&k, || cands.clone()) {
                Decision::Converged(cfg) => {
                    // wg=256 chunk=4 is fastest in the synthetic cost below.
                    assert_eq!(cfg, TunedConfig { wg: 256, chunk: 4 });
                    break;
                }
                Decision::Trial(cfg) => {
                    trials += 1;
                    assert!(trials <= budget, "exceeded pinned budget {budget}");
                    let cost = 1000.0 / (cfg.wg as f64) + 100.0 / (cfg.chunk as f64);
                    t.observe(&k, cfg, cost);
                }
                Decision::Fallback => panic!("non-empty shortlist must not fall back"),
            }
        }
        assert_eq!(t.trials(&k), budget, "halving schedule is deterministic");
        assert_eq!(t.session_trials(&k), budget);
    }

    #[test]
    fn empty_shortlist_falls_back_once() {
        let t = Tuner::new(Some(tmpfile("fallback.json")));
        let k = key("opaque", 7);
        let mut calls = 0;
        for _ in 0..3 {
            let d = t.decide(&k, || {
                calls += 1;
                Vec::new()
            });
            assert_eq!(d, Decision::Fallback);
        }
        assert_eq!(calls, 1, "candidate builder runs once per key");
    }

    #[test]
    fn cache_round_trips_and_reuses_with_zero_session_trials() {
        let path = tmpfile("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let k = key("square", 1024);
        {
            let t = Tuner::new(Some(path.clone()));
            let cands = vec![
                TunedConfig { wg: 64, chunk: 1 },
                TunedConfig { wg: 256, chunk: 2 },
            ];
            loop {
                match t.decide(&k, || cands.clone()) {
                    Decision::Converged(_) => break,
                    Decision::Trial(cfg) => t.observe(&k, cfg, cfg.wg as f64),
                    Decision::Fallback => unreachable!(),
                }
            }
            assert!(t.session_trials(&k) > 0);
        }
        let t2 = Tuner::new(Some(path.clone()));
        match t2.decide(&k, || panic!("cached key must not rebuild candidates")) {
            Decision::Converged(cfg) => assert_eq!(cfg.wg, 64, "64 was measured faster"),
            other => panic!("expected converged decision from cache, got {other:?}"),
        }
        assert_eq!(t2.session_trials(&k), 0, "cold-start reuse costs no trials");
        assert!(t2.trials(&k) > 0, "persisted trial count survives");
    }

    #[test]
    fn corrupt_wrong_schema_and_stale_entries_are_ignored() {
        for (name, content) in [
            ("corrupt.json", "{ not json at all"),
            ("truncated.json", "{\"schema\": 1, \"entries\": [ {\"ker"),
            ("schema.json", "{\"schema\": 99, \"entries\": []}"),
            (
                "stale.json",
                // wg 7 does not divide global 1024: must be skipped.
                "{\"schema\": 1, \"entries\": [{\"kernel\": \"k\", \"global\": [1024, 1, 1], \
                 \"dims\": 1, \"device\": \"d\", \"workers\": 2, \"wg\": 7, \"chunk\": 1, \
                 \"trials\": 9, \"median_ns\": 1.0}]}",
            ),
        ] {
            let path = tmpfile(name);
            std::fs::write(&path, content).unwrap();
            let t = Tuner::new(Some(path));
            assert!(
                t.converged_keys().is_empty(),
                "{name}: bad cache must load empty, not fail"
            );
        }
    }

    #[test]
    fn save_merges_with_foreign_entries() {
        let path = tmpfile("merge.json");
        let _ = std::fs::remove_file(&path);
        let ka = key("a", 256);
        let kb = key("b", 256);
        let converge = |t: &Tuner, k: &TuneKey| loop {
            match t.decide(k, || {
                vec![
                    TunedConfig { wg: 16, chunk: 1 },
                    TunedConfig { wg: 256, chunk: 1 },
                ]
            }) {
                Decision::Converged(_) => break,
                Decision::Trial(cfg) => t.observe(k, cfg, 1.0 / cfg.wg as f64),
                Decision::Fallback => unreachable!(),
            }
        };
        let t1 = Tuner::new(Some(path.clone()));
        converge(&t1, &ka);
        // A second tuner (fresh process analog) converges a different key;
        // its save must keep t1's entry.
        let t2 = Tuner::new(Some(path.clone()));
        converge(&t2, &kb);
        let t3 = Tuner::new(Some(path));
        assert_eq!(t3.converged_keys().len(), 2, "merge-on-save keeps both");
    }

    #[test]
    fn schedule_trials_matches_halving() {
        assert_eq!(schedule_trials(1), SAMPLES_PER_ROUND);
        assert_eq!(schedule_trials(2), SAMPLES_PER_ROUND * 2);
        assert_eq!(schedule_trials(4), SAMPLES_PER_ROUND * (4 + 2));
        assert_eq!(schedule_trials(8), SAMPLES_PER_ROUND * (8 + 4 + 2));
    }
}
