//! # Benchmark gate: robust statistics, `BENCH.json` IO, baseline compare
//!
//! Support library for the `cl-bench` binary (DESIGN.md §12). Three
//! pieces:
//!
//! * **Statistics** — [`sample`] runs warmup-then-sample timing of a
//!   closure and [`BenchStats`] summarizes with *median/MAD/min* rather
//!   than mean/stddev: a single scheduler hiccup in a 1-core CI container
//!   shifts a mean by orders of magnitude but moves the median by at most
//!   one rank position.
//! * **Report IO** — [`Report`] is the schema of `BENCH.json`: the
//!   current run's records plus an optional `history` of labelled past
//!   runs (the committed baseline carries `pre-optimization` /
//!   `post-optimization` entries there). Writing uses `format!`; reading
//!   uses `cl_util::json`.
//! * **Gate** — [`compare`] implements the noise-aware threshold: a
//!   benchmark fails only when its median regresses beyond
//!   `max(abs_floor, rel_floor·base_median, k·max(base_MAD, cur_MAD))`.
//!   Each term guards a distinct failure mode — the absolute floor keeps
//!   nanosecond-scale benches from gating on timer granularity, the
//!   relative floor absorbs machine-to-machine constant factors, and the
//!   MAD term scales with however noisy *this* run actually was.

use cl_util::json::{self, Json};
use std::time::Instant;

/// Robust summary of one benchmark's samples, in nanoseconds per
/// operation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    pub median: f64,
    /// Median absolute deviation — robust spread estimate.
    pub mad: f64,
    pub min: f64,
    pub samples: usize,
}

/// Median of a slice (averages the two central ranks for even lengths).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

impl BenchStats {
    pub fn from_samples(xs: &[f64]) -> Self {
        BenchStats {
            median: median(xs),
            mad: mad(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            samples: xs.len(),
        }
    }
}

/// Warmup-then-sample measurement. Runs `f` (which performs `ops_per_call`
/// operations and may return a checksum to defeat dead-code elimination)
/// `warmup` times untimed, then `samples` times timed, and reports
/// ns-per-operation statistics.
pub fn sample<F: FnMut() -> u64>(
    warmup: usize,
    samples: usize,
    ops_per_call: u64,
    mut f: F,
) -> BenchStats {
    assert!(samples > 0 && ops_per_call > 0);
    let mut sink = 0u64;
    for _ in 0..warmup {
        sink = sink.wrapping_add(f());
    }
    let mut xs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t0.elapsed().as_nanos() as f64;
        xs.push(dt / ops_per_call as f64);
    }
    // Keep the checksum observable so the timed region cannot be elided.
    std::hint::black_box(sink);
    BenchStats::from_samples(&xs)
}

/// One benchmark's result as recorded in `BENCH.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub name: String,
    /// What one "operation" is, e.g. "ns/enqueue", "ns/group", "ns/task".
    pub unit: String,
    pub stats: BenchStats,
}

/// A labelled past run embedded in a report's `history` array.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    pub label: String,
    pub benches: Vec<BenchRecord>,
}

/// Where a baseline was recorded: attached by `cl-bench
/// --refresh-baseline` and echoed by the gate on failure, so a regression
/// report always names the machine and revision it was measured against.
/// Optional in the wire format — reports without it still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    pub host: String,
    pub workers: usize,
    pub git_rev: String,
    /// UTC date the baseline was recorded, `YYYY-MM-DD`.
    pub date: String,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "host={} workers={} git={} date={}",
            self.host, self.workers, self.git_rev, self.date
        )
    }
}

/// The full `BENCH.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub schema: u32,
    pub workers: usize,
    pub provenance: Option<Provenance>,
    pub benches: Vec<BenchRecord>,
    pub history: Vec<HistoryEntry>,
}

pub const SCHEMA_VERSION: u32 = 1;

impl Report {
    pub fn new(workers: usize, benches: Vec<BenchRecord>) -> Self {
        Report {
            schema: SCHEMA_VERSION,
            workers,
            provenance: None,
            benches,
            history: Vec::new(),
        }
    }

    pub fn find(&self, name: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Serialize to the `BENCH.json` wire format.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", self.schema));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        if let Some(p) = &self.provenance {
            s.push_str(&format!(
                "  \"provenance\": {{ \"host\": \"{}\", \"workers\": {}, \
                 \"git_rev\": \"{}\", \"date\": \"{}\" }},\n",
                json::escape(&p.host),
                p.workers,
                json::escape(&p.git_rev),
                json::escape(&p.date),
            ));
        }
        s.push_str("  \"benches\": [\n");
        s.push_str(&records_json(&self.benches, "    "));
        s.push_str("  ],\n");
        s.push_str("  \"history\": [\n");
        for (i, h) in self.history.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"label\": \"{}\", \"benches\": [\n",
                json::escape(&h.label)
            ));
            s.push_str(&records_json(&h.benches, "      "));
            s.push_str("    ] }");
            s.push_str(if i + 1 < self.history.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Parse a `BENCH.json` document, validating the schema version.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let schema = field_f64(&v, "schema")? as u32;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let workers = field_f64(&v, "workers")? as usize;
        // Provenance is optional and tolerated-malformed: a hand-edited or
        // pre-provenance baseline must still gate.
        let provenance = v.get("provenance").and_then(|p| {
            Some(Provenance {
                host: p.get("host").and_then(Json::as_str)?.to_string(),
                workers: p.get("workers").and_then(Json::as_f64)? as usize,
                git_rev: p.get("git_rev").and_then(Json::as_str)?.to_string(),
                date: p.get("date").and_then(Json::as_str)?.to_string(),
            })
        });
        let benches = parse_records(v.get("benches").ok_or("missing 'benches'")?)?;
        let history = match v.get("history") {
            None => Vec::new(),
            Some(h) => {
                let arr = h.as_arr().ok_or("'history' must be an array")?;
                let mut out = Vec::with_capacity(arr.len());
                for e in arr {
                    out.push(HistoryEntry {
                        label: e
                            .get("label")
                            .and_then(Json::as_str)
                            .ok_or("history entry missing 'label'")?
                            .to_string(),
                        benches: parse_records(
                            e.get("benches").ok_or("history entry missing 'benches'")?,
                        )?,
                    });
                }
                out
            }
        };
        Ok(Report {
            schema,
            workers,
            provenance,
            benches,
            history,
        })
    }
}

fn records_json(records: &[BenchRecord], indent: &str) -> String {
    let mut s = String::new();
    for (i, b) in records.iter().enumerate() {
        s.push_str(&format!(
            "{indent}{{ \"name\": \"{}\", \"unit\": \"{}\", \"median\": {:.1}, \"mad\": {:.1}, \"min\": {:.1}, \"samples\": {} }}",
            json::escape(&b.name),
            json::escape(&b.unit),
            b.stats.median,
            b.stats.mad,
            b.stats.min,
            b.stats.samples,
        ));
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn parse_records(v: &Json) -> Result<Vec<BenchRecord>, String> {
    let arr = v.as_arr().ok_or("'benches' must be an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for b in arr {
        out.push(BenchRecord {
            name: b
                .get("name")
                .and_then(Json::as_str)
                .ok_or("bench missing 'name'")?
                .to_string(),
            unit: b
                .get("unit")
                .and_then(Json::as_str)
                .ok_or("bench missing 'unit'")?
                .to_string(),
            stats: BenchStats {
                median: field_f64(b, "median")?,
                mad: field_f64(b, "mad")?,
                min: field_f64(b, "min")?,
                samples: field_f64(b, "samples")? as usize,
            },
        });
    }
    Ok(out)
}

/// Gate thresholds. A benchmark regresses only when
/// `cur.median - base.median > max(abs_floor_ns, rel_floor·base.median,
/// mad_k·max(base.mad, cur.mad))`.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Absolute slack in ns: differences below timer/scheduler granularity
    /// never gate.
    pub abs_floor_ns: f64,
    /// Relative slack as a fraction of the baseline median.
    pub rel_floor: f64,
    /// Noise multiplier applied to the larger of the two runs' MADs.
    pub mad_k: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        // Generous by design: the gate must be quiet on a loaded 1-core CI
        // container and still catch the order-of-magnitude regressions
        // that matter (an accidental per-launch allocation, a lost fast
        // path). Tighten per-machine via cl-bench flags if you have quiet
        // hardware.
        GateConfig {
            abs_floor_ns: 25_000.0,
            rel_floor: 0.5,
            mad_k: 6.0,
        }
    }
}

/// Outcome of comparing one benchmark against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateVerdict {
    pub name: String,
    pub unit: String,
    pub base_median: f64,
    pub cur_median: f64,
    /// `cur_median - base_median` (positive = slower).
    pub delta: f64,
    /// The computed tolerance for this benchmark.
    pub allowed: f64,
    pub regressed: bool,
}

/// Compare a current run against a baseline. Benchmarks present in only
/// one of the two reports are skipped (new benchmarks don't fail the gate;
/// removed ones are reported by the caller from the returned names).
pub fn compare(base: &Report, cur: &Report, cfg: &GateConfig) -> Vec<GateVerdict> {
    let mut out = Vec::new();
    for cb in &cur.benches {
        let Some(bb) = base.find(&cb.name) else {
            continue;
        };
        let delta = cb.stats.median - bb.stats.median;
        let allowed = cfg
            .abs_floor_ns
            .max(cfg.rel_floor * bb.stats.median)
            .max(cfg.mad_k * bb.stats.mad.max(cb.stats.mad));
        out.push(GateVerdict {
            name: cb.name.clone(),
            unit: cb.unit.clone(),
            base_median: bb.stats.median,
            cur_median: cb.stats.median,
            delta,
            allowed,
            regressed: delta > allowed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, median: f64, mad: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            unit: "ns/op".to_string(),
            stats: BenchStats {
                median,
                mad,
                min: median * 0.9,
                samples: 20,
            },
        }
    }

    fn report(benches: Vec<BenchRecord>) -> Report {
        Report::new(4, benches)
    }

    #[test]
    fn median_odd_even_and_mad() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
        // Samples {1,1,1,1,100}: median 1, deviations {0,0,0,0,99} → MAD 0.
        // The outlier that would wreck a stddev is invisible to MAD.
        assert_eq!(mad(&[1.0, 1.0, 1.0, 1.0, 100.0]), 0.0);
        // {10,12,14,16,100}: median 14, deviations {4,2,0,2,86} → MAD 2.
        assert_eq!(mad(&[10.0, 12.0, 14.0, 16.0, 100.0]), 2.0);
    }

    #[test]
    fn sample_measures_and_counts() {
        let mut calls = 0u64;
        let s = sample(3, 7, 10, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 10, "3 warmup + 7 timed");
        assert_eq!(s.samples, 7);
        assert!(s.min >= 0.0 && s.median >= s.min);
    }

    #[test]
    fn gate_detects_clear_regression() {
        // Baseline 100µs median, tiny MAD; current 300µs. delta=200µs,
        // allowed = max(25µs, 50µs, 6·1µs) = 50µs → regression.
        let base = report(vec![rec("a", 100_000.0, 1_000.0)]);
        let cur = report(vec![rec("a", 300_000.0, 1_000.0)]);
        let v = &compare(&base, &cur, &GateConfig::default())[0];
        assert!(v.regressed, "{v:?}");
        assert_eq!(v.delta, 200_000.0);
    }

    #[test]
    fn gate_passes_improvement() {
        let base = report(vec![rec("a", 100_000.0, 1_000.0)]);
        let cur = report(vec![rec("a", 40_000.0, 1_000.0)]);
        let v = &compare(&base, &cur, &GateConfig::default())[0];
        assert!(!v.regressed, "improvements never gate: {v:?}");
        assert!(v.delta < 0.0);
    }

    #[test]
    fn gate_passes_noise_within_k_mad() {
        // delta=120µs exceeds the abs (25µs) and rel (50µs) floors, but the
        // baseline was noisy: MAD 25µs → allowed = 6·25µs = 150µs.
        let base = report(vec![rec("a", 100_000.0, 25_000.0)]);
        let cur = report(vec![rec("a", 220_000.0, 2_000.0)]);
        let v = &compare(&base, &cur, &GateConfig::default())[0];
        assert!(!v.regressed, "noise within k·MAD must pass: {v:?}");
        // And a *current*-run noise spike widens tolerance symmetrically.
        let cur2 = report(vec![rec("a", 220_000.0, 30_000.0)]);
        let base2 = report(vec![rec("a", 100_000.0, 1_000.0)]);
        assert!(!compare(&base2, &cur2, &GateConfig::default())[0].regressed);
    }

    #[test]
    fn gate_abs_floor_protects_tiny_benches() {
        // 2µs → 20µs is a 10× regression but under the 25µs absolute
        // floor: sub-granularity, must pass.
        let base = report(vec![rec("a", 2_000.0, 100.0)]);
        let cur = report(vec![rec("a", 20_000.0, 100.0)]);
        assert!(!compare(&base, &cur, &GateConfig::default())[0].regressed);
        // With the floor lowered, the same delta gates.
        let tight = GateConfig {
            abs_floor_ns: 1_000.0,
            rel_floor: 0.5,
            mad_k: 6.0,
        };
        assert!(compare(&base, &cur, &tight)[0].regressed);
    }

    #[test]
    fn gate_skips_unmatched_benches() {
        let base = report(vec![rec("a", 1.0, 0.0), rec("gone", 1.0, 0.0)]);
        let cur = report(vec![rec("a", 1.0, 0.0), rec("new", 9e9, 0.0)]);
        let vs = compare(&base, &cur, &GateConfig::default());
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].name, "a");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = report(vec![
            rec("enqueue/empty-1g", 12_345.5, 321.25),
            rec("dispatch/wg64", 789.0, 10.0),
        ]);
        r.history.push(HistoryEntry {
            label: "pre-optimization".to_string(),
            benches: vec![rec("enqueue/empty-1g", 20_000.0, 400.0)],
        });
        r.provenance = Some(Provenance {
            host: "ci-box".to_string(),
            workers: 2,
            git_rev: "abc1234".to_string(),
            date: "2026-08-09".to_string(),
        });
        let text = r.to_json();
        let back = Report::from_json(&text).expect("round trip");
        // f64 values survive the fixed-point format: compare to 0.1 ns.
        assert_eq!(back.schema, r.schema);
        assert_eq!(back.workers, r.workers);
        assert_eq!(back.provenance, r.provenance);
        assert_eq!(back.benches.len(), 2);
        assert_eq!(back.history.len(), 1);
        assert_eq!(back.history[0].label, "pre-optimization");
        for (a, b) in r.benches.iter().zip(&back.benches) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.unit, b.unit);
            assert!((a.stats.median - b.stats.median).abs() < 0.1);
            assert!((a.stats.mad - b.stats.mad).abs() < 0.1);
            assert_eq!(a.stats.samples, b.stats.samples);
        }
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").is_err(), "missing fields");
        assert!(
            Report::from_json(r#"{"schema": 99, "workers": 1, "benches": []}"#).is_err(),
            "future schema must be refused, not misread"
        );
    }

    #[test]
    fn provenance_is_optional_and_tolerated_malformed() {
        // Pre-provenance baselines (no key at all) parse with None.
        let r = Report::from_json(r#"{"schema": 1, "workers": 1, "benches": []}"#).expect("no key");
        assert_eq!(r.provenance, None);
        // A malformed provenance object degrades to None, never an error.
        let r = Report::from_json(
            r#"{"schema": 1, "workers": 1, "provenance": {"host": 7}, "benches": []}"#,
        )
        .expect("bad provenance tolerated");
        assert_eq!(r.provenance, None);
    }
}
