//! Measurement statistics for the native plane — the paper's "measure
//! stable execution time without fluctuation" methodology (Section III-A)
//! made explicit: repeat, trim outliers, report mean ± deviation.

/// Summary of repeated timing samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Arithmetic mean of the (possibly trimmed) samples, seconds.
    pub mean: f64,
    /// Sample standard deviation, seconds.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Samples used after trimming.
    pub samples: usize,
}

impl Measurement {
    /// Coefficient of variation (`stddev / mean`); the stability criterion.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Summarize raw samples, trimming the top `trim_fraction` (e.g. 0.2 drops
/// the slowest 20% — scheduler hiccups, first-touch faults).
pub fn summarize(samples: &[f64], trim_fraction: f64) -> Measurement {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!((0.0..1.0).contains(&trim_fraction));
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let keep = ((sorted.len() as f64) * (1.0 - trim_fraction)).ceil() as usize;
    let kept = &sorted[..keep.max(1)];

    let n = kept.len() as f64;
    let mean = kept.iter().sum::<f64>() / n;
    let var = if kept.len() > 1 {
        kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Measurement {
        mean,
        stddev: var.sqrt(),
        min: sorted[0],
        samples: kept.len(),
    }
}

/// Run `f` repeatedly until the accumulated time reaches `min_total`
/// seconds (or `max_iters`), then summarize with 20% trimming — the
/// repeat-until-significant loop of Section III-A.
pub fn measure_stable(
    mut f: impl FnMut(),
    min_total: std::time::Duration,
    max_iters: u32,
) -> Measurement {
    // Warm-up.
    f();
    let mut samples = Vec::new();
    let t0 = std::time::Instant::now();
    while t0.elapsed() < min_total && (samples.len() as u32) < max_iters {
        let s = std::time::Instant::now();
        f();
        samples.push(s.elapsed().as_secs_f64());
    }
    if samples.is_empty() {
        let s = std::time::Instant::now();
        f();
        samples.push(s.elapsed().as_secs_f64());
    }
    summarize(&samples, 0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples_is_exact() {
        let m = summarize(&[2.0; 10], 0.2);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.stddev, 0.0);
        assert_eq!(m.min, 2.0);
        assert_eq!(m.cv(), 0.0);
    }

    #[test]
    fn trimming_drops_the_slow_tail() {
        // Nine fast samples and one pathological straggler.
        let mut samples = vec![1.0; 9];
        samples.push(100.0);
        let trimmed = summarize(&samples, 0.2);
        assert_eq!(trimmed.mean, 1.0, "{trimmed:?}");
        let untrimmed = summarize(&samples, 0.0);
        assert!(untrimmed.mean > 10.0);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        let m = summarize(&[1.0, 2.0, 3.0], 0.0);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.stddev - 1.0).abs() < 1e-12);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn single_sample_is_fine() {
        let m = summarize(&[0.5], 0.2);
        assert_eq!(m.mean, 0.5);
        assert_eq!(m.samples, 1);
    }

    #[test]
    fn measure_stable_returns_positive_times() {
        let mut x = 0u64;
        let m = measure_stable(
            || {
                for i in 0..10_000u64 {
                    x = x.wrapping_add(i * i);
                }
            },
            std::time::Duration::from_millis(5),
            1000,
        );
        assert!(m.mean > 0.0);
        assert!(m.min <= m.mean);
        assert!(m.samples >= 1);
        std::hint::black_box(x);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = summarize(&[], 0.2);
    }
}
