//! Experiments beyond the paper's figures: ablations of the design knobs
//! DESIGN.md calls out. Run via `repro --only extra-vectorizer` /
//! `--only extra-occupancy` / `--only extra-scheduling`.

use perf_model::{occupancy_table, CpuModel, CpuSpec, GpuSpec, Launch};

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

/// Ablation: the implicit vectorizer on/off across the simple apps —
/// quantifying how much of OpenCL's CPU performance comes from
/// cross-workitem SIMD (Section III-F's mechanism applied to Section III-B
/// workloads).
pub fn vectorizer_ablation(_cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "extra-vectorizer",
        "CPU throughput with the implicit vectorizer on vs off (speedup of on/off)",
    );
    let on = CpuModel::new(CpuSpec::xeon_e5645());
    let off = CpuModel::new(CpuSpec::xeon_e5645()).without_vectorizer();

    let apps = [
        ("Square", profiles::square(1), 1_000_000usize, 500usize),
        ("Vectoradd", profiles::vectoradd(1), 1_100_000, 500),
        (
            "Matrixmul(16x16)",
            profiles::matrixmul_tiled(320, 16),
            1_280_000,
            256,
        ),
        (
            "Blackscholes",
            profiles::blackscholes(512.0),
            1_638_400,
            256,
        ),
        ("ILP4 microbench", profiles::ilp(512, 4), 1 << 20, 256),
    ];
    let mut s = Series::new("vectorizer speedup");
    for (name, profile, n, wg) in apps {
        let launch = Launch::new(n, wg);
        s.push(
            name,
            off.kernel_time(&profile, launch) / on.kernel_time(&profile, launch),
        );
    }
    fig.series.push(s);
    fig.notes.push(
        "Compute-bound kernels approach the 4x SSE width; memory-bound kernels \
         (Square/Vectoradd at large n) gain mostly from amortized per-item overhead."
            .to_string(),
    );
    fig
}

/// Ablation: the GTX 580 occupancy table (the discrete structure behind
/// every GPU curve in Figures 3-4).
pub fn occupancy_figure(_cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "extra-occupancy",
        "GTX 580 occupancy vs workgroup size (no shared memory)",
    );
    let mut warps = Series::new("active warps/SM");
    let mut occ = Series::new("occupancy");
    for row in occupancy_table(&GpuSpec::gtx580(), 0.0) {
        warps.push(row.wg_size.to_string(), row.active_warps as f64);
        occ.push(row.wg_size.to_string(), row.occupancy);
    }
    fig.series.push(warps);
    fig.series.push(occ);
    fig.notes.push(
        "Below wg=192 the 8-block limit caps residency; the saturation points of the \
         paper's GPU curves are exactly this table's knees."
            .to_string(),
    );
    fig
}

/// Ablation: per-workgroup dispatch cost sweep — how the Figure 3 cliff
/// depends on the scheduler's task overhead.
pub fn scheduling_ablation(_cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "extra-scheduling",
        "Square wg-sweep shape vs per-group dispatch cost (normalized to wg=1000)",
    );
    for dispatch_ns in [0.0f64, 50.0, 200.0, 1000.0] {
        let mut spec = CpuSpec::xeon_e5645();
        spec.group_dispatch_ns = dispatch_ns;
        let model = CpuModel::new(spec);
        let profile = profiles::square(1);
        let base = model.kernel_time(&profile, Launch::new(1_000_000, 1000));
        let mut s = Series::new(format!("dispatch={dispatch_ns}ns"));
        for wg in [1usize, 10, 100, 1000] {
            let t = model.kernel_time(&profile, Launch::new(1_000_000, wg));
            s.push(wg.to_string(), base / t);
        }
        fig.series.push(s);
    }
    fig.notes.push(
        "With zero dispatch cost the sweep flattens — the Figure 3 cliff is entirely \
         the scheduler's per-group overhead, as the paper argues (Section II-A)."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorizer_always_helps_and_caps_at_width() {
        let fig = vectorizer_ablation(&Config::default());
        for (name, v) in &fig.series[0].points {
            assert!(*v >= 1.0, "{name}: {v}");
            assert!(*v <= 4.0 + 1e-9, "{name}: {v} exceeds SSE width");
        }
        // The compute-bound microbench gets (nearly) the full width.
        let ilp = fig.series[0].get("ILP4 microbench").unwrap();
        assert!(ilp > 3.0, "{ilp}");
    }

    #[test]
    fn occupancy_figure_has_the_fermi_knee() {
        let fig = occupancy_figure(&Config::default());
        let occ = fig.series("occupancy").unwrap();
        assert_eq!(occ.get("256"), Some(1.0));
        assert!(occ.get("32").unwrap() < 0.2);
    }

    #[test]
    fn zero_dispatch_cost_flattens_the_cliff() {
        let fig = scheduling_ablation(&Config::default());
        let zero = fig.series("dispatch=0ns").unwrap();
        let real = fig.series("dispatch=200ns").unwrap();
        // At wg=1: with no dispatch cost only the per-item overhead is left
        // (mild); with 200 ns the cliff is deep.
        assert!(zero.get("1").unwrap() > 0.9);
        assert!(real.get("1").unwrap() < 0.1);
    }
}
