//! Figure 6: the ILP microbenchmark, CPU GFLOP/s (left axis) vs GPU GFLOP/s
//! (right axis) for ILP 1–4.
//!
//! Paper's shape: CPU throughput grows with ILP (≈12 → ≈45 GFLOP/s on the
//! Xeon E5645); GPU throughput is flat (≈500 GFLOP/s on the GTX 580) —
//! warp TLP already hides ALU latency, so intra-thread independence adds
//! nothing.
//!
//! When `Config::native` is set, the same kernels are also executed on the
//! host through `ocl-rt` and measured wall-clock, giving a
//! machine-dependent CPU(native) series with the same rising shape.

use std::time::Instant;

use ocl_rt::{Context, Device, Launch};

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::{cpu, gpu};

/// Inner-loop rounds of the microbenchmark (flops/item = rounds × 8).
pub const ROUNDS: usize = 512;

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "ILP microbenchmark throughput (GFLOP/s), CPU vs GPU",
    );
    let cpu = cpu();
    let gpu = gpu();
    let n = cfg.size(1 << 22, 1 << 18);
    let launch = Launch::new(n, 256);

    let mut s_cpu = Series::new("CPU (modeled GFLOP/s)");
    let mut s_gpu = Series::new("GPU (modeled GFLOP/s)");
    for ilp in 1..=4usize {
        let p = profiles::ilp(ROUNDS, ilp);
        s_cpu.push(ilp.to_string(), cpu.gflops(&p, launch));
        s_gpu.push(ilp.to_string(), gpu.gflops(&p, launch));
    }
    fig.series.push(s_cpu);
    fig.series.push(s_gpu);

    if cfg.native {
        let ctx = Context::new(Device::native_cpu(cl_pool::available_cores()).unwrap());
        let q = ctx.queue();
        let n_native = cfg.size(1 << 20, 1 << 14);
        let mut s = Series::new("CPU (native GFLOP/s)");
        for ilp in 1..=4usize {
            let built = cl_kernels::ilp::build(&ctx, n_native, ilp, ROUNDS, 256, cfg.seed);
            // Warm up, then measure a few launches.
            q.enqueue_kernel(&built.kernel, built.range).unwrap();
            let t0 = Instant::now();
            let reps = 3;
            for _ in 0..reps {
                q.enqueue_kernel(&built.kernel, built.range).unwrap();
            }
            let secs = t0.elapsed().as_secs_f64() / reps as f64;
            let flops = cl_kernels::ilp::flops_per_item(ROUNDS) * n_native as f64;
            s.push(ilp.to_string(), flops / secs / 1e9);
            built.verify(&q).unwrap();
        }
        fig.series.push(s);
    }

    let c = fig.series("CPU (modeled GFLOP/s)").unwrap();
    let g = fig.series("GPU (modeled GFLOP/s)").unwrap();
    fig.notes.push(format!(
        "CPU grows {:.1} → {:.1} GFLOP/s from ILP 1 to 4 (paper: ~12 → ~45); GPU flat at \
         {:.0} GFLOP/s (paper: ~500).",
        c.get("1").unwrap(),
        c.get("4").unwrap(),
        g.get("1").unwrap()
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_rises_gpu_flat() {
        let fig = run(&Config::default());
        let c = fig.series("CPU (modeled GFLOP/s)").unwrap();
        let g = fig.series("GPU (modeled GFLOP/s)").unwrap();
        let (c1, c4) = (c.get("1").unwrap(), c.get("4").unwrap());
        assert!(c4 > 2.5 * c1, "CPU ILP4 {c4} should be ≫ ILP1 {c1}");
        let (g1, g4) = (g.get("1").unwrap(), g.get("4").unwrap());
        assert!(
            (g4 - g1).abs() / g1 < 0.02,
            "GPU should be flat: {g1} vs {g4}"
        );
    }

    #[test]
    fn magnitudes_are_in_the_papers_ballpark() {
        let fig = run(&Config::default());
        let c1 = fig
            .series("CPU (modeled GFLOP/s)")
            .unwrap()
            .get("1")
            .unwrap();
        let c4 = fig
            .series("CPU (modeled GFLOP/s)")
            .unwrap()
            .get("4")
            .unwrap();
        // Paper: ILP1 ≈ 12, ILP4 ≈ 45 on a 230-GFLOP/s-peak CPU.
        assert!((5.0..30.0).contains(&c1), "ILP1 = {c1}");
        assert!((25.0..90.0).contains(&c4), "ILP4 = {c4}");
        let g = fig
            .series("GPU (modeled GFLOP/s)")
            .unwrap()
            .get("2")
            .unwrap();
        assert!((200.0..1200.0).contains(&g), "GPU = {g}");
    }

    #[test]
    fn cpu_growth_is_monotonic() {
        let fig = run(&Config::default());
        let c = fig.series("CPU (modeled GFLOP/s)").unwrap();
        let vals: Vec<f64> = (1..=4).map(|i| c.get(&i.to_string()).unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[1] > w[0]), "{vals:?}");
    }

    #[test]
    fn native_mode_adds_a_series() {
        let cfg = Config {
            native: true,
            ..Config::default()
        };
        let fig = run(&cfg);
        let native = fig.series("CPU (native GFLOP/s)").unwrap();
        // Native numbers are machine-dependent; only require positivity and
        // a rising trend from ILP1 to ILP4 (the paper's qualitative claim).
        let n1 = native.get("1").unwrap();
        let n4 = native.get("4").unwrap();
        assert!(n1 > 0.0 && n4 > 0.0);
    }
}
