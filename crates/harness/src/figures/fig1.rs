//! Figure 1 (+ Table IV): Square and Vectoraddition throughput with 1×,
//! 10×, 100×, 1000× of the work coalesced into each workitem, on CPU and
//! GPU.
//!
//! Paper's shape: CPU throughput *rises* with coalescing (less per-workitem
//! scheduling overhead, up to ~4-5×); GPU throughput *falls* (serialized
//! fat workitems starve warp-level TLP).

use cl_kernels::registry::{table4_rows, COALESCE_FACTORS};

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::{cpu, gpu, null_launch_cpu, null_launch_gpu};

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig1",
        "Square/Vectoradd throughput vs workload per workitem (normalized to base)",
    );
    let cpu = cpu();
    let gpu = gpu();

    // Series per factor per device, x = workload label — the figure's bars.
    for device in ["CPU", "GPU"] {
        for &factor in &COALESCE_FACTORS {
            let label = if factor == 1 {
                format!("base({device})")
            } else {
                format!("{factor}({device})")
            };
            fig.series.push(Series::new(label));
        }
    }

    // Model-only sweep: evaluation is O(1) per point, so the paper's full
    // Table IV sizes are used regardless of quick mode.
    let _ = cfg;
    for (label, counts) in table4_rows() {
        let base_items = counts[0];
        let profile_of = |k: usize| {
            if label.starts_with("Square") {
                profiles::square(k)
            } else {
                profiles::vectoradd(k)
            }
        };

        let t_cpu_base = cpu.kernel_time(&profile_of(1), null_launch_cpu(base_items));
        let t_gpu_base = gpu.kernel_time(&profile_of(1), null_launch_gpu(base_items));
        for (&factor, &n_items) in COALESCE_FACTORS.iter().zip(&counts) {
            // Work per workitem follows the paper's Table IV counts (the
            // smallest inputs floor at 100 workitems).
            let k = (base_items / n_items).max(1);
            let t_cpu = cpu.kernel_time(&profile_of(k), null_launch_cpu(n_items));
            let t_gpu = gpu.kernel_time(&profile_of(k), null_launch_gpu(n_items));
            let (cpu_label, gpu_label) = if factor == 1 {
                ("base(CPU)".to_string(), "base(GPU)".to_string())
            } else {
                (format!("{factor}(CPU)"), format!("{factor}(GPU)"))
            };
            fig.series
                .iter_mut()
                .find(|s| s.label == cpu_label)
                .unwrap()
                .push(label, t_cpu_base / t_cpu);
            fig.series
                .iter_mut()
                .find(|s| s.label == gpu_label)
                .unwrap()
                .push(label, t_gpu_base / t_gpu);
        }
    }

    // The qualitative claims of Section III-B.1.
    let cpu_1000 = fig.series("1000(CPU)").unwrap();
    let gpu_1000 = fig.series("1000(GPU)").unwrap();
    let cpu_gain = mean(cpu_1000);
    let gpu_loss = mean(gpu_1000);
    fig.notes.push(format!(
        "CPU mean speedup at 1000x coalescing: {cpu_gain:.2}x (paper: ~3-5x)"
    ));
    fig.notes.push(format!(
        "GPU mean normalized throughput at 1000x: {gpu_loss:.2} (paper: large degradation)"
    ));
    fig
}

fn mean(s: &Series) -> f64 {
    s.points.iter().map(|&(_, v)| v).sum::<f64>() / s.points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_improves_and_gpu_degrades_with_coalescing() {
        let fig = run(&Config::default());
        for (x, base) in &fig.series("base(CPU)").unwrap().points.clone() {
            let v1000 = fig.series("1000(CPU)").unwrap().get(x).unwrap();
            assert!(
                v1000 > *base * 1.5,
                "{x}: CPU 1000x {v1000} should beat base {base}"
            );
            let g1000 = fig.series("1000(GPU)").unwrap().get(x).unwrap();
            assert!(
                g1000 < 0.9,
                "{x}: GPU 1000x {g1000} should degrade below base"
            );
        }
    }

    #[test]
    fn cpu_gain_is_monotonic_in_factor() {
        let fig = run(&Config::default());
        for (x, _) in fig.series("base(CPU)").unwrap().points.clone() {
            let v10 = fig.series("10(CPU)").unwrap().get(&x).unwrap();
            let v100 = fig.series("100(CPU)").unwrap().get(&x).unwrap();
            let v1000 = fig.series("1000(CPU)").unwrap().get(&x).unwrap();
            assert!(
                v10 <= v100 + 1e-9 && v100 <= v1000 + 1e-9,
                "{x}: {v10} {v100} {v1000}"
            );
        }
    }

    #[test]
    fn base_series_is_unity() {
        let fig = run(&Config::default());
        for (_, v) in &fig.series("base(CPU)").unwrap().points {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn has_seven_workloads_and_eight_series() {
        let fig = run(&Config::default());
        assert_eq!(fig.series.len(), 8);
        assert_eq!(fig.series[0].points.len(), 7);
    }
}
