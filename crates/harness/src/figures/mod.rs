//! One module per figure of the paper's evaluation section.

pub mod extra;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use ocl_rt::NDRange;
use perf_model::{CpuModel, CpuSpec, GpuModel, GpuSpec, Launch};

/// The modeled CPU of Table I.
pub(crate) fn cpu() -> CpuModel {
    CpuModel::new(CpuSpec::xeon_e5645())
}

/// The modeled GPU of Table I.
pub(crate) fn gpu() -> GpuModel {
    GpuModel::new(GpuSpec::gtx580())
}

/// The launch a NULL `local_work_size` resolves to on the CPU runtime
/// (same heuristic as `ocl-rt`'s modeled CPU device: divisor-sized groups,
/// at least `4 × cores` of them).
pub(crate) fn null_launch_cpu(n: usize) -> Launch {
    let spec = CpuSpec::xeon_e5645();
    NDRange::d1(n)
        .resolve_with(spec.default_wg, spec.cores * 4)
        .expect("valid range")
        .launch()
}

/// The launch a NULL `local_work_size` resolves to on the GPU runtime.
pub(crate) fn null_launch_gpu(n: usize) -> Launch {
    NDRange::d1(n).resolve(256).expect("valid range").launch()
}

/// An explicit workgroup size launch (flattened).
pub(crate) fn launch(n: usize, wg: usize) -> Launch {
    Launch::new(n, wg.min(n))
}
