//! Figure 4: Blackscholes workgroup-size detail, CPU vs GPU.
//!
//! Paper's shape: on the CPU the bars are flat (within a few percent —
//! note the paper's zoomed 0.84–1.04 y-axis); on the GPU small workgroups
//! collapse throughput because resident warps per SM are limited by the
//! workgroup size.

use cl_kernels::registry::LocalSpec;
use perf_model::Launch;

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::{cpu, gpu};

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig4",
        "Blackscholes throughput vs workgroup size (normalized to 16x16 base)",
    );
    let cpu = cpu();
    let gpu = gpu();
    let specs = [
        ("base", LocalSpec::D2(16, 16)),
        ("case_1", LocalSpec::D2(1, 1)),
        ("case_2", LocalSpec::D2(1, 2)),
        ("case_3", LocalSpec::D2(2, 2)),
        ("case_4", LocalSpec::D2(2, 4)),
    ];
    let sizes = [
        ("blackscholes_1", 1280usize * 1280),
        ("blackscholes_2", 2560 * 2560),
    ];
    // Model-only sweep: full sizes regardless of quick mode; each workitem
    // walks ~512 options (see fig3).
    let _ = cfg;
    let shrink = 1;
    let profile = profiles::blackscholes(512.0);

    for device in ["CPU", "GPU"] {
        for (name, _) in specs {
            fig.series.push(Series::new(format!("{name}({device})")));
        }
    }
    for (label, n_full) in sizes {
        let n = n_full / shrink;
        let time = |is_cpu: bool, spec: LocalSpec| {
            let wg = match spec {
                LocalSpec::D2(x, y) => x * y,
                LocalSpec::D1(x) => x,
                LocalSpec::Null => 256,
            };
            let launch = Launch::new(n, wg);
            if is_cpu {
                cpu.kernel_time(&profile, launch)
            } else {
                gpu.kernel_time(&profile, launch)
            }
        };
        let base_cpu = time(true, specs[0].1);
        let base_gpu = time(false, specs[0].1);
        for (name, spec) in specs {
            fig.series
                .iter_mut()
                .find(|s| s.label == format!("{name}(CPU)"))
                .unwrap()
                .push(label, base_cpu / time(true, spec));
            fig.series
                .iter_mut()
                .find(|s| s.label == format!("{name}(GPU)"))
                .unwrap()
                .push(label, base_gpu / time(false, spec));
        }
    }
    fig.notes.push(
        "Per-workitem work is long (an options loop), so CPU workgroup-management \
         overhead is negligible at every size; GPU occupancy is capped by tiny groups."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_is_flat_gpu_is_not() {
        let fig = run(&Config::default());
        for x in ["blackscholes_1", "blackscholes_2"] {
            for case in ["case_1", "case_2", "case_3", "case_4"] {
                let v = fig.series(&format!("{case}(CPU)")).unwrap().get(x).unwrap();
                assert!(
                    (v - 1.0).abs() < 0.16,
                    "{case}/{x}: CPU should be near-flat, got {v}"
                );
            }
            let g = fig.series("case_1(GPU)").unwrap().get(x).unwrap();
            assert!(g < 0.5, "{x}: GPU wg=1 should collapse, got {g}");
        }
    }

    #[test]
    fn gpu_recovers_with_larger_groups() {
        let fig = run(&Config::default());
        let g1 = fig
            .series("case_1(GPU)")
            .unwrap()
            .get("blackscholes_1")
            .unwrap();
        let g4 = fig
            .series("case_4(GPU)")
            .unwrap()
            .get("blackscholes_1")
            .unwrap();
        assert!(g4 > g1, "GPU case_4 {g4} should beat case_1 {g1}");
    }
}
