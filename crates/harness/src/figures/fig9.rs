//! Figure 9: the CPU-affinity experiment of Section III-E.
//!
//! Two dependent kernels (vector add, then vector multiply) spread across
//! eight cores. In the *aligned* mapping, the second kernel's work lands on
//! the cores whose private caches already hold its input; in the
//! *misaligned* mapping the assignment is rotated by one core. The paper
//! measures the misaligned case ~15% slower.
//!
//! Reproduced twice:
//! * **deterministically** on the `cache-sim` hierarchy (per-core L1/L2,
//!   shared L3) — the default plane, with cycle-level hit/miss accounting;
//! * **natively** (when `Config::native`) with OS threads pinned via
//!   `sched_setaffinity`, wall-clock measured.

use cache_sim::{Hierarchy, HierarchyConfig};

use crate::measure::Config;
use crate::report::{Figure, Series};

const CORES: usize = 8;
/// Arithmetic + loop bookkeeping per element of the second kernel, cycles
/// (scalar multiply, index arithmetic, loop control, store-port pressure —
/// ~8 ns/element on the 2.4 GHz machine).
const COMPUTE_CYCLES_PER_ELEM: f64 = 20.0;

/// Simulate the two-kernel pipeline; returns phase-2 cycles per element for
/// the given phase-2 core mapping (`shift = 0` aligned, `1` misaligned).
fn simulate(slice_elems: usize, shift: usize) -> (f64, cache_sim::HierarchyStats) {
    let mut h = Hierarchy::new(HierarchyConfig::xeon_e5645(CORES));
    let elem = 4u64;
    let total = (CORES * slice_elems) as u64;
    // Distinct address spaces for the four arrays.
    let (base_a, base_b, base_c, base_d) = (0u64, total * elem, 2 * total * elem, 3 * total * elem);

    // Kernel 1 on core c over slice c: C[i] = A[i] + B[i]; the output array
    // D is also first-touched (zero-initialized) by the core that owns the
    // slice, as the allocating kernel would.
    for core in 0..CORES {
        let start = (core * slice_elems) as u64;
        for i in start..start + slice_elems as u64 {
            h.access(core, base_a + i * elem, false);
            h.access(core, base_b + i * elem, false);
            h.access(core, base_c + i * elem, true);
            h.access(core, base_d + i * elem, true);
        }
    }

    let before = h.total_stats();
    // Kernel 2 on core c over slice (c + shift) mod CORES: D[i] = C[i]*C[i].
    for core in 0..CORES {
        let slice = (core + shift) % CORES;
        let start = (slice * slice_elems) as u64;
        for i in start..start + slice_elems as u64 {
            h.access(core, base_c + i * elem, false);
            h.access(core, base_d + i * elem, true);
        }
    }
    let phase2 = h.total_stats().delta_since_stats(&before);
    let mem_cycles = phase2.cycles(&h.config().latencies);
    let cycles_per_elem = mem_cycles / total as f64 + COMPUTE_CYCLES_PER_ELEM;
    (cycles_per_elem, phase2)
}

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig9",
        "CPU affinity: aligned vs misaligned second-kernel placement (relative runtime)",
    );
    let slice = cfg.size(8192, 4096);
    let (aligned, st_a) = simulate(slice, 0);
    let (misaligned, st_m) = simulate(slice, 1);

    let mut s = Series::new("modeled (cache-sim)");
    s.push("aligned", 1.0);
    s.push("misaligned", misaligned / aligned);
    fig.series.push(s);

    fig.notes.push(format!(
        "Misaligned runs {:.1}% longer in the cache simulation (paper: ~15%).",
        (misaligned / aligned - 1.0) * 100.0
    ));
    fig.notes.push(format!(
        "Phase-2 private-cache hits: aligned L1+L2 = {}, misaligned L1+L2 = {} \
         (misaligned input lives in *other* cores' private caches and is served by \
         the shared L3 instead).",
        st_a.l1_hits + st_a.l2_hits,
        st_m.l1_hits + st_m.l2_hits,
    ));

    if cfg.native {
        let (t_aligned, t_mis) = native_run(cfg);
        let mut s = Series::new("native (pinned threads)");
        s.push("aligned", 1.0);
        s.push("misaligned", t_mis / t_aligned);
        fig.series.push(s);
        fig.notes.push(format!(
            "Native pinned-thread run: misaligned/aligned = {:.3} (machine-dependent).",
            t_mis / t_aligned
        ));
    }
    fig
}

/// Wall-clock version with threads pinned one-per-core.
fn native_run(cfg: &Config) -> (f64, f64) {
    use std::time::Instant;
    let cores = CORES.min(cl_pool::available_cores());
    let slice = cfg.size(1 << 16, 1 << 14);
    let n = cores * slice;
    let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    let b: Vec<f32> = (0..n).map(|i| (n - i) as f32 * 0.25).collect();
    let mut c = vec![0.0f32; n];
    let mut d = vec![0.0f32; n];

    let run_phase2 = |c_arr: &[f32], d_arr: &mut [f32], shift: usize| -> f64 {
        let mut chunks: Vec<(usize, &mut [f32])> = d_arr.chunks_mut(slice).enumerate().collect();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for (core, chunk) in chunks.iter_mut() {
                let src_slice = (*core + shift) % cores;
                let src = &c_arr[src_slice * slice..(src_slice + 1) * slice];
                let core = *core;
                let chunk: &mut [f32] = chunk;
                s.spawn(move || {
                    let _ = cl_pool::pin_current_thread(core);
                    for rep in 0..8 {
                        for (o, &x) in chunk.iter_mut().zip(src) {
                            *o = x * x + rep as f32;
                        }
                    }
                });
            }
        });
        t0.elapsed().as_secs_f64()
    };

    // Phase 1 (pinned): populate C slice-per-core so each core's caches hold
    // its slice.
    {
        let mut chunks: Vec<(usize, &mut [f32])> = c.chunks_mut(slice).enumerate().collect();
        std::thread::scope(|s| {
            for (core, chunk) in chunks.iter_mut() {
                let start = *core * slice;
                let (a, b) = (&a, &b);
                let core = *core;
                let chunk: &mut [f32] = chunk;
                s.spawn(move || {
                    let _ = cl_pool::pin_current_thread(core);
                    for (k, o) in chunk.iter_mut().enumerate() {
                        *o = a[start + k] + b[start + k];
                    }
                });
            }
        });
    }
    let t_aligned = run_phase2(&c, &mut d, 0);
    let t_mis = run_phase2(&c, &mut d, 1);
    (t_aligned, t_mis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misaligned_is_slower_in_the_model() {
        let fig = run(&Config::default());
        let s = fig.series("modeled (cache-sim)").unwrap();
        let m = s.get("misaligned").unwrap();
        assert!(
            m > 1.05 && m < 1.6,
            "misaligned should cost 5-60% more, got {m}"
        );
    }

    #[test]
    fn misalignment_destroys_private_cache_hits() {
        let (_, aligned) = simulate(4096, 0);
        let (_, mis) = simulate(4096, 1);
        // Aligned: every C and D line is still in the producing core's
        // private caches; misaligned: every line fetch (one per 16-element
        // line, two arrays) falls through to the shared L3.
        assert_eq!(aligned.l3_hits, 0, "{aligned:?}");
        let lines = 2 * (CORES * 4096 / 16) as u64;
        assert_eq!(mis.l3_hits, lines, "{mis:?}");
        assert_eq!(aligned.memory_accesses, mis.memory_accesses);
    }

    #[test]
    fn native_run_completes() {
        // Wall-clock ratios are machine-dependent; just exercise the path.
        let cfg = Config::default();
        let (ta, tm) = native_run(&cfg);
        assert!(ta > 0.0 && tm > 0.0);
    }
}
