//! Figure 5: Parboil workgroup-size sweep on the CPU: relative sizes ×1 to
//! ×16 of each kernel's Table III default (doubling each step);
//! `cenergy` swept separately in its X and Y workgroup dimensions.
//!
//! Paper's shape: throughput rises with workgroup size and saturates once
//! there is enough computation inside the group.

use perf_model::Launch;

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::cpu;

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig5",
        "Parboil throughput vs workgroup size on CPU (normalized to the x1 case)",
    );
    let cpu = cpu();
    let atoms = cfg.size(4096, 256);
    let ksamp = cfg.size(2048, 128);

    // (series label, total items, wg at multiplier m, profile)
    type WgOf = Box<dyn Fn(usize) -> usize>;
    let kernels: Vec<(&str, usize, WgOf, perf_model::KernelProfile)> = vec![
        (
            "CP: cenergy(X)",
            64 * 512,
            Box::new(|m| m * 8), // 1x8 .. 16x8
            profiles::cenergy(atoms, 1),
        ),
        (
            "CP: cenergy(Y)",
            64 * 512,
            Box::new(|m| 16 * m), // 16x1 .. 16x16
            profiles::cenergy(atoms, 1),
        ),
        (
            "MRI-Q: computePhiMag",
            3072,
            Box::new(|m| 512 * m / 16),
            profiles::phimag(1),
        ),
        (
            "MRI-Q: computeQ",
            32_768,
            Box::new(|m| 256 * m / 16),
            profiles::mri_accum(ksamp, 1),
        ),
        (
            "MRI-FHD: RhoPhi",
            3072,
            Box::new(|m| 512 * m / 16),
            profiles::phimag(2),
        ),
        (
            "MRI-FHD: computeQ",
            32_768,
            Box::new(|m| 256 * m / 16),
            profiles::mri_accum(ksamp, 1),
        ),
    ];

    for (label, items, wg_of, profile) in kernels {
        let mut s = Series::new(label);
        let base_t = cpu.kernel_time(&profile, Launch::new(items, wg_of(1).max(1)));
        for m in [1usize, 2, 4, 8, 16] {
            let wg = wg_of(m).max(1);
            let t = cpu.kernel_time(&profile, Launch::new(items, wg.min(items)));
            s.push(m.to_string(), base_t / t);
        }
        fig.series.push(s);
    }
    fig.notes.push(
        "Throughput grows with workgroup size and saturates once per-group computation \
         amortizes the dispatch (paper: 'performance saturates when there is enough \
         computation inside the workgroup')."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_groups_never_hurt() {
        let fig = run(&Config::default());
        for s in &fig.series {
            let vals: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
            assert!(
                vals.windows(2).all(|w| w[1] >= w[0] * 0.999),
                "{}: {vals:?}",
                s.label
            );
        }
    }

    #[test]
    fn compute_heavy_kernels_saturate_early() {
        // cenergy does ~10·atoms flops per item: even small groups amortize
        // dispatch, so the 16x gain over 1x is small.
        let fig = run(&Config::default());
        let s = fig.series("CP: cenergy(X)").unwrap();
        let gain = s.get("16").unwrap() / s.get("1").unwrap();
        assert!(gain < 2.0, "cenergy should saturate, got 16x/1x = {gain}");
    }

    #[test]
    fn light_kernels_benefit_more() {
        let fig = run(&Config::default());
        let light = fig
            .series("MRI-Q: computePhiMag")
            .unwrap()
            .get("16")
            .unwrap();
        let heavy = fig.series("CP: cenergy(X)").unwrap().get("16").unwrap();
        assert!(
            light >= heavy,
            "PhiMag (tiny items) should gain at least as much as cenergy: {light} vs {heavy}"
        );
    }
}
