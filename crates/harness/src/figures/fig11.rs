//! Figure 11: the worked example — a loop whose body carries a true data
//! dependence (`acc = acc·a[j] + b[j]` repeated). The OpenMP compiler must
//! refuse to vectorize it (vectorization would reorder the dependent
//! operations); the OpenCL compiler vectorizes the *same computation*
//! anyway, because its lanes are different workitems, not loop iterations.
//!
//! This "figure" is a verdict table: the refusal reasons from the loop
//! vectorizer next to the OpenCL vectorizer's acceptance.

use cl_kernels::mbench;
use cl_vec::VectorizerPolicy;

use crate::measure::Config;
use crate::report::{Figure, Series};

pub fn run(_cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig11",
        "Vectorization verdicts on the dependence-chain loop (1 = vectorized)",
    );
    let policy = VectorizerPolicy::default();
    let benches = mbench::all();
    let fig11_bench = &benches[1]; // MBench2 encodes the Figure 11 loop

    let omp = fig11_bench.openmp_report(policy);
    let ocl = fig11_bench.opencl_report(policy);

    let mut s_omp = Series::new("OpenMP loop vectorizer");
    s_omp.push("vectorized", if omp.vectorized { 1.0 } else { 0.0 });
    s_omp.push("width", omp.width as f64);
    let mut s_ocl = Series::new("OpenCL implicit vectorizer");
    s_ocl.push("vectorized", if ocl.vectorized { 1.0 } else { 0.0 });
    s_ocl.push("width", ocl.width as f64);
    fig.series = vec![s_omp, s_ocl];

    fig.notes.push(format!(
        "OpenMP refusal reasons: {:?} — 'such a change of order might not be possible \
         due to data dependencies' (paper Fig. 11).",
        omp.reasons
    ));
    fig.notes.push(
        "OpenCL: 'no dependency checks are required as in the case of traditional \
         compilers' — lanes are workitems, independent by the NDRange contract."
            .to_string(),
    );
    fig.notes.push(format!(
        "Under a relaxed-FP policy (-fp-model fast analog) the same loop becomes a \
         vectorizable reduction: {}.",
        cl_vec::LoopVectorizer::new(VectorizerPolicy {
            relaxed_fp_reductions: true,
            ..Default::default()
        })
        .analyze(&(fig11_bench.omp_ir)())
        .vectorized
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_vec::Reason;

    #[test]
    fn the_asymmetry_of_figure_11() {
        let fig = run(&Config::default());
        assert_eq!(
            fig.series("OpenMP loop vectorizer")
                .unwrap()
                .get("vectorized"),
            Some(0.0)
        );
        assert_eq!(
            fig.series("OpenCL implicit vectorizer")
                .unwrap()
                .get("vectorized"),
            Some(1.0)
        );
    }

    #[test]
    fn refusal_is_the_loop_carried_scalar() {
        let bench = &mbench::all()[1];
        let r = bench.openmp_report(VectorizerPolicy::default());
        assert!(
            r.reasons.contains(&Reason::LoopCarriedScalar),
            "{:?}",
            r.reasons
        );
    }
}
