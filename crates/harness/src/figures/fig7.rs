//! Figure 7: normalized application throughput of mapping over copying, for
//! every combination of access flags (READ_ONLY/WRITE_ONLY vs READ_WRITE)
//! and allocation placement (device vs pinned host).
//!
//! Application throughput follows the paper's Equation (1):
//! `Throughput_app = Throughput_kernel / (kernel_time + transfer_time)` —
//! so the figure plots `(t_kernel + t_copy) / (t_kernel + t_map)`.
//!
//! Paper's findings, all reproduced: mapping wins for every combination;
//! access flags and allocation placement change nothing (host and device
//! memory are the same DRAM on a CPU).

use perf_model::{CpuSpec, TransferModel};

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::{cpu, null_launch_cpu};

/// Per-app transfer footprint: `(label, n_items, bytes_in, bytes_out,
/// profile)`.
fn apps(cfg: &Config) -> Vec<(String, usize, usize, usize, perf_model::KernelProfile)> {
    let s = |full: usize| cfg.size(full, full / 10);
    let mm_k = 320usize;
    vec![
        {
            let n = s(1_000_000);
            ("Square".into(), n, n * 4, n * 4, profiles::square(1))
        },
        {
            let n = s(1_100_000);
            (
                "Vectoradd".into(),
                n,
                2 * n * 4,
                n * 4,
                profiles::vectoradd(1),
            )
        },
        {
            let (w, h) = (800, 1600);
            let n = s(w * h);
            (
                "Matrixmul".into(),
                n,
                (h * mm_k + mm_k * w) * 4 / if cfg.quick { 10 } else { 1 },
                n * 4,
                profiles::matrixmul_tiled(mm_k, 16),
            )
        },
        {
            let n = s(640_000);
            ("Reduction".into(), n, n * 4, (n / 256) * 4, {
                perf_model::KernelProfile::streaming(1.0, 4.0)
            })
        },
        {
            let n = s(409_600);
            (
                "Histogram".into(),
                n,
                n * 4,
                256 * 4,
                perf_model::KernelProfile::streaming(1.0, 4.0).not_vectorizable(),
            )
        },
        {
            let n = 1024;
            (
                "Prefixsum".into(),
                n,
                n * 4,
                n * 4,
                perf_model::KernelProfile::streaming(10.0, 8.0).not_vectorizable(),
            )
        },
        {
            let n = s(1280 * 1280);
            (
                "Blackscholes".into(),
                n,
                3 * n * 4,
                2 * n * 4,
                profiles::blackscholes(4.0),
            )
        },
        {
            let n = s(255_000);
            let opts = n / 255;
            (
                "Binomialoption".into(),
                n,
                3 * opts * 4,
                opts * 4,
                perf_model::KernelProfile::compute(2.0 * 255.0).not_vectorizable(),
            )
        },
        {
            let (w, h) = (800, 1600);
            let n = s(w * h);
            (
                "MatrixmulNaive".into(),
                n,
                (h * mm_k + mm_k * w) * 4 / if cfg.quick { 10 } else { 1 },
                n * 4,
                profiles::matrixmul_naive(mm_k),
            )
        },
    ]
}

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig7",
        "Normalized application throughput of mapping over copying (per Eq. 1)",
    );
    let cpu = cpu();
    let transfer = TransferModel::cpu(&CpuSpec::xeon_e5645());

    // The four flag/placement combinations of the paper's sweep. In this
    // runtime (as the paper finds on real CPUs) neither dimension changes
    // transfer cost, so the four series coincide — which *is* the result.
    let combos = [
        "ReadOnly or WriteOnly, Allocation on Device",
        "ReadOnly or WriteOnly, Allocation on Host",
        "Read Write, Allocation on Device",
        "Read Write, Allocation on Host",
    ];
    for combo in combos {
        fig.series.push(Series::new(combo));
    }

    for (label, n_items, bytes_in, bytes_out, profile) in apps(cfg) {
        let t_kernel = cpu.kernel_time(&profile, null_launch_cpu(n_items));
        let t_copy = transfer.copy_time(bytes_in) + transfer.copy_time(bytes_out);
        let t_map = transfer.map_time(bytes_in) + transfer.map_time(bytes_out);
        let ratio = (t_kernel + t_copy) / (t_kernel + t_map);
        for combo in combos {
            fig.series
                .iter_mut()
                .find(|s| s.label == combo)
                .unwrap()
                .push(&label, ratio);
        }
    }

    fig.notes.push(
        "Mapping beats copying for every app and every flag/placement combination \
         (paper: 'Mapping APIs perform superior ... on all possible combinations')."
            .to_string(),
    );
    fig.notes.push(
        "Access flags and allocation placement leave the ratio unchanged — host and \
         device memory are the same DRAM (paper Section III-D findings 2 and 3)."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_wins_everywhere() {
        let fig = run(&Config::default());
        for s in &fig.series {
            for (x, v) in &s.points {
                assert!(*v >= 1.0, "{x}: map/copy ratio {v} < 1");
            }
        }
    }

    #[test]
    fn transfer_bound_apps_gain_most() {
        let fig = run(&Config::default());
        let s = &fig.series[0];
        // Vectoradd moves 12B per 1 flop — heavily transfer-bound.
        let va = s.get("Vectoradd").unwrap();
        // Binomialoption computes ~510 flops per 16 transferred bytes.
        let bo = s.get("Binomialoption").unwrap();
        assert!(
            va > bo,
            "Vectoradd {va} should gain more than Binomial {bo}"
        );
        assert!(bo < 1.05, "compute-bound app should be near 1.0, got {bo}");
    }

    #[test]
    fn flags_and_placement_do_not_matter() {
        let fig = run(&Config::default());
        let first = fig.series[0].clone();
        for s in &fig.series[1..] {
            for (x, v) in &first.points {
                assert_eq!(s.get(x).unwrap(), *v, "{x}");
            }
        }
    }
}
