//! Figure 8: Parboil data-transfer time with copy vs map APIs, host→device
//! (upper) and device→host (lower), in milliseconds.
//!
//! Parboil kernel times dwarf their transfer times, so the paper reports
//! raw transfer times instead of Equation-(1) throughput. Shape: mapping is
//! uniformly faster; the gap scales with bytes moved.

use perf_model::{CpuSpec, TransferModel};

use crate::measure::Config;
use crate::report::{Figure, Series};

/// Transfer footprints of the three Parboil benchmarks (f32 counts), from
/// their Table III launch geometries.
fn footprints(cfg: &Config) -> Vec<(&'static str, usize, usize)> {
    let atoms = cfg.size(4096, 256);
    let ksamp = cfg.size(2048, 128);
    vec![
        // CP: atoms in, 64×512 grid out.
        ("CP", atoms * 4 * 4, 64 * 512 * 4),
        // MRI-Q: voxel coords + trajectory + phi in; Qr/Qi out.
        (
            "MRI-Q",
            (3 * 32_768 + 3 * ksamp + 2 * 3072) * 4,
            2 * 32_768 * 4,
        ),
        // MRI-FHD: adds the measured data and rho; FHr/FHi out.
        (
            "MRI-FHD",
            (3 * 32_768 + 3 * ksamp + 4 * 3072) * 4,
            2 * 32_768 * 4,
        ),
    ]
}

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig8",
        "Parboil data-transfer time (ms): copy vs map, host→device and device→host",
    );
    let transfer = TransferModel::cpu(&CpuSpec::xeon_e5645());
    let mut h2d_copy = Series::new("Copying H2D");
    let mut h2d_map = Series::new("Mapping H2D");
    let mut d2h_copy = Series::new("Copying D2H");
    let mut d2h_map = Series::new("Mapping D2H");
    for (label, bytes_in, bytes_out) in footprints(cfg) {
        h2d_copy.push(label, transfer.copy_time(bytes_in) * 1e3);
        h2d_map.push(label, transfer.map_time(bytes_in) * 1e3);
        d2h_copy.push(label, transfer.copy_time(bytes_out) * 1e3);
        d2h_map.push(label, transfer.map_time(bytes_out) * 1e3);
    }
    fig.series = vec![h2d_copy, h2d_map, d2h_copy, d2h_map];
    fig.notes.push(
        "Different APIs do not affect kernel execution time; the gap is pure transfer \
         (paper Section III-D). Mapping returns a pointer — its cost is size-independent."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_faster_in_both_directions() {
        let fig = run(&Config::default());
        for (copy, map) in [
            ("Copying H2D", "Mapping H2D"),
            ("Copying D2H", "Mapping D2H"),
        ] {
            let c = fig.series(copy).unwrap();
            let m = fig.series(map).unwrap();
            for (x, cv) in &c.points {
                let mv = m.get(x).unwrap();
                assert!(mv < *cv, "{x}: map {mv} ms should beat copy {cv} ms");
            }
        }
    }

    #[test]
    fn copy_time_scales_with_bytes_map_does_not() {
        let fig = run(&Config::full());
        let c = fig.series("Copying H2D").unwrap();
        // MRI-Q moves more input bytes than CP.
        assert!(c.get("MRI-Q").unwrap() > c.get("CP").unwrap());
        let m = fig.series("Mapping H2D").unwrap();
        assert_eq!(m.get("MRI-Q").unwrap(), m.get("CP").unwrap());
    }
}
