//! Figure 3 (+ Table V): workgroup-size sweep for the simple applications,
//! CPU and GPU.
//!
//! Paper's shapes: Square/Vectoradd/MatrixmulNaive improve with larger
//! groups on the CPU and saturate; NULL sits below the tuned peak; tiny
//! groups collapse both devices (CPU: dispatch overhead; GPU: occupancy and
//! lane waste); tiled Matrixmul peaks at 8×8 on the CPU but 16×16 on the
//! GPU (cache vs scratchpad capacity).

use cl_kernels::registry::{table5_rows, LocalSpec};
use perf_model::Launch;

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::{cpu, gpu, null_launch_cpu, null_launch_gpu};

/// Inner dimension used for both matrix multiplies (divisible by every
/// Table V tile side).
pub const MM_K: usize = 320;

fn wg_of(spec: LocalSpec) -> Option<usize> {
    match spec {
        LocalSpec::Null => None,
        LocalSpec::D1(n) => Some(n),
        LocalSpec::D2(x, y) => Some(x * y),
    }
}

struct Case {
    x_label: String,
    items: usize,
    profile: Box<dyn Fn(LocalSpec) -> perf_model::KernelProfile>,
}

fn cases(cfg: &Config) -> Vec<(String, Vec<Case>)> {
    // Model-only sweep: full Table II/V sizes regardless of quick mode.
    let _ = cfg;
    let shrink = 1;
    let mut out = Vec::new();
    for row in table5_rows() {
        let mut cases = Vec::new();
        match row.benchmark {
            "Square" | "VectorAddition" => {
                let sizes: &[usize] = if row.benchmark == "Square" {
                    &[10_000, 1_000_000]
                } else {
                    &[110_000, 5_500_000]
                };
                let streaming = row.benchmark == "Square";
                for (i, &n) in sizes.iter().enumerate() {
                    cases.push(Case {
                        x_label: format!("{}_{}", row.benchmark.to_lowercase(), i + 1),
                        items: n / shrink,
                        profile: Box::new(move |_| {
                            if streaming {
                                profiles::square(1)
                            } else {
                                profiles::vectoradd(1)
                            }
                        }),
                    });
                }
            }
            "Matrixmul" => {
                for (i, (w, h)) in [(800usize, 1600usize), (1600, 3200)].iter().enumerate() {
                    cases.push(Case {
                        x_label: format!("matrixmul_{}", i + 1),
                        items: (w * h) / shrink,
                        profile: Box::new(|spec| {
                            let t = match spec {
                                LocalSpec::D2(x, _) => x,
                                LocalSpec::D1(n) => n,
                                LocalSpec::Null => 16,
                            };
                            profiles::matrixmul_tiled(MM_K, t)
                        }),
                    });
                }
            }
            "MatrixmulNaive" => {
                for (i, (w, h)) in [(800usize, 1600usize), (1600, 3200)].iter().enumerate() {
                    cases.push(Case {
                        x_label: format!("matrixmulnaive_{}", i + 1),
                        items: (w * h) / shrink,
                        profile: Box::new(|_| profiles::matrixmul_naive(MM_K)),
                    });
                }
            }
            "Blackscholes" => {
                for (i, n) in [1280usize * 1280, 2560 * 2560].iter().enumerate() {
                    cases.push(Case {
                        x_label: format!("blackscholes_{}", i + 1),
                        items: n / shrink,
                        // Long per-workitem work: each item walks ~512
                        // options (grid-stride), per the sample's structure.
                        profile: Box::new(|_| profiles::blackscholes(512.0)),
                    });
                }
            }
            other => unreachable!("unknown Table V app {other}"),
        }
        out.push((row.benchmark.to_string(), cases));
    }
    out
}

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig3",
        "Application throughput vs workgroup size, CPU and GPU (normalized to base)",
    );
    let cpu = cpu();
    let gpu = gpu();

    let case_names = ["base", "case_1", "case_2", "case_3", "case_4"];
    for device in ["CPU", "GPU"] {
        for c in case_names {
            fig.series.push(Series::new(format!("{c}({device})")));
        }
    }

    for (row, cases_for_row) in table5_rows().into_iter().zip(cases(cfg)) {
        let specs = [
            row.base,
            row.cases[0],
            row.cases[1],
            row.cases[2],
            row.cases[3],
        ];
        for case in &cases_for_row.1 {
            let time = |model_cpu: bool, spec: LocalSpec| -> f64 {
                let profile = (case.profile)(spec);
                let launch = match wg_of(spec) {
                    Some(wg) => Launch::new(case.items, wg.min(case.items)),
                    None if model_cpu => null_launch_cpu(case.items),
                    None => null_launch_gpu(case.items),
                };
                if model_cpu {
                    cpu.kernel_time(&profile, launch)
                } else {
                    gpu.kernel_time(&profile, launch)
                }
            };
            let base_cpu = time(true, specs[0]);
            let base_gpu = time(false, specs[0]);
            for (name, &spec) in case_names.iter().zip(&specs) {
                fig.series
                    .iter_mut()
                    .find(|s| s.label == format!("{name}(CPU)"))
                    .unwrap()
                    .push(&case.x_label, base_cpu / time(true, spec));
                fig.series
                    .iter_mut()
                    .find(|s| s.label == format!("{name}(GPU)"))
                    .unwrap()
                    .push(&case.x_label, base_gpu / time(false, spec));
            }
        }
    }

    fig.notes.push(
        "Square/Vectoradd: larger workgroups monotonically improve CPU throughput and \
         saturate; NULL (base) sits below the explicit 1000 case (paper III-B.2)."
            .to_string(),
    );
    fig.notes.push(
        "Blackscholes: CPU flat across workgroup sizes, GPU strongly affected (paper Fig. 4)."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        run(&Config::default())
    }

    #[test]
    fn tiny_workgroups_collapse_square_on_both_devices() {
        let f = fig();
        let c1 = f.series("case_1(CPU)").unwrap().get("square_2").unwrap();
        assert!(c1 < 0.2, "CPU wg=1 should collapse, got {c1}");
        // On the 10^6-item input the fixed launch overhead no longer floors
        // the ratio; the GPU collapse is dramatic there.
        let g1 = f.series("case_1(GPU)").unwrap().get("square_2").unwrap();
        assert!(g1 < 0.2, "GPU wg=1 should collapse, got {g1}");
    }

    #[test]
    fn explicit_large_wg_beats_null_on_cpu() {
        let f = fig();
        for x in ["square_1", "square_2", "vectoraddition_1"] {
            let case4 = f.series("case_4(CPU)").unwrap().get(x).unwrap();
            assert!(case4 > 1.0, "{x}: case_4 {case4} should beat NULL base");
        }
    }

    #[test]
    fn cpu_square_improves_monotonically_with_wg() {
        let f = fig();
        let vals: Vec<f64> = ["case_1(CPU)", "case_2(CPU)", "case_3(CPU)", "case_4(CPU)"]
            .iter()
            .map(|s| f.series(s).unwrap().get("square_2").unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]), "{vals:?}");
    }

    #[test]
    fn matrixmul_cpu_peaks_at_8x8_gpu_at_16x16() {
        let f = fig();
        // CPU: case_4 is 8x8, base is 16x16 — 8x8 should win on CPU.
        let cpu_8 = f.series("case_4(CPU)").unwrap().get("matrixmul_1").unwrap();
        assert!(cpu_8 > 1.0, "CPU 8x8 should beat 16x16, got {cpu_8}");
        // GPU: 16x16 (base = 1.0) should beat 8x8.
        let gpu_8 = f.series("case_4(GPU)").unwrap().get("matrixmul_1").unwrap();
        assert!(gpu_8 < 1.0, "GPU 8x8 should lose to 16x16, got {gpu_8}");
    }

    #[test]
    fn blackscholes_cpu_flat_gpu_sensitive() {
        let f = fig();
        let cpu_1 = f
            .series("case_1(CPU)")
            .unwrap()
            .get("blackscholes_1")
            .unwrap();
        assert!(
            (cpu_1 - 1.0).abs() < 0.15,
            "CPU blackscholes should be near-flat at wg=1, got {cpu_1}"
        );
        let gpu_1 = f
            .series("case_1(GPU)")
            .unwrap()
            .get("blackscholes_1")
            .unwrap();
        assert!(
            gpu_1 < 0.5,
            "GPU blackscholes wg=1 should collapse, got {gpu_1}"
        );
    }
}
