//! Figure 10: OpenMP vs OpenCL throughput on the vectorization
//! microbenchmarks MBench1–8.
//!
//! Paper's shape (log-scale GFLOP/s): the OpenCL implementation matches or
//! beats its OpenMP counterpart on every bench, with the big gaps exactly
//! where the loop auto-vectorizer gives up (dependence chains, strides,
//! branches, uncountable loops) while the OpenCL cross-workitem vectorizer
//! does not need to care.
//!
//! The default plane derives throughput from the vectorizer verdicts and a
//! common scalar baseline; `Config::native` also measures real wall-clock
//! GFLOP/s for both planes on the host.

use cl_kernels::mbench;
use cl_vec::VectorizerPolicy;
use par_for::Team;

use crate::measure::Config;
use crate::report::{Figure, Series};

/// Scalar baseline throughput used for the modeled plane, GFLOP/s. The
/// absolute value is cosmetic (the figure is about ratios); roughly one
/// core-issue-limited flop stream on the Table I machine.
const SCALAR_BASE_GFLOPS: f64 = 4.0;

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig10",
        "Vectorization microbenchmarks: OpenMP vs OpenCL throughput (GFLOP/s)",
    );
    let policy = VectorizerPolicy::default();

    let mut s_omp = Series::new("OpenMP (modeled)");
    let mut s_ocl = Series::new("OpenCL (modeled)");
    for bench in mbench::all() {
        let omp = bench.openmp_report(policy);
        let ocl = bench.opencl_report(policy);
        s_omp.push(bench.name, SCALAR_BASE_GFLOPS * omp.speedup());
        s_ocl.push(bench.name, SCALAR_BASE_GFLOPS * ocl.speedup());
    }
    fig.series.push(s_omp);
    fig.series.push(s_ocl);

    if cfg.native {
        let team = Team::new(cl_pool::available_cores()).unwrap();
        let n_out = cfg.size(1 << 21, 1 << 17);
        let mut s_omp_n = Series::new("OpenMP (native)");
        let mut s_ocl_n = Series::new("OpenCL (native)");
        for bench in mbench::all() {
            let n_in = bench.input_len(n_out);
            let a = cl_kernels::util::random_f32(cfg.seed, n_in, 0.1, 1.5);
            let b = cl_kernels::util::random_f32(cfg.seed ^ 0x10, n_in, 0.1, 1.5);
            let mut c = vec![0.0f32; n_out];
            let flops = bench.flops_per_elem * n_out as f64;

            let t0 = std::time::Instant::now();
            bench.run_openmp(&team, &a, &b, &mut c, policy);
            let t_omp = t0.elapsed().as_secs_f64();

            let t0 = std::time::Instant::now();
            bench.run_opencl_plane(&team, &a, &b, &mut c);
            let t_ocl = t0.elapsed().as_secs_f64();

            s_omp_n.push(bench.name, flops / t_omp / 1e9);
            s_ocl_n.push(bench.name, flops / t_ocl / 1e9);
        }
        fig.series.push(s_omp_n);
        fig.series.push(s_ocl_n);
    }

    let gaps: Vec<String> = mbench::all()
        .iter()
        .filter(|b| !b.openmp_report(policy).vectorized)
        .map(|b| format!("{} ({})", b.name, b.trait_under_test))
        .collect();
    fig.notes.push(format!(
        "OpenCL ≥ OpenMP on every bench; loop vectorizer refused: {}.",
        gaps.join(", ")
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opencl_never_loses_and_wins_where_the_loop_vectorizer_fails() {
        let fig = run(&Config::default());
        let omp = fig.series("OpenMP (modeled)").unwrap();
        let ocl = fig.series("OpenCL (modeled)").unwrap();
        for (x, o) in &omp.points {
            let c = ocl.get(x).unwrap();
            assert!(c >= *o, "{x}: OpenCL {c} must be ≥ OpenMP {o}");
        }
        // The Figure-11 case: MBench2 must show a clear gap.
        let gap = ocl.get("MBench2").unwrap() / omp.get("MBench2").unwrap();
        assert!(gap >= 2.0, "MBench2 OpenCL/OpenMP gap {gap} too small");
        // And the parity cases really tie.
        assert_eq!(ocl.get("MBench1"), omp.get("MBench1"));
        assert_eq!(ocl.get("MBench8"), omp.get("MBench8"));
    }

    #[test]
    fn five_of_eight_benches_refuse_loop_vectorization() {
        let policy = VectorizerPolicy::default();
        let refused = mbench::all()
            .iter()
            .filter(|b| !b.openmp_report(policy).vectorized)
            .count();
        assert_eq!(refused, 5);
    }
}
