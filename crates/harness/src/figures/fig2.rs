//! Figure 2: Parboil kernels with 1×, 2×, 4× workload per workitem on the
//! CPU. Paper's shape: modest gains everywhere except `MRI-FHD:RhoPhi`,
//! which stays flat (its per-item work is already tiny relative to the
//! total and the kernel is bandwidth-bound at these sizes).

use crate::measure::Config;
use crate::profiles;
use crate::report::{Figure, Series};

use super::{cpu, launch};

struct ParboilCase {
    label: &'static str,
    items: usize,
    wg: usize,
    profile: fn(usize, &Config) -> perf_model::KernelProfile,
}

fn cases() -> Vec<ParboilCase> {
    vec![
        ParboilCase {
            label: "CP: cenergy",
            items: 64 * 512,
            wg: 16 * 8,
            profile: |k, cfg| profiles::cenergy(cfg.size(4096, 256), k),
        },
        ParboilCase {
            label: "MRI-Q: computePhiMag",
            items: 3072,
            wg: 512,
            profile: |k, _| profiles::phimag(k),
        },
        ParboilCase {
            label: "MRI-Q: computeQ",
            items: 32_768,
            wg: 256,
            profile: |k, cfg| profiles::mri_accum(cfg.size(2048, 128), k),
        },
        ParboilCase {
            label: "MRI-FHD: computeQ",
            items: 32_768,
            wg: 256,
            profile: |k, cfg| profiles::mri_accum(cfg.size(2048, 128), k),
        },
    ]
}

pub fn run(cfg: &Config) -> Figure {
    let mut fig = Figure::new(
        "fig2",
        "Parboil throughput with 1x/2x/4x workload per workitem (CPU, normalized)",
    );
    let cpu = cpu();
    for factor in [1usize, 2, 4] {
        let label = if factor == 1 {
            "base".to_string()
        } else {
            format!("{factor}X")
        };
        let mut s = Series::new(label);
        for c in cases() {
            let base_t = cpu.kernel_time(&(c.profile)(1, cfg), launch(c.items, c.wg));
            // The coalesced port shrinks the workgroup with the global size
            // (the Grewe/O'Boyle port keeps the *group count* constant so
            // local still divides global).
            let n = usize::max(c.items / factor, 1);
            let wg = usize::max(c.wg / factor, 1);
            let t = cpu.kernel_time(&(c.profile)(factor, cfg), launch(n, wg));
            s.push(c.label, base_t / t);
        }
        fig.series.push(s);
    }
    fig.notes.push(
        "Compute-bound Parboil kernels gain modestly from coalescing; the gain saturates \
         because per-item work already dwarfs the scheduling overhead (paper Fig. 2)."
            .to_string(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_never_hurts_on_cpu() {
        let fig = run(&Config::default());
        let base = fig.series("base").unwrap().clone();
        for s in ["2X", "4X"] {
            for (x, b) in &base.points {
                let v = fig.series(s).unwrap().get(x).unwrap();
                assert!(v >= *b * 0.99, "{s}/{x}: {v} vs base {b}");
            }
        }
    }

    #[test]
    fn gains_are_modest_for_compute_heavy_kernels() {
        // cenergy does thousands of flops per item: coalescing barely moves
        // it (unlike Square in fig1).
        let fig = run(&Config::default());
        let v = fig.series("4X").unwrap().get("CP: cenergy").unwrap();
        assert!(v < 1.5, "cenergy gain should be modest, got {v}");
    }

    #[test]
    fn covers_four_kernels() {
        let fig = run(&Config::default());
        assert_eq!(fig.series[0].points.len(), 4);
    }
}
