//! Result containers and renderers.

/// One plotted series (a line or bar group of the original figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    /// `(x-label, value)` points, in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, v: f64) {
        self.points.push((x.into(), v));
    }

    /// Value at an x-label.
    pub fn get(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(l, _)| l == x).map(|&(_, v)| v)
    }
}

/// One reproduced figure (or table rendered as series).
#[derive(Debug, Clone)]
pub struct Figure {
    /// "fig1", "fig2", …
    pub id: String,
    pub title: String,
    pub series: Vec<Series>,
    /// Free-form observations (the qualitative claims checked).
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All x-labels, in first-seen order.
    fn x_labels(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !seen.contains(&x.as_str()) {
                    seen.push(x.as_str());
                }
            }
        }
        seen
    }

    /// Render as a Markdown table: one row per x-label, one column per
    /// series.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}: {}\n\n", self.id, self.title);
        let xs = self.x_labels();
        out.push_str("| |");
        for s in &self.series {
            out.push_str(&format!(" {} |", s.label));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---:|");
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("| {x} |"));
            for s in &self.series {
                match s.get(x) {
                    Some(v) => out.push_str(&format!(" {} |", fmt_value(v))),
                    None => out.push_str("  |"),
                }
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out.push('\n');
        out
    }

    /// Render as CSV (`x,series,value` long form).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,value\n");
        for s in &self.series {
            for (x, v) in &s.points {
                out.push_str(&format!("{},{},{v}\n", csv_escape(x), csv_escape(&s.label)));
            }
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "demo");
        let mut a = Series::new("cpu");
        a.push("1", 1.0);
        a.push("10", 2.5);
        let mut b = Series::new("gpu");
        b.push("1", 1.0);
        b.push("10", 0.25);
        f.series.push(a);
        f.series.push(b);
        f.notes.push("cpu wins at 10".to_string());
        f
    }

    #[test]
    fn markdown_has_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("| 10 | 2.500 | 0.250 |"), "{md}");
        assert!(md.contains("cpu wins at 10"));
    }

    #[test]
    fn csv_is_long_form() {
        let csv = sample().to_csv();
        assert!(csv.lines().count() == 5, "{csv}");
        assert!(csv.contains("10,cpu,2.5"));
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert_eq!(f.series("gpu").unwrap().get("10"), Some(0.25));
        assert!(f.series("tpu").is_none());
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn value_formatting_adapts() {
        assert_eq!(fmt_value(1234.5), "1234");
        assert_eq!(fmt_value(12.34), "12.3");
        assert_eq!(fmt_value(0.5), "0.500");
        assert_eq!(fmt_value(0.0001), "1.000e-4");
    }
}
