//! Static [`KernelProfile`]s of the study's workloads, parameterized the
//! way the sweeps need them.
//!
//! These mirror the `profile()` implementations on the kernel structs in
//! `cl-kernels` (which require live buffers); the sweeps here only need the
//! numbers. Cross-checked by tests against the kernel-side profiles.

use perf_model::KernelProfile;

/// `square`: 1 mul, 8 B traffic per element.
pub fn square(items_per_wi: usize) -> KernelProfile {
    KernelProfile::streaming(1.0, 8.0).coalesced(items_per_wi)
}

/// `vectoadd`: 1 add, 12 B traffic per element.
pub fn vectoradd(items_per_wi: usize) -> KernelProfile {
    KernelProfile::streaming(1.0, 12.0).coalesced(items_per_wi)
}

/// Tiled `matrixMul` with inner dimension `k` and square tile side `t`.
///
/// The `local_traffic_bytes` term models the B-tile *column* walk of the
/// inner product: its stride is `4·t` bytes, so each element effectively
/// touches `min(4t, 64)` bytes of cache line — big tiles waste L1 bandwidth
/// on CPUs, which is why the CPU's optimal tile is smaller than the GPU's
/// (paper Section III-B.2).
pub fn matrixmul_tiled(k: usize, t: usize) -> KernelProfile {
    let kf = k as f64;
    let tf = t as f64;
    KernelProfile {
        flops: 2.0 * kf,
        mem_bytes: 2.0 * kf * 4.0 / tf,
        chain_ops: kf,
        ilp: 1.0,
        vectorizable: true,
        coalesced_access: true,
        item_contiguous: true,
        local_mem_per_group: 2.0 * tf * tf * 4.0,
        dependent_loads: 2.0 * kf / tf,
        local_traffic_bytes: kf * ((4.0 * tf).min(64.0) + 4.0),
    }
}

/// Naive `matrixMul` with inner dimension `k`.
pub fn matrixmul_naive(k: usize) -> KernelProfile {
    let kf = k as f64;
    KernelProfile {
        flops: 2.0 * kf,
        mem_bytes: 2.0 * kf * 4.0,
        chain_ops: kf,
        ilp: 1.0,
        vectorizable: true,
        // Coalesced across lanes (adjacent columns), strided within one
        // item's own B walk.
        coalesced_access: true,
        item_contiguous: false,
        local_mem_per_group: 0.0,
        dependent_loads: 2.0 * kf,
        local_traffic_bytes: 0.0,
    }
}

/// `blackScholes` with `opts` options per workitem (grid-stride loop).
pub fn blackscholes(opts: f64) -> KernelProfile {
    KernelProfile {
        flops: 60.0 * opts,
        mem_bytes: 20.0 * opts,
        chain_ops: 40.0 * opts,
        ilp: 1.0,
        vectorizable: true,
        coalesced_access: true,
        item_contiguous: true,
        local_mem_per_group: 0.0,
        dependent_loads: opts,
        local_traffic_bytes: 0.0,
    }
}

/// Parboil `cenergy` over `n_atoms` atoms, `items_per_wi` columns.
pub fn cenergy(n_atoms: usize, items_per_wi: usize) -> KernelProfile {
    let na = n_atoms as f64;
    let k = items_per_wi as f64;
    KernelProfile {
        flops: 10.0 * na * k,
        mem_bytes: 4.0 * k,
        chain_ops: 2.0 * na * k,
        ilp: 1.0,
        vectorizable: true,
        coalesced_access: true,
        item_contiguous: true,
        local_mem_per_group: 0.0,
        dependent_loads: 1.0,
        local_traffic_bytes: 0.0,
    }
}

/// Parboil `ComputePhiMag`.
pub fn phimag(items_per_wi: usize) -> KernelProfile {
    KernelProfile::streaming(3.0, 12.0).coalesced(items_per_wi)
}

/// Parboil `ComputeQ` / `FH` over `k_samples` trajectory samples.
pub fn mri_accum(k_samples: usize, items_per_wi: usize) -> KernelProfile {
    let nk = k_samples as f64;
    let k = items_per_wi as f64;
    KernelProfile {
        flops: 14.0 * nk * k,
        mem_bytes: 20.0 * k,
        chain_ops: 4.0 * nk * k,
        ilp: 2.0,
        vectorizable: true,
        coalesced_access: true,
        item_contiguous: true,
        local_mem_per_group: 0.0,
        dependent_loads: 3.0 * k,
        local_traffic_bytes: 0.0,
    }
}

/// ILP microbenchmark with `iters` rounds at independence `ilp`.
pub fn ilp(iters: usize, ilp_val: usize) -> KernelProfile {
    KernelProfile::compute((iters * 4 * 2) as f64).with_ilp(ilp_val as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cl_kernels::apps;
    use ocl_rt::{Context, Device};

    #[test]
    fn harness_profiles_match_kernel_profiles() {
        let ctx = Context::new(Device::native_cpu(1).unwrap());
        let sq = apps::square::build(&ctx, 100, 10, None, 1);
        assert_eq!(sq.kernel.profile(), square(10));
        let va = apps::vectoradd::build(&ctx, 100, 1, None, 1);
        assert_eq!(va.kernel.profile(), vectoradd(1));
    }

    #[test]
    fn matrixmul_tiling_reduces_traffic() {
        let naive = matrixmul_naive(256);
        let tiled = matrixmul_tiled(256, 16);
        assert_eq!(naive.flops, tiled.flops);
        assert!(tiled.mem_bytes < naive.mem_bytes / 8.0);
        assert!(tiled.local_mem_per_group > 0.0);
    }

    #[test]
    fn ilp_profile_keeps_flops_constant() {
        for k in 1..=4 {
            assert_eq!(ilp(100, k).flops, 800.0);
        }
    }
}
