//! # cl-harness — regenerates every table and figure of the paper
//!
//! One module per figure ([`figures`]) and one for the tables ([`tables`]).
//! Each experiment returns a [`report::Figure`]: labelled series of points
//! that render to Markdown/CSV exactly in the shape the paper plots.
//!
//! Two measurement planes (see DESIGN.md §4):
//!
//! * **Modeled** (default): deterministic times from `perf-model` — the
//!   reproduction of the paper's *shapes* that runs identically everywhere,
//!   including the GPU side (we have no GTX 580).
//! * **Native** (`Config::native`): wall-clock on the host through the real
//!   `ocl-rt` execution engine, for the CPU-side experiments whose
//!   mechanisms are physically present in this runtime (scheduling
//!   overhead, map-vs-copy, ILP, vectorization, affinity).
//!
//! The `repro` binary runs everything and writes `results/` +
//! `EXPERIMENTS.md`.

pub mod bench;
pub mod figures;
pub mod measure;
pub mod profiles;
pub mod report;
pub mod stats;
pub mod tables;

pub use measure::{measure_native, Config};
pub use report::{Figure, Series};
pub use stats::{measure_stable, summarize, Measurement};

/// All figure experiments in paper order.
pub fn all_figures(cfg: &Config) -> Vec<Figure> {
    vec![
        figures::fig1::run(cfg),
        figures::fig2::run(cfg),
        figures::fig3::run(cfg),
        figures::fig4::run(cfg),
        figures::fig5::run(cfg),
        figures::fig6::run(cfg),
        figures::fig7::run(cfg),
        figures::fig8::run(cfg),
        figures::fig9::run(cfg),
        figures::fig10::run(cfg),
        figures::fig11::run(cfg),
    ]
}
