//! Tables I–V of the paper, rendered as Markdown.

use cl_kernels::registry::{parboil_kernels, simple_apps, table4_rows, table5_rows};
use perf_model::{CpuSpec, GpuSpec};

/// Table I: the experimental environment — the paper's machines (which the
/// modeled plane reproduces) plus the actual host running the native plane.
pub fn table1() -> String {
    let cpu = CpuSpec::xeon_e5645();
    let gpu = GpuSpec::gtx580();
    let mut out = String::from("### Table I: Experimental environment\n\n");
    out.push_str("| | Modeled (paper hardware) |\n|---|---|\n");
    out.push_str(&format!("| CPU | {} |\n", cpu.name));
    out.push_str(&format!(
        "| Vector width | SSE 4.2, {} single-precision FP |\n",
        cpu.simd_width_f32
    ));
    out.push_str("| Caches | L1D/L2/L3: 64K/256K/12M |\n");
    out.push_str(&format!(
        "| FP peak performance | {:.1} Gflop/s |\n",
        cpu.peak_sp_gflops()
    ));
    out.push_str(&format!("| Core frequency | {:.2} GHz |\n", cpu.freq_ghz));
    out.push_str(&format!("| GPU | {} |\n", gpu.name));
    out.push_str(&format!("| # SMs | {} |\n", gpu.sms));
    out.push_str(&format!(
        "| GPU FP peak | {:.2} Tflop/s |\n",
        gpu.peak_sp_gflops() / 1000.0
    ));
    out.push_str(&format!(
        "| Shader clock | {:.0} MHz |\n",
        gpu.clock_ghz * 1000.0
    ));
    out.push_str(&format!(
        "| Native host | {} logical cores (wall-clock plane) |\n",
        cl_pool::available_cores()
    ));
    out.push('\n');
    out
}

fn app_table(title: &str, entries: &[cl_kernels::AppEntry]) -> String {
    let mut out = format!("### {title}\n\n| Benchmark | Kernel | global work size | local work size |\n|---|---|---|---|\n");
    for e in entries {
        let globals: Vec<String> = e.globals.iter().map(|g| g.describe()).collect();
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            e.benchmark,
            e.kernel,
            globals.join(", "),
            e.local.describe()
        ));
    }
    out.push('\n');
    out
}

/// Table II: characteristics of the simple applications.
pub fn table2() -> String {
    app_table(
        "Table II: Characteristics of the Simple Applications",
        &simple_apps(),
    )
}

/// Table III: characteristics of the Parboil benchmarks.
pub fn table3() -> String {
    app_table(
        "Table III: Characteristics of the Parboil Benchmarks",
        &parboil_kernels(),
    )
}

/// Table IV: workitem counts of the coalescing experiment.
pub fn table4() -> String {
    let mut out = String::from(
        "### Table IV: Number of workitems for each application\n\n\
         | Benchmark | base | 10x | 100x | 1000x |\n|---|---:|---:|---:|---:|\n",
    );
    for (label, counts) in table4_rows() {
        out.push_str(&format!("| {label} |"));
        for c in counts {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Table V: workgroup sizes of the Figure 3 sweep.
pub fn table5() -> String {
    let mut out = String::from(
        "### Table V: Workgroup size for each application\n\n\
         | Benchmark | base | case 1 | case 2 | case 3 | case 4 |\n|---|---|---|---|---|---|\n",
    );
    for row in table5_rows() {
        out.push_str(&format!("| {} | {} |", row.benchmark, row.base.describe()));
        for c in row.cases {
            out.push_str(&format!(" {} |", c.describe()));
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

/// All tables concatenated.
pub fn all_tables() -> String {
    format!(
        "{}{}{}{}{}",
        table1(),
        table2(),
        table3(),
        table4(),
        table5()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quotes_the_paper_numbers() {
        let t = table1();
        assert!(t.contains("230.4 Gflop/s"));
        assert!(t.contains("E5645"));
        assert!(t.contains("1544 MHz"));
        assert!(t.contains("1.58 Tflop/s"));
    }

    #[test]
    fn table2_lists_every_app() {
        let t = table2();
        for app in [
            "Square",
            "Vectoraddition",
            "Matrixmul",
            "Reduction",
            "Histogram",
            "Prefixsum",
            "Blackscholes",
            "Binomialoption",
            "MatrixmulNaive",
        ] {
            assert!(t.contains(app), "missing {app}");
        }
        assert!(t.contains("10000000"));
        assert!(t.contains("16 X 16"));
    }

    #[test]
    fn table4_divides_correctly() {
        let t = table4();
        assert!(t.contains("| Square 4 | 10000000 | 1000000 | 100000 | 10000 |"));
    }

    #[test]
    fn table5_shows_null_base() {
        let t = table5();
        assert!(t.contains("| Square | NULL | 1 | 10 | 100 | 1000 |"));
    }
}
