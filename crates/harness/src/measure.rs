//! Measurement configuration and the native wall-clock runner.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ocl_rt::{CommandQueue, Kernel, NDRange};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shrink problem sizes (for CI / `cargo test`); full sizes match the
    /// paper's Tables II-V.
    pub quick: bool,
    /// Also run native wall-clock measurements where the experiment
    /// supports them.
    pub native: bool,
    /// Seed for workload generation.
    pub seed: u64,
    /// Minimum accumulated kernel time per native measurement. The paper
    /// iterates to 90 s (Section III-A); the default here is scaled down,
    /// with the same repeat-and-average structure.
    pub min_measure_time: Duration,
    /// Upper bound on repetitions per native measurement.
    pub max_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            quick: true,
            native: false,
            seed: 0x0C1_2013,
            min_measure_time: Duration::from_millis(100),
            max_iters: 1000,
        }
    }
}

impl Config {
    pub fn full() -> Self {
        Config {
            quick: false,
            ..Default::default()
        }
    }

    pub fn with_native(mut self, on: bool) -> Self {
        self.native = on;
        self
    }

    /// Pick `full` unless quick mode, then `quick`.
    pub fn size(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// The paper's methodology (Section III-A): repeat the kernel until the
/// accumulated time is significant, then report the mean per-invocation
/// time in seconds.
pub fn measure_native(
    queue: &CommandQueue,
    kernel: &Arc<dyn Kernel>,
    range: NDRange,
    cfg: &Config,
) -> f64 {
    // Warm-up invocation (first-touch, pool wake-up).
    queue
        .enqueue_kernel(kernel, range)
        .expect("warm-up launch failed");
    let t0 = Instant::now();
    let mut iters = 0u32;
    while t0.elapsed() < cfg.min_measure_time && iters < cfg.max_iters {
        queue
            .enqueue_kernel(kernel, range)
            .expect("measured launch failed");
        iters += 1;
    }
    t0.elapsed().as_secs_f64() / iters.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocl_rt::{Context, Device};

    #[test]
    fn size_respects_quick() {
        let quick = Config::default();
        assert_eq!(quick.size(1000, 10), 10);
        assert_eq!(Config::full().size(1000, 10), 1000);
    }

    #[test]
    fn measure_returns_positive_mean() {
        let ctx = Context::new(Device::native_cpu(2).unwrap());
        let q = ctx.queue();
        let built = cl_kernels::apps::square::build(&ctx, 4096, 1, Some(256), 1);
        let cfg = Config {
            min_measure_time: Duration::from_millis(5),
            max_iters: 50,
            ..Default::default()
        };
        let t = measure_native(&q, &built.kernel, built.range, &cfg);
        assert!(t > 0.0 && t < 1.0);
    }
}
