//! `cl-trace` — replay figure workloads under the tracing subsystem and
//! report where the time goes.
//!
//! ```text
//! cl-trace [--workers W] [--seed S] [--out DIR] [--stable]
//!
//!   --workers W  pool workers of the device under test (default: min(4, cores))
//!   --seed S     input seed for the replayed kernels (default: 7)
//!   --out DIR    output directory for trace.md / trace.json (default: results)
//!   --stable     deterministic trace.md: volatile cells (timings, steal
//!                counts, span totals) render as "·" so the committed report
//!                is byte-identical across machines and runs — the CI
//!                results-drift gate regenerates it and diffs. The overhead
//!                sweep is skipped; structural data (groups, chunks,
//!                barriers) and the partition checks still run in full.
//! ```
//!
//! Replays two figure workloads on a traced native-CPU queue — the
//! Table II square coalescing sweep and the Figure 6 ILP ladder — plus a
//! write-vs-map transfer phase, then:
//!
//! 1. verifies every launch's chunk spans exactly partition its NDRange
//!    (nonzero exit otherwise — this is the CI smoke gate),
//! 2. writes `trace.json`, the chrome://tracing export of the full log
//!    (load via `chrome://tracing` or <https://ui.perfetto.dev>),
//! 3. writes `trace.md` with per-launch profiling breakdowns (submit /
//!    dispatch / compute / scheduler-idle) and per-phase aggregates
//!    (schedule vs compute vs barrier vs transfer) for both workloads,
//! 4. measures the tracing-disabled overhead of the instrumentation
//!    against run-to-run noise on a fig1-style sweep.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ocl_rt::{Context, Device, MemFlags, QueueConfig, Span, SpanKind, TraceLog};

/// Profiling breakdown of one traced launch, derived from its launch span
/// and chunk spans.
struct LaunchRow {
    kernel: String,
    config: String,
    /// `q{id}#{seq}` from the event's queue attribution — the same ids
    /// that tag the command in `cl-race`'s happens-before stream.
    queue_cmd: String,
    groups: usize,
    chunks: usize,
    steals: usize,
    barriers: u64,
    /// queued → completed.
    wall_ns: u64,
    /// queued → submitted (queue admission: recovery probe, sink install).
    submit_ns: u64,
    /// submitted → first chunk started (dispatch latency).
    dispatch_ns: u64,
    /// Σ chunk durations across workers (busy time).
    compute_ns: u64,
    /// Worker-seconds not spent in chunks during the execution window.
    idle_ns: u64,
    /// compute / (window × workers).
    util: f64,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// Build the row for the launch recorded last in `log`, attributing the
/// `Steal` spans recorded since `mark` to it.
fn row_for_last_launch(
    log: &TraceLog,
    ev: &ocl_rt::Event,
    mark: usize,
    workers: usize,
    config: &str,
) -> LaunchRow {
    let spans = log.spans();
    let launch = log.last_launch().expect("a launch span");
    let chunks = log.chunks_of(launch.launch);
    let steals = spans[mark..]
        .iter()
        .filter(|s| s.kind == SpanKind::Steal)
        .count();
    let p = launch.profiling;
    let window_ns = p.completed_ns.saturating_sub(p.started_ns);
    let compute_ns: u64 = chunks.iter().map(|c| c.dur_ns).sum();
    let budget_ns = window_ns * workers as u64;
    LaunchRow {
        kernel: launch.label.clone(),
        config: config.to_string(),
        queue_cmd: format!("q{}#{}", ev.queue_id(), ev.seq()),
        groups: launch.group_end,
        chunks: chunks.len(),
        steals,
        barriers: launch.barriers,
        wall_ns: p.completed_ns.saturating_sub(p.queued_ns),
        submit_ns: p.submitted_ns.saturating_sub(p.queued_ns),
        dispatch_ns: p.started_ns.saturating_sub(p.submitted_ns),
        compute_ns,
        idle_ns: budget_ns.saturating_sub(compute_ns),
        util: if budget_ns > 0 {
            compute_ns as f64 / budget_ns as f64
        } else {
            0.0
        },
    }
}

/// Per-phase aggregate of one workload's slice of the span log.
struct PhaseBreakdown {
    name: &'static str,
    launches: usize,
    /// Σ launch walls (queued → completed).
    wall_ns: u64,
    /// Σ chunk durations (worker busy time).
    compute_ns: u64,
    /// Σ (window × workers) − compute: scheduler idle + imbalance.
    schedule_ns: u64,
    /// Barrier phase boundaries recorded.
    barrier_events: usize,
    /// Σ transfer span durations (verify read-backs included).
    transfer_ns: u64,
    transfer_bytes: u64,
}

fn breakdown(name: &'static str, spans: &[Span], workers: usize) -> PhaseBreakdown {
    let mut b = PhaseBreakdown {
        name,
        launches: 0,
        wall_ns: 0,
        compute_ns: 0,
        schedule_ns: 0,
        barrier_events: 0,
        transfer_ns: 0,
        transfer_bytes: 0,
    };
    for s in spans {
        match s.kind {
            SpanKind::Launch => {
                b.launches += 1;
                let p = s.profiling;
                b.wall_ns += p.completed_ns.saturating_sub(p.queued_ns);
                b.schedule_ns += p.completed_ns.saturating_sub(p.started_ns) * workers as u64;
            }
            SpanKind::Chunk => b.compute_ns += s.dur_ns,
            SpanKind::Barrier => b.barrier_events += 1,
            SpanKind::Transfer => {
                b.transfer_ns += s.dur_ns;
                b.transfer_bytes += s.items;
            }
            _ => {}
        }
    }
    b.schedule_ns = b.schedule_ns.saturating_sub(b.compute_ns);
    b
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = usize::min(4, cl_pool::available_cores().max(1));
    let mut seed = 7u64;
    let mut out_dir = PathBuf::from("results");
    let mut stable = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = parse(&args, i, "--workers");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--stable" => stable = true,
            "--help" | "-h" => {
                println!("usage: cl-trace [--workers W] [--seed S] [--out DIR] [--stable]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    workers = workers.max(1);

    let ctx = Context::new(Device::native_cpu(workers).expect("trace device"));
    // Armed watchdog: the host monitors instead of helping execute chunks,
    // so every chunk span carries pool-worker attribution.
    let q = ctx.queue_with(
        QueueConfig::default()
            .tracing(true)
            .launch_timeout(Duration::from_secs(60)),
    );
    let log = q.trace().expect("tracing queue").clone();

    let mut rows: Vec<LaunchRow> = Vec::new();
    let mut failures = 0usize;
    let mut verify_launch = |log: &TraceLog| {
        let launch = log.last_launch().expect("a launch span");
        if let Err(e) = log.verify_chunk_partition(launch.launch, launch.group_end) {
            eprintln!("chunk partition violated for {}: {e}", launch.label);
            failures += 1;
        }
    };

    // ------ Workload 1: Table II — square, coalescing 1/10/100/1000 ------
    // n = 100_000 workitems of `x*x`, NULL local_work_size, like the
    // paper's Table II row for Square on CPU.
    let w1_start = log.len();
    const TABLE2_N: usize = 100_000;
    for factor in [1usize, 10, 100, 1000] {
        let mark = log.len();
        let built = cl_kernels::apps::square::build(&ctx, TABLE2_N, factor, None, seed);
        let ev = q
            .enqueue_kernel(&built.kernel, built.range)
            .expect("square enqueue");
        verify_launch(&log);
        rows.push(row_for_last_launch(
            &log,
            &ev,
            mark,
            workers,
            &format!("coalesce x{factor}"),
        ));
        built.verify(&q).expect("square results");
    }
    let w1_spans = log.spans()[w1_start..].to_vec();

    // ------ Workload 2: Figure 6 — ILP ladder 1..4 on the native CPU ------
    let w2_start = log.len();
    const ILP_N: usize = 1 << 14;
    const ILP_ITERS: usize = 64;
    for ilp in 1..=4usize {
        let mark = log.len();
        let built = cl_kernels::ilp::build(&ctx, ILP_N, ilp, ILP_ITERS, 256, seed);
        let ev = q
            .enqueue_kernel(&built.kernel, built.range)
            .expect("ilp enqueue");
        verify_launch(&log);
        rows.push(row_for_last_launch(
            &log,
            &ev,
            mark,
            workers,
            &format!("ilp={ilp}"),
        ));
        built.verify(&q).expect("ilp results");
    }
    let w2_spans = log.spans()[w2_start..].to_vec();

    // ------ Transfer phase: explicit write/read vs mapping (Figure 7) ------
    let tx_start = log.len();
    const TX_BYTES: usize = 4 << 20;
    let host: Vec<u8> = (0..TX_BYTES).map(|b| b as u8).collect();
    let buf = ctx
        .buffer::<u8>(MemFlags::default(), TX_BYTES)
        .expect("buffer");
    q.write_buffer(&buf, 0, &host).expect("write");
    let mut back = vec![0u8; TX_BYTES];
    q.read_buffer(&buf, 0, &mut back).expect("read");
    assert_eq!(back, host, "explicit transfer roundtrip");
    {
        let (mut m, _ev) = q.map_buffer_mut(&buf).expect("map");
        m[0] = 0xA5;
    }
    let (m, _ev) = q.map_buffer(&buf).expect("map read");
    assert_eq!(m[0], 0xA5, "mapped mutation visible");
    drop(m);
    let tx_spans = log.spans()[tx_start..].to_vec();

    // ------ Overhead: instrumentation cost with tracing disabled ------
    // A fig1-style coalescing sweep run three times on *untraced* queues
    // (run-to-run noise) and once traced. The disabled path must be free:
    // its spread should sit inside the noise band, and we report the
    // traced run's cost alongside.
    let sweep = |cfg: QueueConfig| -> f64 {
        let q = ctx.queue_with(cfg.launch_timeout(Duration::from_secs(60)));
        let t0 = Instant::now();
        for _ in 0..3 {
            for factor in [1usize, 10, 100, 1000] {
                let built = cl_kernels::apps::square::build(&ctx, TABLE2_N, factor, None, seed);
                q.enqueue_kernel(&built.kernel, built.range).expect("sweep");
            }
        }
        t0.elapsed().as_secs_f64()
    };
    // The overhead comparison is pure wall-clock — meaningless to commit in
    // the deterministic report, so --stable skips the measurement.
    let (noise, traced_cost) = if stable {
        (0.0, 0.0)
    } else {
        let off_a = sweep(QueueConfig::default());
        let off_b = sweep(QueueConfig::default());
        let on = sweep(QueueConfig::default().tracing(true));
        let base = off_a.min(off_b);
        ((off_a - off_b).abs() / base, on / base - 1.0)
    };

    // ------ Reports ------
    fs::create_dir_all(&out_dir).expect("create output directory");
    let json = log.to_chrome_json();
    fs::write(out_dir.join("trace.json"), &json).expect("write trace.json");

    let phases = [
        breakdown("Table II square sweep", &w1_spans, workers),
        breakdown("Figure 6 ILP ladder", &w2_spans, workers),
        breakdown("Transfer write vs map", &tx_spans, workers),
    ];
    let md = render_md(
        &rows,
        &phases,
        workers,
        noise,
        traced_cost,
        log.len(),
        stable,
    );
    fs::write(out_dir.join("trace.md"), md).expect("write trace.md");

    println!(
        "cl-trace: {} spans across {} launches; partition checks {}; \
         disabled-path noise {:.2}%, traced cost {:+.2}% → {}",
        log.len(),
        rows.len(),
        if failures == 0 { "passed" } else { "FAILED" },
        noise * 100.0,
        traced_cost * 100.0,
        out_dir.join("trace.md").display(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_md(
    rows: &[LaunchRow],
    phases: &[PhaseBreakdown],
    workers: usize,
    noise: f64,
    traced_cost: f64,
    spans: usize,
    stable: bool,
) -> String {
    // In --stable mode every wall-clock-derived cell renders as "·": the
    // committed report must be byte-identical run to run, and only the
    // structure (launches, groups, chunks, barriers, partition proofs) is
    // deterministic. Counts that depend on scheduling (steals, span totals)
    // are volatile too.
    let t = |v: String| if stable { "·".to_string() } else { v };
    let mut md = String::new();
    md.push_str("# Trace report (`cl-trace`)\n\n");
    let _ = writeln!(
        md,
        "Native-CPU device, {workers} workers, armed launch watchdog (the host \
         monitors rather than executes, so chunk spans carry worker/core \
         attribution). {} spans total; the full log is exported to \
         [`trace.json`](trace.json) — load it in `chrome://tracing` or \
         <https://ui.perfetto.dev>.\n",
        t(spans.to_string())
    );
    if stable {
        md.push_str(
            "*Stable mode (`--stable`): wall-clock cells and scheduling-dependent \
             counts render as `·` so this report can be committed and \
             drift-checked; run `cl-trace` without the flag for live numbers.*\n\n",
        );
    }

    md.push_str("## Per-launch profiling breakdown\n\n");
    md.push_str(
        "Timestamps from the events' OpenCL-style profiling info \
         (`queued ≤ submitted ≤ started ≤ completed`): *submit* = queue \
         admission, *dispatch* = submit → first chunk starts, *compute* = Σ \
         chunk durations across workers, *idle* = worker-time in the \
         execution window not spent in chunks, *util* = compute / (window × \
         workers).\n\n",
    );
    md.push_str(
        "| Kernel | Config | Cmd | Groups | Chunks | Steals | Barriers | Wall µs | \
         Submit µs | Dispatch µs | Compute µs | Idle µs | Util |\n",
    );
    md.push_str("|---|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.kernel,
            r.config,
            r.queue_cmd,
            r.groups,
            r.chunks,
            t(r.steals.to_string()),
            r.barriers,
            t(format!("{:.1}", us(r.wall_ns))),
            t(format!("{:.1}", us(r.submit_ns))),
            t(format!("{:.1}", us(r.dispatch_ns))),
            t(format!("{:.1}", us(r.compute_ns))),
            t(format!("{:.1}", us(r.idle_ns))),
            t(format!("{:.0}%", r.util * 100.0)),
        );
    }

    md.push_str("\n## Per-phase breakdown\n\n");
    md.push_str(
        "Where each workload's time goes: *compute* is worker busy time in \
         chunks, *schedule* is the rest of the workers' execution-window \
         budget (dispatch latency, deque contention, imbalance), *transfer* \
         covers the blocking buffer commands (including result read-backs).\n\n",
    );
    md.push_str(
        "| Workload | Launches | Wall µs | Compute µs | Schedule µs | \
         Barrier events | Transfer µs | Transfer bytes |\n",
    );
    md.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for p in phases {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            p.name,
            p.launches,
            t(format!("{:.1}", us(p.wall_ns))),
            t(format!("{:.1}", us(p.compute_ns))),
            t(format!("{:.1}", us(p.schedule_ns))),
            p.barrier_events,
            t(format!("{:.1}", us(p.transfer_ns))),
            p.transfer_bytes,
        );
    }

    md.push_str("\n## Disabled-path overhead\n\n");
    if stable {
        md.push_str(
            "Skipped in stable mode (pure wall-clock comparison). The \
             continuous measurement lives in `cl-bench` as \
             `overhead/trace-off`, gated against `BENCH_BASELINE.json`.\n",
        );
    } else {
        let _ = writeln!(
            md,
            "A 12-launch square coalescing sweep, run twice with tracing \
             disabled and once enabled: run-to-run noise {:.2}%, traced run \
             {:+.2}% vs the faster disabled run. With tracing off the queue \
             holds no `TraceLog` and every record site is a skipped `Option` \
             check, so the disabled spread is pure noise.",
            noise * 100.0,
            traced_cost * 100.0,
        );
    }
    md
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: not a valid value: {}", args[i]))
}
