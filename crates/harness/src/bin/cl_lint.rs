//! `cl-lint` — statically check every registry kernel's memory contract.
//!
//! ```text
//! cl-lint [--deny-warnings] [--out DIR] [--default-wg N]
//!
//!   --deny-warnings  exit nonzero on any finding (even unproven warnings)
//!   --out DIR        output directory (default: results)
//!   --default-wg N   workgroup size cap for NULL locals (default: 256)
//! ```
//!
//! Sweeps the Table II/III launch geometries ([`cl_kernels::registry`]),
//! runs the four static lints of `cl-analyze` on each kernel's access spec
//! (disjoint writes, local races, barrier divergence, bounds), and writes
//! `lint.md` + `lint.csv` with a coverage column: every launch is either
//! `spec` (fully analyzed) or `exempt` (explicitly unspecifiable at that
//! geometry, with a documented reason). A proven violation or a
//! *silently*-unspecified kernel always fails the run; warnings fail only
//! under `--deny-warnings`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use cl_analyze::{analyze, analyze_coarsen, CoarsenVerdict, Severity, Verdict};
use cl_kernels::access::SpecCoverage;
use cl_kernels::registry::{parboil_kernels, simple_apps};

struct Row {
    benchmark: &'static str,
    kernel: &'static str,
    global: String,
    local: [usize; 3],
    /// `Some(reason)` for explicitly exempt launches (no spec at this
    /// geometry, documented why); the verdict fields are then meaningless.
    exempt: Option<&'static str>,
    disjoint: Verdict,
    local_races: Verdict,
    barriers: Verdict,
    bounds: Verdict,
    checked_writes: usize,
    checked_accesses: usize,
    /// Coarsening-legality verdict (`cl_analyze::coarsen`); `None` for
    /// exempt launches.
    coarsen: Option<CoarsenVerdict>,
    findings: Vec<(Severity, String)>,
}

/// Spec'd kernels allowed to be non-`Proven` for coarsening. A spec'd
/// kernel outside this list that regresses from `Proven` fails the run —
/// the registry's whole point is that its kernels stay certifiable.
const ALLOW_UNPROVEN_COARSEN: &[(&str, &str)] = &[];

fn coarsen_allowed(benchmark: &str, kernel: &str) -> bool {
    ALLOW_UNPROVEN_COARSEN
        .iter()
        .any(|&(b, k)| b == benchmark && k == kernel)
}

impl Row {
    fn coverage(&self) -> &'static str {
        if self.exempt.is_some() {
            "exempt"
        } else {
            "spec"
        }
    }

    fn verdict_cell(&self, v: Verdict) -> &'static str {
        if self.exempt.is_some() {
            "—"
        } else {
            verdict_str(v)
        }
    }
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Proven => "proven",
        Verdict::Violation => "VIOLATION",
        Verdict::Unknown => "unknown",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_warnings = false;
    let mut out_dir = PathBuf::from("results");
    let mut default_wg = 256usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--default-wg" => {
                i += 1;
                default_wg = args
                    .get(i)
                    .expect("--default-wg needs a size")
                    .parse()
                    .expect("--default-wg needs an integer");
            }
            "--help" | "-h" => {
                println!("usage: cl-lint [--deny-warnings] [--out DIR] [--default-wg N]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for entry in simple_apps().into_iter().chain(parboil_kernels()) {
        for &global in &entry.globals {
            let resolved = match entry.resolve(global, default_wg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!(
                        "cl-lint: {}/{} at {}: unresolvable geometry: {e}",
                        entry.benchmark,
                        entry.kernel,
                        global.describe()
                    );
                    std::process::exit(1);
                }
            };
            let spec = match entry.coverage(global, default_wg) {
                // Silently unspecified: the registry grew a kernel nobody
                // wrote a spec (or an exemption) for. Always an error.
                None => {
                    missing.push(format!(
                        "{}/{} at {}",
                        entry.benchmark,
                        entry.kernel,
                        global.describe()
                    ));
                    continue;
                }
                Some(SpecCoverage::Exempt(reason)) => {
                    rows.push(Row {
                        benchmark: entry.benchmark,
                        kernel: entry.kernel,
                        global: global.describe(),
                        local: resolved.local,
                        exempt: Some(reason),
                        disjoint: Verdict::Unknown,
                        local_races: Verdict::Unknown,
                        barriers: Verdict::Unknown,
                        bounds: Verdict::Unknown,
                        checked_writes: 0,
                        checked_accesses: 0,
                        coarsen: None,
                        findings: Vec::new(),
                    });
                    continue;
                }
                Some(SpecCoverage::Spec(spec)) => *spec,
            };
            let a = analyze(&spec);
            let coarsen = analyze_coarsen(&spec).verdict;
            rows.push(Row {
                benchmark: entry.benchmark,
                kernel: entry.kernel,
                global: global.describe(),
                local: resolved.local,
                exempt: None,
                disjoint: a.disjoint_writes,
                local_races: a.local_races,
                barriers: a.barrier_divergence,
                bounds: a.bounds,
                checked_writes: a.checked_writes,
                checked_accesses: a.checked_accesses,
                coarsen: Some(coarsen),
                findings: a
                    .findings
                    .iter()
                    .map(|f| (f.severity, format!("[{}] {}", f.kind.as_str(), f.message)))
                    .collect(),
            });
        }
    }

    fs::create_dir_all(&out_dir).expect("create output directory");
    fs::write(
        out_dir.join("lint.md"),
        render_md(&rows, &missing, default_wg),
    )
    .expect("write lint.md");
    fs::write(out_dir.join("lint.csv"), render_csv(&rows)).expect("write lint.csv");

    let errors: usize = rows
        .iter()
        .flat_map(|r| &r.findings)
        .filter(|(s, _)| *s == Severity::Error)
        .count();
    let warnings: usize = rows
        .iter()
        .flat_map(|r| &r.findings)
        .filter(|(s, _)| *s == Severity::Warning)
        .count();
    for row in &rows {
        for (sev, msg) in &row.findings {
            let tag = match sev {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            eprintln!(
                "cl-lint: {tag}: {}/{} at {}: {msg}",
                row.benchmark, row.kernel, row.global
            );
        }
    }
    for m in &missing {
        eprintln!("cl-lint: error: {m}: kernel publishes no access spec");
    }
    // Coarsening regressions: a spec'd registry kernel the prover can no
    // longer certify (outside the documented allowlist) fails the run.
    let mut coarsen_regressions = 0usize;
    for row in &rows {
        if let Some(v) = &row.coarsen {
            if !v.is_proven() && !coarsen_allowed(row.benchmark, row.kernel) {
                coarsen_regressions += 1;
                eprintln!(
                    "cl-lint: error: {}/{} at {}: coarsening verdict regressed to {}: {}",
                    row.benchmark,
                    row.kernel,
                    row.global,
                    v.label(),
                    v.reason()
                );
            }
        }
    }
    let exempt = rows.iter().filter(|r| r.exempt.is_some()).count();
    println!(
        "cl-lint: {} launches checked, {errors} errors, {warnings} warnings, \
         {exempt} exempt, {} without specs",
        rows.len() - exempt,
        missing.len()
    );

    if errors > 0
        || !missing.is_empty()
        || coarsen_regressions > 0
        || (deny_warnings && warnings > 0)
    {
        std::process::exit(1);
    }
}

fn render_md(rows: &[Row], missing: &[String], default_wg: usize) -> String {
    let mut md = String::new();
    md.push_str("# Static lint of the registry kernels\n\n");
    let _ = writeln!(
        md,
        "Every Table II/III launch geometry, checked by `cl-analyze` \
         (NULL locals resolved with a {default_wg}-workitem cap). \
         `proven` means the property holds for every workitem of the \
         launch; `unknown` would fall back to the dynamic validator.\n"
    );
    md.push_str(
        "| Benchmark | Kernel | Global | Local | Coverage | Disjoint writes | Local races | Barriers | Bounds | Coarsen | Writes | Accesses |\n",
    );
    md.push_str("|---|---|---|---|---|---|---|---|---|---|---:|---:|\n");
    for r in rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {}x{}x{} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.benchmark,
            r.kernel,
            r.global,
            r.local[0],
            r.local[1],
            r.local[2],
            r.coverage(),
            r.verdict_cell(r.disjoint),
            r.verdict_cell(r.local_races),
            r.verdict_cell(r.barriers),
            r.verdict_cell(r.bounds),
            r.coarsen.as_ref().map_or("—".into(), |v| v.label()),
            r.checked_writes,
            r.checked_accesses,
        );
    }
    let exempt: Vec<&Row> = rows.iter().filter(|r| r.exempt.is_some()).collect();
    if !exempt.is_empty() {
        md.push_str("\n## Exempt launches\n\n");
        for r in exempt {
            let _ = writeln!(
                md,
                "- {}/{} at {}: {}",
                r.benchmark,
                r.kernel,
                r.global,
                r.exempt.unwrap()
            );
        }
    }
    let all_findings: Vec<String> = rows
        .iter()
        .flat_map(|r| {
            r.findings
                .iter()
                .map(move |(_, m)| format!("- {}/{} at {}: {m}", r.benchmark, r.kernel, r.global))
        })
        .chain(missing.iter().map(|m| format!("- {m}: no access spec")))
        .collect();
    if all_findings.is_empty() {
        md.push_str("\nNo findings: all four properties proven on every launch.\n");
    } else {
        md.push_str("\n## Findings\n\n");
        for f in all_findings {
            md.push_str(&f);
            md.push('\n');
        }
    }
    md
}

fn render_csv(rows: &[Row]) -> String {
    let mut csv = String::from(
        "benchmark,kernel,global,local,coverage,disjoint_writes,local_races,barrier_divergence,bounds,coarsen,checked_writes,checked_accesses,findings\n",
    );
    for r in rows {
        let cell = |v: Verdict| {
            if r.exempt.is_some() {
                "-"
            } else {
                verdict_str(v)
            }
        };
        csv.push_str(&cl_util::csv::row([
            r.benchmark.to_string(),
            r.kernel.to_string(),
            r.global.clone(),
            format!("{}x{}x{}", r.local[0], r.local[1], r.local[2]),
            r.coverage().to_string(),
            cell(r.disjoint).to_string(),
            cell(r.local_races).to_string(),
            cell(r.barriers).to_string(),
            cell(r.bounds).to_string(),
            r.coarsen.as_ref().map_or("-".to_string(), |v| v.label()),
            r.checked_writes.to_string(),
            r.checked_accesses.to_string(),
            r.findings.len().to_string(),
        ]));
    }
    csv
}
