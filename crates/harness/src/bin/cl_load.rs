//! `cl-load` — multi-tenant load harness for the serving layer (`cl-serve`).
//!
//! ```text
//! cl-load [--tenants N] [--faulty K] [--rounds R] [--seed S] [--workers W]
//!         [--timeout-ms T] [--stable] [--out DIR]
//!
//!   --tenants N     concurrent tenants in the isolation soak (default: 16)
//!   --faulty K      tenants injecting seeded faults (default: 2)
//!   --rounds R      rounds per tenant (default: 3)
//!   --seed S        PRNG seed for per-tenant workload mixes (default: 7)
//!   --workers W     pool workers of the shared device (default: min(4, cores))
//!   --timeout-ms T  launch watchdog per enqueue (default: 250)
//!   --stable        deterministic serve.md (volatile cells render as "·")
//!   --out DIR       output directory for serve.md (default: results)
//! ```
//!
//! **Phase 1 — isolation soak.** N tenants run concurrently on one
//! [`cl_serve::Server`] over a shared pool. The first K tenants inject one
//! seeded fault per round (panic, fatal worker-retiring fault, payload
//! bomb, watchdog-killed stall, or barrier desync) and must observe the
//! *right* contained `ClError`, then recover with a bit-exact probe on the
//! same queue. The other N−K tenants run mixed launch/write/read/map
//! traffic whose outputs must stay bit-exact, with every launch bounded by
//! a generous stall budget. Any mismatch, wrong error, failed probe, or
//! over-budget stall is an **isolation violation** and fails the run.
//!
//! **Phase 2 — overload scenarios.** Deterministic admission-control and
//! shedding checks on purpose-built tiny servers: in-flight and byte
//! quotas refuse with `Backpressure`; a full waiting room rejects the
//! newest lowest-weight arrival and displaces the newest light waiter for
//! a heavier one; overloaded clean traffic never sees any error *other*
//! than `Backpressure`; a tenant that exhausts its fault budget is evicted
//! (`TenantEvicted`); and `launch_with_retry` rides out transient
//! backpressure with jittered exponential backoff.
//!
//! The report (`results/serve.md`) is deterministic under `--stable`:
//! per-tenant op counts and verdicts are schedule-independent, and
//! wall-clock cells (p50/p99, respawns, wall time) render as "·".

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cl_kernels::chaos::{reference, ChaosKernel, ChaosMode};
use cl_serve::{ClError, RetryPolicy, ServeConfig, Server, StatsSnapshot, Tenant, TenantConfig};
use cl_util::XorShift;
use ocl_rt::{Kernel, MemFlags, NDRange};

struct TenantReport {
    name: String,
    weight: u32,
    faulty: bool,
    stats: StatsSnapshot,
    /// Clean checks (launch outputs, write/read roundtrips, map views)
    /// that compared bit-exact.
    exact: usize,
    /// Total clean checks run.
    checks: usize,
    /// Faulty rounds whose enqueue reported the expected contained error
    /// and whose same-queue probe recovered bit-exactly.
    contained: usize,
    /// Total fault injections.
    injected: usize,
    /// Launches that exceeded the stall budget.
    stalled: usize,
    /// Worst observed wall-clock launch time.
    worst: Duration,
}

impl TenantReport {
    fn violations(&self) -> usize {
        (self.checks - self.exact) + (self.injected - self.contained) + self.stalled
    }
}

struct Scenario {
    name: &'static str,
    what: &'static str,
    ok: bool,
    detail: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tenants = 16usize;
    let mut faulty = 2usize;
    let mut rounds = 3usize;
    let mut seed = 7u64;
    let mut workers = usize::min(4, cl_pool::available_cores().max(1));
    let mut timeout_ms = 250u64;
    let mut stable = false;
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenants" => {
                i += 1;
                tenants = parse(&args, i, "--tenants");
            }
            "--faulty" => {
                i += 1;
                faulty = parse(&args, i, "--faulty");
            }
            "--rounds" => {
                i += 1;
                rounds = parse(&args, i, "--rounds");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--workers" => {
                i += 1;
                workers = parse(&args, i, "--workers");
            }
            "--timeout-ms" => {
                i += 1;
                timeout_ms = parse(&args, i, "--timeout-ms");
            }
            "--stable" => stable = true,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: cl-load [--tenants N] [--faulty K] [--rounds R] [--seed S] \
                     [--workers W] [--timeout-ms T] [--stable] [--out DIR]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let tenants = tenants.max(1);
    let faulty = faulty.min(tenants);
    let workers = workers.max(1);
    let timeout = Duration::from_millis(timeout_ms.max(1));
    // A clean launch may queue behind several watchdog-killed stalls before
    // its slot frees; the stall budget is deliberately generous — the
    // violation it guards against is an *unbounded* stall.
    let stall_budget = timeout * 20 + Duration::from_secs(5);

    // Faulty rounds assert the exact faulting gid; see cl-chaos.
    if std::env::var_os("CL_EXACT_GID").is_none() {
        std::env::set_var("CL_EXACT_GID", "1");
    }
    cl_kernels::chaos::install_quiet_panic_hook();

    let t0 = Instant::now();
    let reports = isolation_soak(
        tenants,
        faulty,
        rounds,
        seed,
        workers,
        timeout,
        stall_budget,
    );
    let scenarios = overload_scenarios(timeout);
    let elapsed = t0.elapsed();

    let violations: usize = reports.iter().map(|r| r.violations()).sum();
    let scen_failed = scenarios.iter().filter(|s| !s.ok).count();

    fs::create_dir_all(&out_dir).expect("create output directory");
    fs::write(
        out_dir.join("serve.md"),
        render_md(
            &reports, &scenarios, tenants, faulty, rounds, seed, workers, timeout, violations,
            elapsed, stable,
        ),
    )
    .expect("write serve.md");

    for r in reports.iter().filter(|r| r.violations() > 0) {
        eprintln!(
            "cl-load: {} ISOLATION VIOLATION: {}/{} checks exact, {}/{} faults contained, \
             {} stalls over budget (worst {:?})",
            r.name, r.exact, r.checks, r.contained, r.injected, r.stalled, r.worst
        );
    }
    for s in scenarios.iter().filter(|s| !s.ok) {
        eprintln!("cl-load: scenario {} FAILED: {}", s.name, s.detail);
    }
    println!(
        "cl-load: {tenants} tenants ({faulty} faulty) x {rounds} rounds on {workers} workers: \
         {violations} isolation violations, {}/{} overload scenarios ok ({:.2}s)",
        scenarios.len() - scen_failed,
        scenarios.len(),
        elapsed.as_secs_f64()
    );
    if violations > 0 || scen_failed > 0 {
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: not a valid value: {}", args[i]))
}

/// Phase 1: N concurrent tenants, the first `faulty` of them injecting
/// seeded faults, the rest running bit-exact mixed traffic.
fn isolation_soak(
    tenants: usize,
    faulty: usize,
    rounds: usize,
    seed: u64,
    workers: usize,
    timeout: Duration,
    stall_budget: Duration,
) -> Vec<TenantReport> {
    let srv = Server::new(
        workers,
        ServeConfig::default()
            // No shedding in this phase: the waiting room fits every tenant.
            .max_waiting(tenants * 2 + 8)
            .launch_timeout(timeout),
    )
    .expect("load device");

    let handles: Vec<Tenant> = (0..tenants)
        .map(|i| {
            srv.tenant(
                TenantConfig::default()
                    .name(format!("tenant-{i:02}"))
                    // Mixed weights exercise the WRR lanes; fairness across
                    // them is asserted by shape (everyone finishes bounded).
                    .weight(1 + (i % 3) as u32)
                    .launch_timeout(timeout),
            )
        })
        .collect();

    let mut reports = Vec::with_capacity(tenants);
    std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(tenants);
        for (i, t) in handles.iter().enumerate() {
            let is_faulty = i < faulty;
            // Per-tenant stream: the workload mix depends only on (seed, i),
            // never on scheduling.
            let mut rng = XorShift::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            joins.push(s.spawn(move || {
                if is_faulty {
                    run_faulty_tenant(t, rounds, &mut rng, workers, stall_budget)
                } else {
                    run_clean_tenant(t, rounds, &mut rng, stall_budget)
                }
            }));
        }
        for (j, t) in joins.into_iter().zip(&handles) {
            let (exact, checks, contained, injected, stalled, worst) =
                j.join().expect("tenant thread");
            reports.push(TenantReport {
                name: t.name().to_string(),
                weight: 1 + (reports.len() % 3) as u32,
                faulty: reports.len() < faulty,
                stats: t.stats(),
                exact,
                checks,
                contained,
                injected,
                stalled,
                worst,
            });
        }
    });
    reports
}

type TenantOutcome = (usize, usize, usize, usize, usize, Duration);

/// Mixed clean traffic: a verified launch, a write/read roundtrip, and (on
/// alternate rounds) a map check. Returns
/// (exact, checks, contained=0, injected=0, stalled, worst).
fn run_clean_tenant(
    t: &Tenant,
    rounds: usize,
    rng: &mut XorShift,
    stall_budget: Duration,
) -> TenantOutcome {
    let mut exact = 0usize;
    let mut checks = 0usize;
    let mut stalled = 0usize;
    let mut worst = Duration::ZERO;
    for round in 0..rounds {
        let local = 32usize;
        let groups = 2 + rng.range_usize(0, 3);
        let n = groups * local;

        // Verified launch: chaos kernel in Clean mode writes 3i+1.
        let out = t.buffer::<u32>(MemFlags::default(), n).expect("buffer");
        let kernel: Arc<dyn Kernel> =
            Arc::new(ChaosKernel::new(out.clone(), ChaosMode::Clean, groups));
        let t1 = Instant::now();
        let launched = t.launch(&kernel, NDRange::d1(n).local1(local));
        let took = t1.elapsed();
        worst = worst.max(took);
        if took > stall_budget {
            stalled += 1;
        }
        checks += 1;
        if launched.is_ok() {
            let mut host = vec![0u32; n];
            if t.read(&out, 0, &mut host).is_ok() && host == reference(n) {
                exact += 1;
            }
        }

        // Write/read roundtrip on a second buffer.
        let data: Vec<u32> = (0..n as u32)
            .map(|v| v.wrapping_mul(rng.next_u32() | 1))
            .collect();
        let buf = t.buffer::<u32>(MemFlags::default(), n).expect("buffer");
        checks += 1;
        let mut back = vec![0u32; n];
        if t.write(&buf, 0, &data).is_ok() && t.read(&buf, 0, &mut back).is_ok() && back == data {
            exact += 1;
        }

        // Map view check on alternate rounds (the view unmaps on drop).
        if round % 2 == 0 {
            checks += 1;
            if let Ok((view, _ev)) = t.map(&out) {
                if *view == reference(n)[..] {
                    exact += 1;
                }
            }
        }
    }
    (exact, checks, 0, 0, stalled, worst)
}

/// One seeded fault per round, judged like cl-chaos, followed by a
/// bit-exact recovery probe on the same queue. Returns
/// (exact, checks, contained, injected, stalled, worst).
fn run_faulty_tenant(
    t: &Tenant,
    rounds: usize,
    rng: &mut XorShift,
    workers: usize,
    stall_budget: Duration,
) -> TenantOutcome {
    let mut exact = 0usize;
    let mut checks = 0usize;
    let mut contained = 0usize;
    let mut stalled = 0usize;
    let mut worst = Duration::ZERO;
    for _ in 0..rounds {
        let local = 32usize;
        let kind = rng.next_u64() % 5;
        let mut groups = 2 + (rng.next_u64() % 3) as usize;
        if kind == 4 {
            // Barrier desync parks surviving groups on a cross-group
            // rendezvous; never park more groups than workers.
            groups = groups.min(workers);
        }
        let n = groups * local;
        let mode = match kind {
            0 => ChaosMode::PanicAt {
                gid: (rng.next_u64() as usize) % n,
            },
            1 => ChaosMode::FatalAt {
                gid: (rng.next_u64() as usize) % n,
            },
            2 => ChaosMode::PayloadBomb {
                gid: (rng.next_u64() as usize) % n,
            },
            3 => ChaosMode::StallUntilAbort {
                group: (rng.next_u64() as usize) % groups,
            },
            _ => ChaosMode::BarrierDesync {
                panic_group: (rng.next_u64() as usize) % groups,
            },
        };

        let out = t.buffer::<u32>(MemFlags::default(), n).expect("buffer");
        let kernel: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(out.clone(), mode, groups));
        let t1 = Instant::now();
        let res = t.launch(&kernel, NDRange::d1(n).local1(local));
        let took = t1.elapsed();
        worst = worst.max(took);
        if took > stall_budget {
            stalled += 1;
        }
        let error_ok = judge_multi_tenant(&mode, &res);

        // Recovery probe on the same queue, bit-exact.
        let probe: Arc<dyn Kernel> =
            Arc::new(ChaosKernel::new(out.clone(), ChaosMode::Clean, groups));
        checks += 1;
        let probe_ok = match t.launch(&probe, NDRange::d1(n).local1(local)) {
            Ok(_) => {
                let mut host = vec![0u32; n];
                t.read(&out, 0, &mut host).is_ok() && host == reference(n)
            }
            Err(_) => false,
        };
        if probe_ok {
            exact += 1;
        }
        if error_ok && probe_ok {
            contained += 1;
        }
    }
    (exact, checks, contained, rounds, stalled, worst)
}

/// cl-chaos's judge, relaxed for cross-tenant contention: a barrier desync
/// may be resolved either by the contained panic or — when the deserting
/// group is starved of a worker by other tenants — by the watchdog. Both
/// are contained outcomes.
fn judge_multi_tenant(mode: &ChaosMode, res: &Result<ocl_rt::Event, ClError>) -> bool {
    match res {
        Ok(_) => false,
        Err(e) => match (mode, e) {
            (
                ChaosMode::PanicAt { gid }
                | ChaosMode::FatalAt { gid }
                | ChaosMode::PayloadBomb { gid },
                ClError::KernelPanicked {
                    kernel, gid: got, ..
                },
            ) => kernel == "chaos" && *got == [*gid, 0, 0],
            (ChaosMode::BarrierDesync { .. }, ClError::KernelPanicked { kernel, .. }) => {
                kernel == "chaos"
            }
            (ChaosMode::BarrierDesync { .. }, ClError::LaunchTimedOut { kernel, .. }) => {
                kernel == "chaos"
            }
            (ChaosMode::StallUntilAbort { .. }, ClError::LaunchTimedOut { kernel, .. }) => {
                kernel == "chaos"
            }
            _ => false,
        },
    }
}

/// Phase 2: deterministic admission/shedding/eviction/retry scenarios on
/// purpose-built tiny servers.
fn overload_scenarios(timeout: Duration) -> Vec<Scenario> {
    let mut out = Vec::new();
    let push = |out: &mut Vec<Scenario>, name, what, ok, detail: String| {
        out.push(Scenario {
            name,
            what,
            ok,
            detail,
        });
    };

    // --- quota/inflight: a held launch exhausts max_inflight=1; the next
    // command is refused with Backpressure, and retry rides it out. ---
    {
        let srv = Server::new(1, ServeConfig::default().launch_timeout(timeout)).expect("device");
        let t = srv.tenant(
            TenantConfig::default()
                .max_inflight(1)
                .retry(RetryPolicy {
                    max_retries: 12,
                    base: Duration::from_millis(10),
                    cap: Duration::from_millis(80),
                })
                .launch_timeout(timeout),
        );
        let groups = 1usize;
        let n = 32usize;
        let buf = t.buffer::<u32>(MemFlags::default(), n).expect("buffer");
        let stall: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(
            buf.clone(),
            ChaosMode::StallUntilAbort { group: 0 },
            groups,
        ));
        let clean: Arc<dyn Kernel> =
            Arc::new(ChaosKernel::new(buf.clone(), ChaosMode::Clean, groups));
        let mut held_result = None;
        let mut refused = false;
        let mut retried_ok = false;
        std::thread::scope(|s| {
            let h = s.spawn(|| t.launch(&stall, NDRange::d1(n).local1(32)));
            let t1 = Instant::now();
            while t.in_flight() == 0 && t1.elapsed() < Duration::from_secs(5) {
                std::thread::yield_now();
            }
            // The stalled launch occupies the whole in-flight quota.
            refused = matches!(
                t.launch(&clean, NDRange::d1(n).local1(32)),
                Err(ClError::Backpressure { .. })
            );
            retried_ok = t
                .launch_with_retry(&clean, NDRange::d1(n).local1(32))
                .is_ok();
            held_result = Some(h.join().expect("holder"));
        });
        let held_timed_out = matches!(held_result, Some(Err(ClError::LaunchTimedOut { .. })));
        let retries = t.stats().retries;
        push(
            &mut out,
            "quota/inflight",
            "held launch fills max_inflight=1 → next command refused with Backpressure",
            refused && held_timed_out,
            format!("refused={refused}, holder watchdog-killed={held_timed_out}"),
        );
        push(
            &mut out,
            "retry/backoff",
            "launch_with_retry rides out transient backpressure (jittered exponential)",
            retried_ok && retries >= 1,
            format!("succeeded={retried_ok}, retries={retries}"),
        );
    }

    // --- quota/bytes: a write larger than max_pending_bytes is refused;
    // a within-quota write still succeeds afterwards. ---
    {
        let srv = Server::new(1, ServeConfig::default().launch_timeout(timeout)).expect("device");
        let t = srv.tenant(TenantConfig::default().max_pending_bytes(1 << 10));
        let buf = t
            .buffer::<u32>(MemFlags::default(), 1 << 14)
            .expect("buffer");
        let big = vec![1u32; 1 << 14]; // 64 KiB > 1 KiB quota
        let refused = matches!(t.write(&buf, 0, &big), Err(ClError::Backpressure { .. }));
        let small_ok = t.write(&buf, 0, &big[..64]).is_ok();
        push(
            &mut out,
            "quota/bytes",
            "oversized write refused with Backpressure; within-quota write succeeds",
            refused && small_ok,
            format!("refused={refused}, small_ok={small_ok}"),
        );
    }

    // --- overload shedding: slots=1 held by a stalled launch, waiting room
    // of 2 filled by two light waiters. A light arrival is rejected (it is
    // the newest lowest-weight work); a heavy arrival displaces the newest
    // light waiter; everything that runs either succeeds or sees
    // Backpressure — never a panic or a foreign error. ---
    {
        let srv = Server::new(
            2,
            ServeConfig::default()
                .slots(1)
                .max_waiting(2)
                .launch_timeout(timeout),
        )
        .expect("device");
        // The holder's stall must outlive the whole park/shed choreography
        // below, or a racing watchdog release would grant the waiters early
        // and the displacement assertions would be vacuous.
        let hold_timeout = timeout.max(Duration::from_millis(250)) * 8;
        let holder = srv.tenant(
            TenantConfig::default()
                .name("holder")
                .launch_timeout(hold_timeout),
        );
        let light_a = srv.tenant(TenantConfig::default().name("light-a").weight(1));
        let light_b = srv.tenant(TenantConfig::default().name("light-b").weight(1));
        let light_c = srv.tenant(TenantConfig::default().name("light-c").weight(1));
        let heavy = srv.tenant(TenantConfig::default().name("heavy").weight(5));
        let gate = Arc::clone(srv.gate());

        let mk = |t: &Tenant, mode: ChaosMode, groups: usize, n: usize| -> Arc<dyn Kernel> {
            Arc::new(ChaosKernel::new(
                t.buffer::<u32>(MemFlags::default(), n).expect("buffer"),
                mode,
                groups,
            ))
        };
        let n = 32usize;
        let stall_k = mk(&holder, ChaosMode::StallUntilAbort { group: 0 }, 1, n);
        let ka = mk(&light_a, ChaosMode::Clean, 1, n);
        let kb = mk(&light_b, ChaosMode::Clean, 1, n);
        let kc = mk(&light_c, ChaosMode::Clean, 1, n);
        let kh = mk(&heavy, ChaosMode::Clean, 1, n);

        let mut rejected_newest_low = false;
        let mut displaced_newest_light = false;
        let mut survivors_ok = false;
        let mut no_foreign_errors = true;
        std::thread::scope(|s| {
            let hold = s.spawn(|| holder.launch(&stall_k, NDRange::d1(n).local1(32)));
            let wait_for = |cond: &dyn Fn() -> bool| {
                let t1 = Instant::now();
                while !cond() && t1.elapsed() < Duration::from_secs(5) {
                    std::thread::yield_now();
                }
                cond()
            };
            // The stalled launch owns the only slot.
            wait_for(&|| gate.free() == 0);
            let a = s.spawn(|| light_a.launch(&ka, NDRange::d1(n).local1(32)));
            wait_for(&|| gate.waiting() == 1);
            let b = s.spawn(|| light_b.launch(&kb, NDRange::d1(n).local1(32)));
            wait_for(&|| gate.waiting() == 2);

            // Newest lowest-weight arrival with the room full: rejected.
            let c = light_c.launch(&kc, NDRange::d1(n).local1(32));
            rejected_newest_low = matches!(c, Err(ClError::Backpressure { .. }));

            // Heavy arrival displaces light-b (the newest light waiter).
            let h = s.spawn(|| heavy.launch(&kh, NDRange::d1(n).local1(32)));
            let rb = b.join().expect("light-b");
            displaced_newest_light = matches!(rb, Err(ClError::Backpressure { .. }));

            let ra = a.join().expect("light-a");
            let rh = h.join().expect("heavy");
            let rhold = hold.join().expect("holder");
            survivors_ok = ra.is_ok() && rh.is_ok();
            for r in [&ra, &rh, &rb, &c] {
                if let Err(e) = r {
                    if !matches!(e, ClError::Backpressure { .. }) {
                        no_foreign_errors = false;
                    }
                }
            }
            if !matches!(rhold, Err(ClError::LaunchTimedOut { .. })) {
                no_foreign_errors = false;
            }
        });
        push(
            &mut out,
            "shed/reject-newest-low",
            "waiting room full → newest lowest-weight arrival refused outright",
            rejected_newest_low,
            format!("rejected={rejected_newest_low}"),
        );
        push(
            &mut out,
            "shed/displace-for-heavy",
            "heavy arrival displaces the newest light waiter, then completes",
            displaced_newest_light && survivors_ok,
            format!("displaced={displaced_newest_light}, survivors_ok={survivors_ok}"),
        );
        push(
            &mut out,
            "degrade/backpressure-only",
            "overload degrades with Backpressure only — no panic, no foreign error",
            no_foreign_errors,
            format!("no_foreign_errors={no_foreign_errors}"),
        );
    }

    // --- eviction: exhausting the consecutive-fault budget evicts the
    // tenant; the next command fails TenantEvicted. ---
    {
        let srv = Server::new(1, ServeConfig::default().launch_timeout(timeout)).expect("device");
        let t = srv.tenant(
            TenantConfig::default()
                .fault_budget(2)
                .launch_timeout(timeout),
        );
        let n = 32usize;
        let buf = t.buffer::<u32>(MemFlags::default(), n).expect("buffer");
        let boom: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(
            buf.clone(),
            ChaosMode::PanicAt { gid: 0 },
            1,
        ));
        let clean: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(buf.clone(), ChaosMode::Clean, 1));
        let f1 = t.launch(&boom, NDRange::d1(n).local1(32));
        let f2 = t.launch(&boom, NDRange::d1(n).local1(32));
        let faults_contained = matches!(f1, Err(ClError::KernelPanicked { .. }))
            && matches!(f2, Err(ClError::KernelPanicked { .. }));
        let evicted_err = matches!(
            t.launch(&clean, NDRange::d1(n).local1(32)),
            Err(ClError::TenantEvicted { .. })
        );
        push(
            &mut out,
            "evict/fault-budget",
            "2 consecutive kernel faults exhaust fault_budget=2 → TenantEvicted",
            faults_contained && evicted_err && t.is_evicted(),
            format!(
                "faults_contained={faults_contained}, evicted_err={evicted_err}, flag={}",
                t.is_evicted()
            ),
        );
    }

    out
}

#[allow(clippy::too_many_arguments)]
fn render_md(
    reports: &[TenantReport],
    scenarios: &[Scenario],
    tenants: usize,
    faulty: usize,
    rounds: usize,
    seed: u64,
    workers: usize,
    timeout: Duration,
    violations: usize,
    elapsed: Duration,
    stable: bool,
) -> String {
    // Volatile (wall-clock) cells render as "·" in stable mode, like
    // trace.md/flow.md: the committed report must be byte-identical on any
    // machine.
    let t = |v: String| if stable { "·".to_string() } else { v };
    let mut md = String::new();
    md.push_str("# Multi-tenant serving soak: isolation and overload\n\n");
    let _ = writeln!(
        md,
        "{tenants} tenants ({faulty} seeded-faulty) × {rounds} rounds, seed {seed}, \
         {workers} workers, launch timeout {timeout:?}, wall time {}. Faulty tenants \
         inject one contained fault per round and must observe the right `ClError`, \
         then recover bit-exactly on the same queue; clean tenants run mixed \
         launch/write/read/map traffic that must stay bit-exact and bounded.\n",
        t(format!("{:.2}s", elapsed.as_secs_f64()))
    );
    if stable {
        md.push_str(
            "*Stable mode (`--stable`): wall-clock cells (p50/p99, worst, wall time) \
             render as \"·\" so the committed report is machine-independent.*\n\n",
        );
    }
    let _ = writeln!(md, "**Isolation violations: {violations}.**\n");

    md.push_str(
        "| Tenant | Weight | Kind | Launches | Transfers | Checks exact | \
         Faults contained | p50 | p99 |\n",
    );
    md.push_str("|---|---:|---|---:|---:|---|---|---:|---:|\n");
    for r in reports {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.name,
            r.weight,
            if r.faulty { "faulty" } else { "clean" },
            r.stats.launches,
            r.stats.transfers,
            if r.exact == r.checks {
                format!("{}/{}", r.exact, r.checks)
            } else {
                format!("**{}/{}**", r.exact, r.checks)
            },
            if r.injected == 0 {
                "—".to_string()
            } else if r.contained == r.injected {
                format!("{}/{}", r.contained, r.injected)
            } else {
                format!("**{}/{}**", r.contained, r.injected)
            },
            t(format_ns(r.stats.p50_ns)),
            t(format_ns(r.stats.p99_ns)),
        );
    }

    // Aggregate clean-tenant latency: the isolation claim is that faulty
    // neighbours bound, not wreck, everyone else's tail.
    let clean: Vec<&TenantReport> = reports.iter().filter(|r| !r.faulty).collect();
    if !clean.is_empty() {
        let mut p99s: Vec<u64> = clean.iter().map(|r| r.stats.p99_ns).collect();
        p99s.sort_unstable();
        let worst = clean
            .iter()
            .map(|r| r.worst)
            .max()
            .unwrap_or(Duration::ZERO);
        let _ = writeln!(
            md,
            "\nClean tenants: worst per-tenant p99 {}, worst single launch {} \
             (stall budget {:?}; {} launches over budget).\n",
            t(format_ns(p99s.last().copied().unwrap_or(0))),
            t(format!("{worst:?}")),
            timeout * 20 + Duration::from_secs(5),
            reports.iter().map(|r| r.stalled).sum::<usize>(),
        );
    }

    md.push_str("\n## Overload scenarios\n\n");
    md.push_str(
        "Deterministic admission-control and shedding checks on purpose-built \
         tiny servers (slots/quotas pinned, outcomes schedule-independent).\n\n",
    );
    md.push_str("| Scenario | Property | Verdict |\n");
    md.push_str("|---|---|---|\n");
    for s in scenarios {
        let _ = writeln!(
            md,
            "| `{}` | {} | {} |",
            s.name,
            s.what,
            if s.ok { "ok" } else { "**FAILED**" },
        );
    }
    md
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
