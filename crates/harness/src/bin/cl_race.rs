//! `cl-race` — multi-queue happens-before race detector and
//! reorder-safety certifier harness.
//!
//! ```text
//! cl-race [--workers W] [--seed S] [--out DIR] [--stable]
//!
//!   --workers W  pool workers of the device under test (default: min(4, cores))
//!   --seed S     input seed for the replayed kernels (default: 7)
//!   --out DIR    output directory for race.md / race.csv (default: results)
//!   --stable     accepted for CI symmetry; the report is deterministic
//! ```
//!
//! Four clean multi-queue scenarios run on race-recording contexts
//! ([`ocl_rt::ContextConfig::race_recording`]); the recorded streams are
//! analyzed into happens-before graphs and every cross-queue conflicting
//! pair must come back `proven-ordered` — any `RACY` verdict in a clean
//! scenario is a false positive and exits nonzero:
//!
//! 1. **producer→consumer** — two queues on two real threads, handing the
//!    intermediate buffer across a channel after `finish`;
//! 2. **four-queue tiles** — four threads each filling a disjoint tile of
//!    ONE shared buffer, per-queue `finish`, then a fifth queue reads;
//! 3. **tiled pipeline** — queue A blocking-writes input tiles while
//!    queue B squares each tile; the trailing `finish` is redundant and
//!    the over-sync certifier must prove it removable;
//! 4. **Figure 9 chain** — `write a`, `write b`, `vectoradd`, `finish` on
//!    queue A; `square`, `read` on queue B. The two blocking writes'
//!    host-sync edges are redundant (program order carries their
//!    conflicts), so the proven reorder-opportunity set must be nonempty.
//!
//! Then six seeded cross-queue races — RAW/WAW/WAR with no sync, a host
//! map racing a device write, a `finish` on the wrong queue, a marker
//! standing in for real sync — each of which must be caught by BOTH
//! layers: the static classifier (a `RACY` pair) and the dynamic
//! vector-clock replay. A missed race exits nonzero, as does any
//! static/dynamic disagreement anywhere in the run.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;

use cl_analyze::hb::{HbAnalysis, HbLintKind, OrderVerdict, VcReport};
use cl_kernels::apps::square::Square;
use cl_kernels::apps::vectoradd::VectorAdd;
use cl_kernels::race::{TileFill, TileSquare};
use cl_kernels::util::random_f32;
use ocl_rt::{Context, ContextConfig, Device, MemFlags, NDRange};

const N: usize = 1024;
const TILES: usize = 4;

fn race_ctx(workers: usize) -> Context {
    Context::new_with(
        Device::native_cpu(workers).expect("race device"),
        ContextConfig::default().race_recording(true),
    )
}

fn square(input: &ocl_rt::Buffer<f32>, output: &ocl_rt::Buffer<f32>) -> Square {
    Square {
        input: input.clone(),
        output: output.clone(),
        n: N,
        items_per_wi: 1,
    }
}

/// One clean scenario: its analysis, the dynamic layer's verdict, and the
/// scenario-specific obligations that must hold.
struct Scenario {
    name: &'static str,
    analysis: HbAnalysis,
    vc: VcReport,
    /// Scenario-specific failed obligations (empty = clean).
    problems: Vec<String>,
}

impl Scenario {
    fn new(name: &'static str, ctx: &Context) -> Self {
        let (analysis, vc) = ctx.race().expect("recording on").check();
        Scenario {
            name,
            analysis,
            vc,
            problems: Vec::new(),
        }
    }

    fn require(&mut self, ok: bool, msg: &str) {
        if !ok {
            self.problems.push(msg.to_string());
        }
    }

    /// The obligations every clean scenario shares: no racy pairs (false
    /// positives), no error findings, dynamic agreement, and — native
    /// device — a linearizable observed schedule.
    fn check_clean(&mut self) {
        let races: Vec<String> = self
            .analysis
            .races()
            .map(|p| format!("{} on {}", p.kind.as_str(), p.buffer_name))
            .collect();
        self.require(
            races.is_empty(),
            &format!("false positive: racy pairs {races:?}"),
        );
        let errors = self.analysis.errors().count();
        self.require(errors == 0, &format!("{errors} error findings"));
        self.require(
            self.vc.agrees(),
            &format!("static/dynamic disagreement: {:?}", self.vc.disagreements),
        );
        self.require(
            self.vc.races.is_empty(),
            &format!("dynamic races in clean scenario: {:?}", self.vc.races),
        );
        self.require(
            self.vc.linearization_failures.is_empty(),
            &format!(
                "observed schedule not linearizable: {:?}",
                self.vc.linearization_failures
            ),
        );
    }

    fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Scenario 1: two queues on two real threads. A produces `mid` and hands
/// it to B over a channel after `finish(qa)` — the finish is the
/// happens-before edge that makes B's consumption proven-ordered.
fn producer_consumer(workers: usize, seed: u64) -> Scenario {
    let ctx = race_ctx(workers);
    let qa = ctx.queue();
    let qb = ctx.queue();
    let host = random_f32(seed, N, -2.0, 2.0);
    let input = ctx.buffer::<f32>(MemFlags::READ_ONLY, N).expect("in");
    let mid = ctx.buffer::<f32>(MemFlags::default(), N).expect("mid");
    let out = ctx.buffer::<f32>(MemFlags::WRITE_ONLY, N).expect("out");
    let (tx, rx) = mpsc::channel::<()>();
    thread::scope(|s| {
        let (producer_in, producer_mid) = (input.clone(), mid.clone());
        let href = &host;
        s.spawn(move || {
            qa.write_buffer(&producer_in, 0, href).expect("write");
            qa.run(square(&producer_in, &producer_mid), NDRange::d1(N))
                .expect("produce");
            qa.finish().expect("queue drains");
            tx.send(()).expect("handoff");
        });
        let (consumer_mid, consumer_out) = (mid.clone(), out.clone());
        s.spawn(move || {
            rx.recv().expect("handoff");
            qb.run(square(&consumer_mid, &consumer_out), NDRange::d1(N))
                .expect("consume");
            let mut back = vec![0.0f32; N];
            qb.read_buffer(&consumer_out, 0, &mut back).expect("read");
            assert!(
                back.iter().zip(href).all(|(&y, &x)| y == (x * x) * (x * x)),
                "producer-consumer results"
            );
        });
    });
    let mut sc = Scenario::new("producer→consumer (2 queues, 2 threads)", &ctx);
    sc.check_clean();
    sc.require(
        sc.analysis.count(OrderVerdict::ProvenOrdered) >= 1,
        "no proven-ordered cross-queue pair on the handoff buffer",
    );
    sc
}

/// Scenario 2: four threads, four queues, ONE shared buffer — each fills
/// its own tile (footprints prove disjointness), per-queue `finish`, then
/// a fifth queue reads the whole buffer.
fn four_queue_tiles(workers: usize) -> Scenario {
    let ctx = race_ctx(workers);
    let queues: Vec<_> = (0..TILES).map(|_| ctx.queue()).collect();
    let reader = ctx.queue();
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    let len = N / TILES;
    thread::scope(|s| {
        for (t, q) in queues.into_iter().enumerate() {
            let tile = buf.clone();
            s.spawn(move || {
                q.run(
                    TileFill {
                        out: tile,
                        base: t * len,
                        len,
                        value: (t + 1) as f32,
                    },
                    NDRange::d1(len),
                )
                .expect("fill");
                q.finish().expect("queue drains");
            });
        }
    });
    let mut back = vec![0.0f32; N];
    reader.read_buffer(&buf, 0, &mut back).expect("read");
    for (i, &x) in back.iter().enumerate() {
        assert_eq!(x, (i / len + 1) as f32, "tile element {i}");
    }
    let mut sc = Scenario::new("four-queue disjoint tiles, one buffer", &ctx);
    sc.check_clean();
    sc.require(
        sc.analysis.count(OrderVerdict::ProvenOrdered) == TILES,
        "each tile fill must be proven ordered before the read",
    );
    sc
}

/// Scenario 3: tiled pipeline — A blocking-writes input tiles, B squares
/// each tile as it lands. The trailing `finish(qa)` syncs nothing the
/// blocking writes didn't already: the certifier must prove it removable.
fn tiled_pipeline(workers: usize, seed: u64) -> Scenario {
    let ctx = race_ctx(workers);
    let qa = ctx.queue();
    let qb = ctx.queue();
    let host = random_f32(seed ^ 0x7117, N, -3.0, 3.0);
    let input = ctx.buffer::<f32>(MemFlags::default(), N).expect("in");
    let out = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    let len = N / TILES;
    for t in 0..TILES {
        qa.write_buffer(&input, t * len, &host[t * len..(t + 1) * len])
            .expect("write tile");
        qb.run(
            TileSquare {
                input: input.clone(),
                output: out.clone(),
                base: t * len,
                len,
            },
            NDRange::d1(len),
        )
        .expect("square tile");
    }
    qa.finish().expect("queue drains"); // redundant: every write already published (blocking)
    let mut back = vec![0.0f32; N];
    qb.read_buffer(&out, 0, &mut back).expect("read");
    assert!(
        back.iter().zip(&host).all(|(&y, &x)| y == x * x),
        "pipeline results"
    );
    let mut sc = Scenario::new("tiled pipeline (blocking writes feed queue B)", &ctx);
    sc.check_clean();
    sc.require(
        sc.analysis.count(OrderVerdict::ProvenOrdered) >= TILES,
        "each tile's RAW handoff must be proven ordered",
    );
    let finish_removable = sc
        .analysis
        .removable_syncs()
        .any(|sp| sp.desc.starts_with("finish"));
    sc.require(
        finish_removable,
        "trailing finish not proven removable despite blocking writes",
    );
    sc
}

/// Scenario 4: the Figure 9 producer→consumer chain split across two
/// queues. The reorder-opportunity set must be nonempty: the blocking
/// writes' host-sync edges are redundant (program order carries their
/// conflicts into the vectoradd), only the `finish` is load-bearing.
fn fig9_chain(workers: usize, seed: u64) -> Scenario {
    let ctx = race_ctx(workers);
    let qa = ctx.queue();
    let qb = ctx.queue();
    let ha = random_f32(seed, N, -3.0, 3.0);
    let hb = random_f32(seed ^ 0xABCD, N, -3.0, 3.0);
    let a = ctx.buffer::<f32>(MemFlags::READ_ONLY, N).expect("a");
    let b = ctx.buffer::<f32>(MemFlags::READ_ONLY, N).expect("b");
    let c = ctx.buffer::<f32>(MemFlags::default(), N).expect("c");
    let d = ctx.buffer::<f32>(MemFlags::WRITE_ONLY, N).expect("d");
    qa.write_buffer(&a, 0, &ha).expect("write a");
    qa.write_buffer(&b, 0, &hb).expect("write b");
    qa.run(
        VectorAdd {
            a,
            b,
            c: c.clone(),
            n: N,
            items_per_wi: 1,
        },
        NDRange::d1(N),
    )
    .expect("vectoradd");
    qa.finish().expect("queue drains");
    qb.run(square(&c, &d), NDRange::d1(N)).expect("square");
    let mut back = vec![0.0f32; N];
    qb.read_buffer(&d, 0, &mut back).expect("read");
    assert!(
        back.iter()
            .zip(ha.iter().zip(&hb))
            .all(|(&y, (&x1, &x2))| y == (x1 + x2) * (x1 + x2)),
        "fig9 results"
    );
    let mut sc = Scenario::new("Figure 9 chain across two queues", &ctx);
    sc.check_clean();
    let removable = sc.analysis.removable_syncs().count();
    sc.require(
        removable >= 2,
        &format!("reorder-opportunity set too small: {removable} removable syncs (want ≥2)"),
    );
    let finish_removable = sc
        .analysis
        .removable_syncs()
        .any(|sp| sp.desc.starts_with("finish"));
    sc.require(
        !finish_removable,
        "the load-bearing finish was wrongly proven removable",
    );
    sc.require(
        sc.analysis.parallelism() > 1.0,
        "critical-path bound claims no parallelism in the chain",
    );
    sc
}

/// One seeded cross-queue race and which layers caught it.
struct Seeded {
    name: &'static str,
    static_caught: bool,
    vc_caught: bool,
    agree: bool,
    sample: String,
}

impl Seeded {
    fn caught(&self) -> bool {
        self.static_caught && self.vc_caught && self.agree
    }
}

/// Judge a seeded scenario: the static layer must produce a `RACY` pair of
/// `kind`, the vector clocks must independently call some conflicting pair
/// concurrent, and the two layers must not contradict each other.
fn judge(name: &'static str, ctx: &Context, kind: HbLintKind) -> Seeded {
    let (analysis, vc) = ctx.race().expect("recording on").check();
    let static_caught = analysis.has_races() && analysis.findings.iter().any(|f| f.kind == kind);
    let sample = analysis
        .findings
        .iter()
        .find(|f| f.kind == kind)
        .map(|f| f.message.clone())
        .unwrap_or_else(|| "MISSED".into());
    Seeded {
        name,
        static_caught,
        vc_caught: !vc.races.is_empty(),
        agree: vc.agrees(),
        sample,
    }
}

fn fill(buf: &ocl_rt::Buffer<f32>, base: usize, len: usize, value: f32) -> TileFill {
    TileFill {
        out: buf.clone(),
        base,
        len,
        value,
    }
}

fn tsq(
    input: &ocl_rt::Buffer<f32>,
    output: &ocl_rt::Buffer<f32>,
    base: usize,
    len: usize,
) -> TileSquare {
    TileSquare {
        input: input.clone(),
        output: output.clone(),
        base,
        len,
    }
}

/// RAW with no sync: A writes the buffer, B reads it, nothing orders them.
fn seed_raw_no_sync(workers: usize) -> Seeded {
    let ctx = race_ctx(workers);
    let (qa, qb) = (ctx.queue(), ctx.queue());
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    let out = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    qa.run(fill(&buf, 0, N, 1.0), NDRange::d1(N)).expect("fill");
    qb.run(tsq(&buf, &out, 0, N), NDRange::d1(N)).expect("sq");
    judge("RAW, no sync", &ctx, HbLintKind::CrossQueueRace)
}

/// WAW on overlapping tiles: two queues write windows that must overlap.
fn seed_waw_overlap(workers: usize) -> Seeded {
    let ctx = race_ctx(workers);
    let (qa, qb) = (ctx.queue(), ctx.queue());
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    qa.run(fill(&buf, 0, N, 1.0), NDRange::d1(N)).expect("a");
    qb.run(fill(&buf, N / 4, N / 4, 2.0), NDRange::d1(N / 4))
        .expect("b");
    judge("WAW, overlapping tiles", &ctx, HbLintKind::CrossQueueRace)
}

/// WAR with no sync: A reads the buffer while B overwrites it.
fn seed_war_no_sync(workers: usize) -> Seeded {
    let ctx = race_ctx(workers);
    let (qa, qb) = (ctx.queue(), ctx.queue());
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    let out = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    qa.run(tsq(&buf, &out, 0, N), NDRange::d1(N)).expect("sq");
    qb.run(fill(&buf, 0, N, 3.0), NDRange::d1(N)).expect("fill");
    judge("WAR, no sync", &ctx, HbLintKind::CrossQueueRace)
}

/// Host map on B races a device write on A: the unsynchronized-host lint.
fn seed_host_map_race(workers: usize) -> Seeded {
    let ctx = race_ctx(workers);
    let (qa, qb) = (ctx.queue(), ctx.queue());
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    qa.run(fill(&buf, 0, N, 4.0), NDRange::d1(N)).expect("fill");
    {
        let (_m, _) = qb.map_buffer(&buf).expect("map");
    }
    judge(
        "host map vs device write",
        &ctx,
        HbLintKind::UnsyncedHostAccess,
    )
}

/// `finish` on the WRONG queue: syncs nothing between the conflicting pair.
fn seed_wrong_queue_finish(workers: usize) -> Seeded {
    let ctx = race_ctx(workers);
    let (qa, qb) = (ctx.queue(), ctx.queue());
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    let out = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    qa.run(fill(&buf, 0, N, 5.0), NDRange::d1(N)).expect("fill");
    qb.finish().expect("queue drains"); // wrong queue: orders nothing already enqueued on qa
    qb.run(tsq(&buf, &out, 0, N), NDRange::d1(N)).expect("sq");
    judge("finish on wrong queue", &ctx, HbLintKind::CrossQueueRace)
}

/// A marker standing in for real sync: markers order nothing across
/// in-order queues.
fn seed_marker_no_sync(workers: usize) -> Seeded {
    let ctx = race_ctx(workers);
    let (qa, qb) = (ctx.queue(), ctx.queue());
    let buf = ctx.buffer::<f32>(MemFlags::default(), N).expect("buf");
    let out = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    qa.run(fill(&buf, 0, N, 6.0), NDRange::d1(N)).expect("fill");
    qa.marker(); // a marker is not a cross-queue sync
    qb.run(tsq(&buf, &out, 0, N), NDRange::d1(N)).expect("sq");
    judge("marker instead of sync", &ctx, HbLintKind::CrossQueueRace)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = usize::min(4, cl_pool::available_cores().max(1));
    let mut seed = 7u64;
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = parse(&args, i, "--workers");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            // The report carries no wall-clock numbers (the recorder
            // overhead lives in cl-bench), so it is deterministic with or
            // without --stable; accepted for CI symmetry with cl-flow.
            "--stable" => {}
            "--help" | "-h" => {
                println!("usage: cl-race [--workers W] [--seed S] [--out DIR] [--stable]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    workers = workers.max(1);

    // ------ Clean scenarios ------
    let mut failures = 0usize;
    let clean = [
        producer_consumer(workers, seed),
        four_queue_tiles(workers),
        tiled_pipeline(workers, seed),
        fig9_chain(workers, seed),
    ];
    for sc in &clean {
        for p in &sc.problems {
            eprintln!("cl-race: FAILED: clean scenario '{}': {p}", sc.name);
            failures += 1;
        }
    }

    // ------ Seeded races ------
    // Debug builds would reject these at the enqueue-time cross-queue gate
    // before anything is recorded; skip the gate so the offline layers are
    // what's under test (release CI compiles the gate out anyway). The
    // gate itself is covered by the runtime's unit tests.
    std::env::set_var("CL_SKIP_STATIC_CHECK", "1");
    let seeded = [
        seed_raw_no_sync(workers),
        seed_waw_overlap(workers),
        seed_war_no_sync(workers),
        seed_host_map_race(workers),
        seed_wrong_queue_finish(workers),
        seed_marker_no_sync(workers),
    ];
    std::env::remove_var("CL_SKIP_STATIC_CHECK");
    for s in &seeded {
        if !s.caught() {
            eprintln!(
                "cl-race: FAILED: seeded race '{}' missed (static {}, vector-clock {}, agree {})",
                s.name, s.static_caught, s.vc_caught, s.agree
            );
            failures += 1;
        }
    }

    // ------ Reports ------
    fs::create_dir_all(&out_dir).expect("create output directory");
    fs::write(out_dir.join("race.md"), render_md(&clean, &seeded)).expect("write race.md");
    fs::write(out_dir.join("race.csv"), render_csv(&clean, &seeded)).expect("write race.csv");

    let caught = seeded.iter().filter(|s| s.caught()).count();
    println!(
        "cl-race: {} clean scenarios ({} problems), seeded races caught {caught}/{} \
         by both layers; Fig 9 removable syncs: {} → {}",
        clean.len(),
        clean.iter().map(|s| s.problems.len()).sum::<usize>(),
        seeded.len(),
        clean[3].analysis.removable_syncs().count(),
        out_dir.join("race.md").display(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

fn render_md(clean: &[Scenario], seeded: &[Seeded]) -> String {
    let mut md = String::new();
    md.push_str("# Cross-queue race analysis (`cl-race`)\n\n");
    md.push_str(
        "Each scenario runs on a race-recording context; the aggregated \
         multi-queue stream is analyzed into a happens-before graph \
         (program order per in-order queue + sync edges from finish, \
         blocking transfers, and map/unmap), every cross-queue conflicting \
         pair is classified, and a dynamic vector-clock replay of the \
         observed schedule must agree with the static verdicts.\n",
    );

    md.push_str("\n## Clean multi-queue scenarios\n\n");
    md.push_str(
        "| Scenario | Queues | Commands | Pairs | Proven | Unknown | Racy | \
         Removable syncs | Critical path | Parallelism | Dynamic agrees |\n",
    );
    md.push_str("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n");
    for sc in clean {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.2} | {} |",
            sc.name,
            sc.analysis.queues.len(),
            sc.analysis.commands.len(),
            sc.analysis.pairs.len(),
            sc.analysis.count(OrderVerdict::ProvenOrdered),
            sc.analysis.count(OrderVerdict::Unknown),
            sc.analysis.count(OrderVerdict::Racy),
            sc.analysis.removable_syncs().count(),
            sc.analysis.critical_path,
            sc.analysis.parallelism(),
            if sc.vc.agrees() { "yes" } else { "**NO**" },
        );
    }

    md.push_str("\n### Reorder opportunities (over-sync certifier)\n\n");
    md.push_str(
        "Sync points whose removal is *proven* to keep every ordered \
         cross-queue conflict ordered — the schedule slack an out-of-order \
         scheduler could reclaim:\n\n",
    );
    md.push_str("| Scenario | Sync point | Removable |\n|---|---|---|\n");
    for sc in clean {
        // Record order interleaves arbitrarily across the threaded
        // scenarios' queues; sort by (queue, record) so the committed
        // report is schedule-independent.
        let mut points: Vec<_> = sc.analysis.sync_points.iter().collect();
        points.sort_by_key(|sp| (sp.queue, sp.record));
        for sp in points {
            let _ = writeln!(
                md,
                "| {} | {} | {} |",
                sc.name,
                sp.desc,
                if sp.removable {
                    "**yes**"
                } else {
                    "no (load-bearing)"
                }
            );
        }
    }
    md.push_str("\nPer-queue parallelism bounds (commands / critical path):\n\n");
    md.push_str(
        "| Scenario | Queue | Commands | Critical path | Bound |\n|---|---:|---:|---:|---:|\n",
    );
    for sc in clean {
        let mut queues: Vec<_> = sc.analysis.queues.iter().collect();
        queues.sort_by_key(|q| q.queue);
        for q in queues {
            let _ = writeln!(
                md,
                "| {} | q{} | {} | {} | {:.2} |",
                sc.name,
                q.queue,
                q.commands,
                q.critical_path,
                q.parallelism()
            );
        }
    }

    md.push_str("\n## Seeded cross-queue races\n\n");
    md.push_str(
        "Each round seeds one race into a two-queue stream; BOTH layers \
         must catch it — the static classifier with a `RACY` pair and the \
         vector-clock replay with a concurrent conflicting pair — and the \
         layers must not contradict each other.\n\n",
    );
    md.push_str("| Race | Static | Vector clocks | Agree | Finding |\n|---|---|---|---|---|\n");
    for s in seeded {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} |",
            s.name,
            if s.static_caught {
                "caught"
            } else {
                "**MISSED**"
            },
            if s.vc_caught { "caught" } else { "**MISSED**" },
            if s.agree { "yes" } else { "**NO**" },
            s.sample.replace('|', "\\|"),
        );
    }
    md
}

fn render_csv(clean: &[Scenario], seeded: &[Seeded]) -> String {
    let mut csv = String::from(
        "section,name,queues,commands,pairs,proven,unknown,racy,removable_syncs,\
         critical_path,parallelism,static_caught,vc_caught,agree\n",
    );
    for sc in clean {
        csv.push_str(&cl_util::csv::row([
            "clean".to_string(),
            sc.name.to_string(),
            sc.analysis.queues.len().to_string(),
            sc.analysis.commands.len().to_string(),
            sc.analysis.pairs.len().to_string(),
            sc.analysis.count(OrderVerdict::ProvenOrdered).to_string(),
            sc.analysis.count(OrderVerdict::Unknown).to_string(),
            sc.analysis.count(OrderVerdict::Racy).to_string(),
            sc.analysis.removable_syncs().count().to_string(),
            sc.analysis.critical_path.to_string(),
            format!("{:.2}", sc.analysis.parallelism()),
            String::new(),
            String::new(),
            sc.ok().to_string(),
        ]));
    }
    for s in seeded {
        csv.push_str(&cl_util::csv::row([
            "seeded".to_string(),
            s.name.to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            s.static_caught.to_string(),
            s.vc_caught.to_string(),
            s.agree.to_string(),
        ]));
    }
    csv
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: not a valid value: {}", args[i]))
}
