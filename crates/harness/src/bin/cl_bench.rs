//! `cl-bench` — the continuous performance gate (DESIGN.md §12).
//!
//! ```text
//! cl-bench [--workers W] [--fast] [--out FILE] [--baseline FILE]
//!          [--refresh-baseline] [--record-baseline FILE]
//!          [--make-baseline FILE=LABEL ...]
//!          [--gate-only RUN.json] [--check-json FILE]
//!          [--inject-regression FACTOR]
//!          [--abs-floor-ns N] [--rel-floor F] [--mad-k K]
//! ```
//!
//! Runs the curated hot-path suite (enqueue latency, dispatch cost across
//! workgroup sizes, deque steal throughput, copy-vs-map transfer,
//! disabled-path instrumentation overheads), writes the run to `BENCH.json`,
//! and compares it against the committed `BENCH_BASELINE.json` with
//! noise-aware thresholds: a benchmark fails only when its median regresses
//! beyond `max(abs_floor, rel_floor·base, k·MAD)`. Nonzero exit on
//! regression.
//!
//! Maintenance flags:
//!
//! * `--refresh-baseline` — measure the suite and write it to the
//!   baseline path with a provenance header (host, workers, git rev,
//!   date), so a later gate failure names the machine and revision the
//!   thresholds came from. No gating.
//! * `--record-baseline FILE` — also write this run as a fresh baseline
//!   (no gating).
//! * `--make-baseline a.json=label-a b.json=label-b` — assemble a baseline
//!   from saved runs: the *last* file's benches become the gating set, and
//!   every file is kept as a labelled `history` entry (this is how the
//!   committed baseline carries its pre/post-optimization evidence).
//! * `--gate-only RUN.json` — skip measurement and gate a saved run
//!   (deterministic; used by the gate's own tests).
//! * `--inject-regression F` — multiply every measured median by `F`
//!   before gating, to prove the gate trips (used by tests and CI docs).
//! * `--check-json FILE` — parse-validate any JSON artifact and exit
//!   (used by CI on the traced-chaos export).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cl_harness::bench::{
    compare, sample, BenchRecord, BenchStats, GateConfig, HistoryEntry, Provenance, Report,
};
use cl_pool::deque::{Steal, Worker};
use cl_serve::{ServeConfig, Server, TenantConfig};
use ocl_rt::{Context, GroupCtx, Kernel, MemFlags, NDRange, QueueConfig};

/// A kernel with an empty body: enqueueing it measures pure runtime
/// overhead — resolve, contract checks, dispatch, completion, event
/// construction — with no compute to hide behind.
struct EmptyKernel;

impl Kernel for EmptyKernel {
    fn name(&self) -> &str {
        "bench_empty"
    }
    fn run_group(&self, _g: &mut GroupCtx) {}
}

struct Opts {
    workers: usize,
    fast: bool,
    out: PathBuf,
    baseline: PathBuf,
    refresh_baseline: bool,
    record_baseline: Option<PathBuf>,
    make_baseline: Vec<(PathBuf, String)>,
    gate_only: Option<PathBuf>,
    check_json: Option<PathBuf>,
    inject: f64,
    gate: GateConfig,
}

fn main() {
    let opts = parse_args();

    // --check-json: validate an arbitrary artifact and exit.
    if let Some(path) = &opts.check_json {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("{}: unreadable: {e}", path.display())),
        };
        if text.trim().is_empty() {
            fail(&format!("{}: empty file", path.display()));
        }
        if let Err(e) = cl_util::json::parse(&text) {
            fail(&format!("{}: invalid JSON: {e}", path.display()));
        }
        println!(
            "cl-bench: {} is valid JSON ({} bytes)",
            path.display(),
            text.len()
        );
        return;
    }

    // --make-baseline: assemble a baseline from saved run files.
    if !opts.make_baseline.is_empty() {
        let mut history = Vec::new();
        let mut gating: Option<Report> = None;
        for (path, label) in &opts.make_baseline {
            let r = load_report(path);
            history.push(HistoryEntry {
                label: label.clone(),
                benches: r.benches.clone(),
            });
            gating = Some(r);
        }
        let mut base = gating.expect("at least one --make-baseline file");
        base.history = history;
        std::fs::write(&opts.out, base.to_json()).expect("write baseline");
        println!(
            "cl-bench: baseline written to {} ({} benches, {} history entries)",
            opts.out.display(),
            base.benches.len(),
            base.history.len()
        );
        return;
    }

    // --refresh-baseline: measure and write the baseline with provenance.
    if opts.refresh_baseline {
        let mut run = run_suite(&opts);
        run.provenance = Some(collect_provenance(opts.workers));
        std::fs::write(&opts.baseline, run.to_json()).expect("write baseline");
        println!(
            "cl-bench: baseline refreshed at {} ({} benches; {})",
            opts.baseline.display(),
            run.benches.len(),
            run.provenance.as_ref().expect("provenance just set"),
        );
        return;
    }

    // Obtain the current run: measure, or load with --gate-only.
    let mut run = match &opts.gate_only {
        Some(path) => load_report(path),
        None => run_suite(&opts),
    };

    if opts.inject != 1.0 {
        eprintln!(
            "cl-bench: injecting synthetic regression factor {} into medians",
            opts.inject
        );
        for b in &mut run.benches {
            b.stats.median *= opts.inject;
        }
    }

    if opts.gate_only.is_none() {
        std::fs::write(&opts.out, run.to_json()).expect("write BENCH.json");
        println!("cl-bench: run written to {}", opts.out.display());
        if let Some(path) = &opts.record_baseline {
            std::fs::write(path, run.to_json()).expect("write baseline");
            println!(
                "cl-bench: baseline recorded to {} (no gate)",
                path.display()
            );
            return;
        }
    }

    // Gate against the baseline.
    if !opts.baseline.exists() {
        eprintln!(
            "cl-bench: no baseline at {} — nothing to gate against (run with \
             --record-baseline to create one)",
            opts.baseline.display()
        );
        return;
    }
    let base = load_report(&opts.baseline);
    let verdicts = compare(&base, &run, &opts.gate);
    let mut regressions = 0usize;
    println!(
        "\n| benchmark | unit | baseline | current | delta | allowed | verdict |\n\
         |---|---|---:|---:|---:|---:|---|"
    );
    for v in &verdicts {
        if v.regressed {
            regressions += 1;
        }
        println!(
            "| {} | {} | {:.0} | {:.0} | {:+.0} | {:.0} | {} |",
            v.name,
            v.unit,
            v.base_median,
            v.cur_median,
            v.delta,
            v.allowed,
            if v.regressed { "REGRESSED" } else { "ok" }
        );
    }
    let gated = verdicts.len();
    let missing: Vec<&str> = base
        .benches
        .iter()
        .filter(|b| run.find(&b.name).is_none())
        .map(|b| b.name.as_str())
        .collect();
    if !missing.is_empty() {
        println!("\nbaseline benches absent from this run (not gated): {missing:?}");
    }
    if regressions > 0 {
        eprintln!("\ncl-bench: {regressions}/{gated} benchmarks REGRESSED beyond tolerance");
        // Name the machine the thresholds came from: a "regression" against
        // a baseline recorded on different hardware is a provenance bug,
        // not a performance bug.
        match &base.provenance {
            Some(p) => eprintln!("cl-bench: baseline provenance: {p}"),
            None => eprintln!(
                "cl-bench: baseline {} has no provenance header (refresh with \
                 --refresh-baseline)",
                opts.baseline.display()
            ),
        }
        std::process::exit(1);
    }
    println!("\ncl-bench: gate passed ({gated} benchmarks within tolerance)");
}

/// Run the curated hot-path suite and collect a [`Report`].
fn run_suite(opts: &Opts) -> Report {
    let (warm, samples) = if opts.fast { (2, 6) } else { (5, 20) };
    let ctx = Context::new(ocl_rt::Device::native_cpu(opts.workers).expect("bench device"));
    let q = ctx.queue_with(QueueConfig::default().launch_timeout(Duration::from_secs(60)));
    let mut benches = Vec::new();
    let mut push = |name: &str, unit: &str, stats: BenchStats| {
        eprintln!(
            "  {name}: median {:.0} {unit}, mad {:.0}, min {:.0} ({} samples)",
            stats.median, stats.mad, stats.min, stats.samples
        );
        benches.push(BenchRecord {
            name: name.to_string(),
            unit: unit.to_string(),
            stats,
        });
    };
    eprintln!(
        "cl-bench: native CPU, {} workers, {}{} samples/bench",
        opts.workers,
        if opts.fast { "fast profile, " } else { "" },
        samples
    );

    // --- Enqueue→completion latency of an empty kernel -------------------
    // One group: the floor of a blocking enqueue (resolve + dispatch of a
    // single chunk + event). 64 groups: adds the per-chunk fan-out.
    let empty: Arc<dyn Kernel> = Arc::new(EmptyKernel);
    const BATCH: u64 = 8;
    for (label, groups) in [("enqueue/empty-1g", 1usize), ("enqueue/empty-64g", 64)] {
        let range = NDRange::d1(64 * groups).local1(64);
        let stats = sample(warm, samples, BATCH, || {
            for _ in 0..BATCH {
                q.enqueue_kernel(&empty, range).expect("empty enqueue");
            }
            groups as u64
        });
        push(label, "ns/enqueue", stats);
    }

    // --- Dispatch cost per group across workgroup sizes (Table II sweep) -
    // Same kernel object and NDRange reused across enqueues, so repeated
    // launches of an unchanged (kernel, range) pair — the case the
    // enqueue-plan cache serves — are what's being timed.
    const SWEEP_N: usize = 65_536;
    for wg in [64usize, 256, 1024] {
        let built = cl_kernels::apps::square::build(&ctx, SWEEP_N, 1, Some(wg), 7);
        let groups = (SWEEP_N / wg) as u64;
        let stats = sample(warm, samples, groups, || {
            q.enqueue_kernel(&built.kernel, built.range)
                .expect("sweep enqueue");
            groups
        });
        built.verify(&q).expect("sweep results");
        push(&format!("dispatch/wg{wg}"), "ns/group", stats);
    }

    // --- Thread coarsening: fused vs serial dispatch ---------------------
    // The same Proven kernel and geometry on two queues. The default
    // (Auto) queue fuses K workgroups per chunk under the `cl_analyze`
    // coarsening certificate; the Off queue runs the historical one chunk
    // per group. Both gated — the committed baseline ratio between them IS
    // the documented fused-dispatch speedup.
    let built = cl_kernels::apps::square::build(&ctx, SWEEP_N, 1, Some(64), 7);
    let groups = (SWEEP_N / 64) as u64;
    let q_off = ctx.queue_with(
        QueueConfig::default()
            .launch_timeout(Duration::from_secs(60))
            .coarsen(ocl_rt::CoarsenMode::Off),
    );
    let stats = sample(warm, samples, groups, || {
        q.enqueue_kernel(&built.kernel, built.range)
            .expect("fused enqueue");
        groups
    });
    built.verify(&q).expect("fused results");
    push("coarsen/fused-vs-serial", "ns/group", stats);
    let stats = sample(warm, samples, groups, || {
        q_off
            .enqueue_kernel(&built.kernel, built.range)
            .expect("serial enqueue");
        groups
    });
    built.verify(&q_off).expect("serial results");
    push("overhead/coarsen-off", "ns/group", stats);

    // --- Deque steal throughput ------------------------------------------
    // Push N unit tasks into a worker deque, drain them through a stealer's
    // steal_batch_and_pop into a second local queue — the pool's sibling
    // steal path, minus the threads.
    const STEAL_N: usize = 10_000;
    let stats = sample(warm, samples, STEAL_N as u64, || {
        let owner = Worker::new_fifo();
        for i in 0..STEAL_N {
            owner.push(i);
        }
        let stealer = owner.stealer();
        let local = Worker::new_fifo();
        let mut drained = 0u64;
        loop {
            match stealer.steal_batch_and_pop(&local) {
                Steal::Success(_) => drained += 1,
                Steal::Empty => break,
                Steal::Retry => continue,
            }
            while local.pop().is_some() {
                drained += 1;
            }
        }
        assert_eq!(drained, STEAL_N as u64);
        drained
    });
    push("pool/steal", "ns/task", stats);

    // --- Transfer: explicit copy vs zero-copy map (Figure 7 path) --------
    const TX_BYTES: usize = 4 << 20;
    let host: Vec<u8> = (0..TX_BYTES).map(|b| b as u8).collect();
    let buf = ctx
        .buffer::<u8>(MemFlags::default(), TX_BYTES)
        .expect("buf");
    let mut back = vec![0u8; TX_BYTES];
    let stats = sample(warm, samples, 2, || {
        q.write_buffer(&buf, 0, &host).expect("write");
        q.read_buffer(&buf, 0, &mut back).expect("read");
        back[0] as u64
    });
    push("transfer/copy-4MiB", "ns/xfer", stats);
    let stats = sample(warm, samples, 2, || {
        {
            let (mut m, _ev) = q.map_buffer_mut(&buf).expect("map mut");
            m[0] = m[0].wrapping_add(1);
        }
        let (m, _ev) = q.map_buffer(&buf).expect("map");
        let x = m[0] as u64;
        drop(m);
        x
    });
    push("transfer/map-4MiB", "ns/xfer", stats);

    // --- Disabled-path instrumentation overheads -------------------------
    // The PR 3 tracer and PR 4 flow recorder must cost one skipped Option
    // branch when off. trace-off: empty kernel (no buffers — isolates the
    // span-record sites). flow-off: square (has buffer bindings, so a
    // release-mode regression that starts lowering flow uses eagerly would
    // surface here).
    let stats = sample(warm, samples, BATCH, || {
        let range = NDRange::d1(256).local1(64);
        for _ in 0..BATCH {
            q.enqueue_kernel(&empty, range).expect("trace-off enqueue");
        }
        BATCH
    });
    push("overhead/trace-off", "ns/enqueue", stats);
    let built = cl_kernels::apps::square::build(&ctx, 4096, 1, Some(64), 7);
    let stats = sample(warm, samples, BATCH, || {
        for _ in 0..BATCH {
            q.enqueue_kernel(&built.kernel, built.range)
                .expect("flow-off enqueue");
        }
        BATCH
    });
    built.verify(&q).expect("flow-off results");
    push("overhead/flow-off", "ns/enqueue", stats);

    // race-off: two queues of one recording-DISABLED context alternating
    // enqueues of the same built kernel — the multi-queue path the PR 6
    // race recorder hooks. With recording off the context holds no
    // `RaceLog` and each record site is one skipped Option branch; a
    // regression that starts building HbRecords eagerly would surface here.
    let race_ctx = Context::new_with(
        ocl_rt::Device::native_cpu(opts.workers).expect("race-off device"),
        ocl_rt::ContextConfig::default().race_recording(false),
    );
    let qa = race_ctx.queue_with(QueueConfig::default().launch_timeout(Duration::from_secs(60)));
    let qb = race_ctx.queue_with(QueueConfig::default().launch_timeout(Duration::from_secs(60)));
    let built = cl_kernels::apps::square::build(&race_ctx, 4096, 1, Some(64), 7);
    let stats = sample(warm, samples, BATCH, || {
        for i in 0..BATCH {
            let q = if i % 2 == 0 { &qa } else { &qb };
            q.enqueue_kernel(&built.kernel, built.range)
                .expect("race-off enqueue");
        }
        BATCH
    });
    built.verify(&qa).expect("race-off results");
    push("overhead/race-off", "ns/enqueue", stats);

    // --- Autotuner: disabled-path and converged-path enqueue cost --------
    // tune-off: a NULL-local square enqueue on a tuner-less queue — the
    // resolve heuristic plus the enqueue-plan cache, with no tuner branch
    // taken. converged-enqueue: the same launch through a queue whose
    // injected tuner has already converged — steady state must ride the
    // plan cache, so a regression here means the tuner leaked into the
    // hot path (ISSUE 10's "one branch when converged" contract).
    let built = cl_kernels::apps::square::build(&ctx, SWEEP_N, 1, None, 7);
    let stats = sample(warm, samples, BATCH, || {
        for _ in 0..BATCH {
            q.enqueue_kernel(&built.kernel, built.range)
                .expect("tune-off enqueue");
        }
        BATCH
    });
    built.verify(&q).expect("tune-off results");
    push("overhead/tune-off", "ns/enqueue", stats);

    let tuner = Arc::new(ocl_rt::cl_tune::Tuner::new(Some(
        std::env::temp_dir().join(format!("cl-bench-tune-{}.json", std::process::id())),
    )));
    let qt = ctx.queue_with(
        QueueConfig::default()
            .launch_timeout(Duration::from_secs(60))
            .tuner(Arc::clone(&tuner)),
    );
    let key = ocl_rt::cl_tune::TuneKey {
        kernel: built.kernel.name().to_string(),
        global: built.range.global(),
        dims: built.range.dims(),
        device: ctx.device().name().to_string(),
        workers: ctx.device().pool().workers(),
    };
    let mut spins = 0usize;
    while tuner.converged(&key).is_none() {
        qt.enqueue_kernel(&built.kernel, built.range)
            .expect("tune warmup enqueue");
        spins += 1;
        assert!(spins < 512, "tuner failed to converge during bench warmup");
    }
    let stats = sample(warm, samples, BATCH, || {
        for _ in 0..BATCH {
            qt.enqueue_kernel(&built.kernel, built.range)
                .expect("converged enqueue");
        }
        BATCH
    });
    built.verify(&qt).expect("converged results");
    push("tune/converged-enqueue", "ns/enqueue", stats);
    // The pinned successive-halving schedule makes the trial count a
    // deterministic property of the shortlist — record it so a prior or
    // schedule change shows up as a baseline diff.
    push(
        "tune/convergence-trials",
        "trials",
        BenchStats::from_samples(&[tuner.trials(&key) as f64]),
    );

    // --- Serving layer: tenant-path enqueue overhead ---------------------
    // One uncontended tenant launching the empty kernel through the full
    // PR 7 admission path (quota CAS + fairness-gate fast path + enqueue).
    // Gated against enqueue/empty-1g's sibling baseline: the serving layer
    // must stay a thin veneer, not a second dispatcher.
    let srv =
        Server::new(opts.workers, ServeConfig::default().max_waiting(256)).expect("serve server");
    let tenant = srv.tenant(TenantConfig::default());
    let range = NDRange::d1(64).local1(64);
    let stats = sample(warm, samples, BATCH, || {
        for _ in 0..BATCH {
            tenant.launch(&empty, range).expect("serve enqueue");
        }
        BATCH
    });
    drop(tenant);
    push("serve/enqueue-overhead", "ns/enqueue", stats);

    // --- Serving layer: p99 launch latency under a 64-tenant burst -------
    // Each sample is one burst: 64 tenants launch concurrently through the
    // shared gate and the burst's p99 enqueue→completion latency is the
    // sample value. Catches fairness-gate regressions (a broken WRR or a
    // lost notify shows up as a tail blow-up long before it deadlocks).
    const BURST_TENANTS: usize = 64;
    const BURST_LAUNCHES: usize = 4;
    let mut p99s = Vec::with_capacity(samples);
    for round in 0..(warm + samples) {
        let tenants: Vec<_> = (0..BURST_TENANTS)
            .map(|_| srv.tenant(TenantConfig::default()))
            .collect();
        let mut lat: Vec<u64> = std::thread::scope(|s| {
            let empty = &empty;
            let handles: Vec<_> = tenants
                .iter()
                .map(|t| {
                    s.spawn(move || {
                        let mut v = Vec::with_capacity(BURST_LAUNCHES);
                        for _ in 0..BURST_LAUNCHES {
                            let ev = t.launch(empty, range).expect("burst launch");
                            let p = ev.profiling();
                            v.push(if p.completed_ns > p.queued_ns && p.queued_ns > 0 {
                                p.completed_ns - p.queued_ns
                            } else {
                                (ev.duration_s() * 1e9) as u64
                            });
                        }
                        v
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("burst tenant thread"))
                .collect()
        });
        lat.sort_unstable();
        let p99 = lat[((lat.len() - 1) as f64 * 0.99).round() as usize] as f64;
        if round >= warm {
            p99s.push(p99);
        }
    }
    push(
        "serve/p99-64t",
        "ns/launch",
        BenchStats::from_samples(&p99s),
    );

    // --- OOO scheduler: ready-dispatch overhead per command -------------
    // 64 tiny MulAdd launches round-robined over 8 disjoint buffers on an
    // out-of-order queue: mostly-ready commands whose cost is the pending-
    // DAG bookkeeping (hazard scan + node + dispatch + completion), not
    // compute. Catches regressions in the submit hot path — an accidental
    // O(history) scan or a lost-wakeup stall shows up directly.
    let qo = ctx.queue_with(QueueConfig::default().out_of_order(true));
    const SCHED_BUFS: usize = 8;
    const SCHED_CMDS: u64 = 64;
    let sched_kernels: Vec<Arc<dyn Kernel>> = (0..SCHED_BUFS)
        .map(|_| {
            let buf = ctx
                .buffer::<u32>(MemFlags::default(), 64)
                .expect("sched bench buffer");
            Arc::new(cl_kernels::sched::MulAdd {
                data: buf,
                mul: 3,
                add: 7,
                iters: 1,
                label: "mul_add".into(),
            }) as Arc<dyn Kernel>
        })
        .collect();
    let sched_range = NDRange::d1(64).local1(64);
    let stats = sample(warm, samples, SCHED_CMDS, || {
        for i in 0..SCHED_CMDS as usize {
            qo.submit_kernel(&sched_kernels[i % SCHED_BUFS], sched_range, &[])
                .expect("sched submit");
        }
        qo.finish().expect("sched drain");
        SCHED_CMDS
    });
    push("sched/ready-dispatch-ns", "ns/cmd", stats);

    // --- OOO scheduler: independent-DAG throughput -----------------------
    // A fan of 8 independent fixed-latency (5 ms) commands on disjoint
    // buffers, drained through a 4-worker device: the out-of-order
    // scheduler must overlap them (two waves ≈ 10 ms), where an in-order
    // stream would serialize all 40 ms. Latency-bound on purpose so the
    // overlap survives single-core CI hosts; a scheduler that stops
    // overlapping quadruples this number and trips the gate.
    const FAN: usize = 8;
    const FAN_WORKERS: usize = 4;
    const NAP_MS: u64 = 5;
    let fan_ctx = Context::new(ocl_rt::Device::native_cpu(FAN_WORKERS).expect("fan device"));
    let qf = fan_ctx.queue_with(QueueConfig::default().out_of_order(true));
    let fan_kernels: Vec<Arc<dyn Kernel>> = (0..FAN)
        .map(|i| {
            let buf = fan_ctx
                .buffer::<u32>(MemFlags::default(), 16)
                .expect("fan buffer");
            Arc::new(cl_kernels::sched::Nap {
                data: buf,
                millis: NAP_MS,
                label: format!("nap{i}"),
            }) as Arc<dyn Kernel>
        })
        .collect();
    let fan_range = NDRange::d1(16).local1(16);
    let stats = sample(warm, samples, FAN as u64, || {
        for k in &fan_kernels {
            qf.submit_kernel(k, fan_range, &[]).expect("fan submit");
        }
        qf.finish().expect("fan drain");
        FAN as u64
    });
    push("sched/dag-throughput", "ns/cmd", stats);

    Report::new(opts.workers, benches)
}

/// Best-effort provenance for a refreshed baseline: every field degrades
/// to "unknown" rather than failing, so the refresh works in containers
/// without a hostname or outside a git checkout.
fn collect_provenance(workers: usize) -> Provenance {
    let host = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let date = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| {
            let (y, m, day) = civil_from_days((d.as_secs() / 86_400) as i64);
            format!("{y:04}-{m:02}-{day:02}")
        })
        .unwrap_or_else(|_| "unknown".to_string());
    Provenance {
        host,
        workers,
        git_rev,
        date,
    }
}

/// Days-since-epoch to proleptic-Gregorian (year, month, day).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

fn load_report(path: &PathBuf) -> Report {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("{}: unreadable: {e}", path.display())));
    Report::from_json(&text).unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())))
}

fn fail(msg: &str) -> ! {
    eprintln!("cl-bench: {msg}");
    std::process::exit(1);
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts {
        workers: usize::min(4, cl_pool::available_cores().max(1)),
        fast: false,
        out: PathBuf::from("BENCH.json"),
        baseline: PathBuf::from("BENCH_BASELINE.json"),
        refresh_baseline: false,
        record_baseline: None,
        make_baseline: Vec::new(),
        gate_only: None,
        check_json: None,
        inject: 1.0,
        gate: GateConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                o.workers = parse(&args, i, "--workers");
            }
            "--fast" => o.fast = true,
            "--out" => {
                i += 1;
                o.out = path(&args, i, "--out");
            }
            "--baseline" => {
                i += 1;
                o.baseline = path(&args, i, "--baseline");
            }
            "--refresh-baseline" => o.refresh_baseline = true,
            "--record-baseline" => {
                i += 1;
                o.record_baseline = Some(path(&args, i, "--record-baseline"));
            }
            "--make-baseline" => {
                // Consume every following FILE=LABEL operand.
                while let Some(spec) = args.get(i + 1).filter(|s| !s.starts_with("--")) {
                    i += 1;
                    let (file, label) = spec
                        .split_once('=')
                        .unwrap_or_else(|| panic!("--make-baseline wants FILE=LABEL: {spec}"));
                    o.make_baseline
                        .push((PathBuf::from(file), label.to_string()));
                }
                if o.make_baseline.is_empty() {
                    fail("--make-baseline needs at least one FILE=LABEL");
                }
            }
            "--gate-only" => {
                i += 1;
                o.gate_only = Some(path(&args, i, "--gate-only"));
            }
            "--check-json" => {
                i += 1;
                o.check_json = Some(path(&args, i, "--check-json"));
            }
            "--inject-regression" => {
                i += 1;
                o.inject = parse(&args, i, "--inject-regression");
            }
            "--abs-floor-ns" => {
                i += 1;
                o.gate.abs_floor_ns = parse(&args, i, "--abs-floor-ns");
            }
            "--rel-floor" => {
                i += 1;
                o.gate.rel_floor = parse(&args, i, "--rel-floor");
            }
            "--mad-k" => {
                i += 1;
                o.gate.mad_k = parse(&args, i, "--mad-k");
            }
            "--help" | "-h" => {
                println!(
                    "usage: cl-bench [--workers W] [--fast] [--out FILE] [--baseline FILE]\n\
                     \x20               [--refresh-baseline] [--record-baseline FILE]\n\
                     \x20               [--make-baseline FILE=LABEL ...]\n\
                     \x20               [--gate-only RUN.json] [--check-json FILE]\n\
                     \x20               [--inject-regression F] [--abs-floor-ns N] \
                     [--rel-floor F] [--mad-k K]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o.workers = o.workers.max(1);
    o
}

fn path(args: &[String], i: usize, flag: &str) -> PathBuf {
    PathBuf::from(
        args.get(i)
            .unwrap_or_else(|| panic!("{flag} needs a value")),
    )
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: not a valid value: {}", args[i]))
}
