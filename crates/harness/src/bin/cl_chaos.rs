//! `cl-chaos` — randomized fault-injection soak for the fault-tolerant
//! runtime.
//!
//! ```text
//! cl-chaos [--rounds N] [--xq-rounds N] [--ooo-rounds N] [--seed S] [--workers W] [--timeout-ms T] [--out DIR]
//!
//!   --rounds N      fault rounds to run (default: 25)
//!   --xq-rounds N   two-queue contention rounds to run (default: 5)
//!   --ooo-rounds N  out-of-order subgraph-isolation rounds (default: 5)
//!   --seed S        PRNG seed for the round mix (default: 7)
//!   --workers W     pool workers of the device under test (default: min(4, cores))
//!   --timeout-ms T  launch watchdog deadline per enqueue (default: 250)
//!   --out DIR       output directory for chaos.md (default: results)
//! ```
//!
//! Each round injects one fault from [`cl_kernels::chaos`] — an ordinary
//! panic, a fatal (worker-retiring) fault, a panic payload whose `Drop`
//! panics, a stalled group the watchdog must kill, or a deserted
//! cross-group barrier — into a randomized 1-D launch geometry, asserts
//! the enqueue returns the *right* `ClError`, and then proves the queue
//! recovered by running a clean probe **on the same queue** and comparing
//! its output bit-exactly against the serial reference. Any wrong error,
//! failed probe, or mismatched output is an unrecovered fault and fails
//! the run (nonzero exit).
//!
//! The contention rounds then stress fault *isolation across queues*: a
//! second thread runs clean bit-exact probes on queue B (its own buffer)
//! while queue A takes a seeded fault on the shared pool. Queue B must
//! come through with zero mismatches — a fault on one queue may slow its
//! neighbours (shared workers) but must never corrupt or stall them.
//!
//! The out-of-order rounds stress fault isolation *within* one
//! `CL_QUEUE_OUT_OF_ORDER_EXEC_MODE` queue: a seeded fault at the head of
//! one dependency chain must fail exactly its dependent subgraph
//! (`ClError::DependencyFailed`, work never run) while an independent
//! chain on a disjoint buffer — same queue, same scheduler — completes
//! bit-exactly. Worker-depleting faults are left to the single-queue soak:
//! on a small pool they starve concurrent independent commands for
//! capacity reasons unrelated to the scheduler.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cl_kernels::chaos::{reference, ChaosKernel, ChaosMode};
use cl_util::XorShift;
use ocl_rt::{ClError, Context, Device, Kernel, MemFlags, NDRange, QueueConfig};

struct Round {
    mode: &'static str,
    n: usize,
    local: usize,
    injected: String,
    error: String,
    /// The faulted enqueue returned the expected `ClError` (with the exact
    /// faulting gid, where the mode pins one).
    error_ok: bool,
    /// The clean probe on the same queue succeeded bit-exactly.
    probe_ok: bool,
    respawned: u64,
}

/// One two-queue contention round: queue A's seeded fault vs queue B's
/// concurrent clean probes.
struct XqRound {
    mode: &'static str,
    injected: String,
    error: String,
    /// Queue A reported the expected `ClError` and healed.
    a_ok: bool,
    /// Every concurrent probe on queue B was bit-exact.
    b_ok: bool,
    b_probes: usize,
}

/// One out-of-order subgraph-isolation round: a faulted chain head on an
/// OOO queue vs an independent clean chain on the same queue.
struct OooRound {
    mode: &'static str,
    injected: String,
    /// What the faulted chain head reported.
    error: String,
    /// The chain head reported the injected fault (exact gid where pinned).
    fault_ok: bool,
    /// Dependents that failed with `DependencyFailed` (must be all).
    dependents_failed: usize,
    dependents: usize,
    /// The independent chain completed bit-exactly on the same queue.
    independent_ok: bool,
}

impl OooRound {
    fn ok(&self) -> bool {
        self.fault_ok && self.dependents_failed == self.dependents && self.independent_ok
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds = 25usize;
    let mut xq_rounds = 5usize;
    let mut ooo_rounds = 5usize;
    let mut seed = 7u64;
    let mut workers = usize::min(4, cl_pool::available_cores().max(1));
    let mut timeout_ms = 250u64;
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                i += 1;
                rounds = parse(&args, i, "--rounds");
            }
            "--xq-rounds" => {
                i += 1;
                xq_rounds = parse(&args, i, "--xq-rounds");
            }
            "--ooo-rounds" => {
                i += 1;
                ooo_rounds = parse(&args, i, "--ooo-rounds");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--workers" => {
                i += 1;
                workers = parse(&args, i, "--workers");
            }
            "--timeout-ms" => {
                i += 1;
                timeout_ms = parse(&args, i, "--timeout-ms");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: cl-chaos [--rounds N] [--xq-rounds N] [--ooo-rounds N] \
                     [--seed S] [--workers W] [--timeout-ms T] [--out DIR]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // The soak asserts the *exact* faulting gid in every panic report, so
    // opt into per-item gid stamping — release builds default to coarse
    // (group-base) attribution on the hot path. Must be set before the
    // first launch reads the knob.
    if std::env::var_os("CL_EXACT_GID").is_none() {
        std::env::set_var("CL_EXACT_GID", "1");
    }

    // The soak injects panics on purpose; keep them off stderr.
    cl_kernels::chaos::install_quiet_panic_hook();

    let device = Device::native_cpu(workers.max(1)).expect("chaos device");
    let pool = Arc::clone(device.pool());
    let ctx = Context::new(device);
    let timeout = Duration::from_millis(timeout_ms.max(1));
    // One queue for the whole soak: every round must leave it usable.
    // `from_env` honours CL_TRACE=1, so CI can soak the tracing paths too.
    let q = ctx.queue_with(QueueConfig::from_env().launch_timeout(timeout));

    let mut rng = XorShift::seed_from_u64(seed);
    let mut results = Vec::with_capacity(rounds);
    let t0 = Instant::now();
    for round in 0..rounds {
        let local = [16usize, 32, 64][(rng.next_u64() % 3) as usize];
        let mut groups = 2 + (rng.next_u64() % 7) as usize;
        let kind = rng.next_u64() % 5;
        if kind == 4 {
            // Barrier desync parks every surviving group on a cross-group
            // rendezvous. With the watchdog armed the host does not help
            // execute chunks, so the parked groups must never outnumber the
            // workers or the deserting group could be starved of a worker.
            groups = groups.min(workers.max(1));
        }
        let n = groups * local;
        let mode = match kind {
            0 => ChaosMode::PanicAt {
                gid: (rng.next_u64() as usize) % n,
            },
            1 => ChaosMode::FatalAt {
                gid: (rng.next_u64() as usize) % n,
            },
            2 => ChaosMode::PayloadBomb {
                gid: (rng.next_u64() as usize) % n,
            },
            3 => ChaosMode::StallUntilAbort {
                group: (rng.next_u64() as usize) % groups,
            },
            _ => ChaosMode::BarrierDesync {
                panic_group: (rng.next_u64() as usize) % groups,
            },
        };

        let out = ctx
            .buffer::<u32>(MemFlags::default(), n)
            .expect("chaos buffer");
        let kernel: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(out.clone(), mode, groups));
        let res = q.enqueue_kernel(&kernel, NDRange::d1(n).local1(local));
        let (error_ok, error) = judge(&mode, &res);

        // A fatal fault retires its worker asynchronously (the worker
        // unwinds after the launch's latch releases the host). Wait for the
        // retirement to land so the probe's self-healing respawn — and its
        // `workers_respawned` count — is deterministic.
        if matches!(mode, ChaosMode::FatalAt { .. }) {
            let deadline = Instant::now() + Duration::from_secs(2);
            while pool.lost_workers() == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(100));
            }
        }

        // Recovery proof: a clean launch over the same buffer, same queue.
        let probe: Arc<dyn Kernel> =
            Arc::new(ChaosKernel::new(out.clone(), ChaosMode::Clean, groups));
        let mut respawned = 0;
        let probe_ok = match q.enqueue_kernel(&probe, NDRange::d1(n).local1(local)) {
            Ok(ev) => {
                respawned = ev.workers_respawned;
                let mut host = vec![0u32; n];
                q.read_buffer(&out, 0, &mut host).is_ok() && host == reference(n)
            }
            Err(e) => {
                eprintln!("cl-chaos: round {round}: clean probe failed: {e}");
                false
            }
        };
        let respawn_ok = match mode {
            ChaosMode::FatalAt { .. } => respawned >= 1,
            _ => true,
        };

        results.push(Round {
            mode: mode.label(),
            n,
            local,
            injected: format!("{mode:?}"),
            error,
            error_ok: error_ok && respawn_ok,
            probe_ok,
            respawned,
        });
    }
    // ------ Two-queue contention rounds ------
    // Queue B's probes run on a second thread against B's own buffer while
    // queue A takes a seeded fault on the shared worker pool. Isolation
    // contract: B may be *slowed* (shared workers) but never corrupted or
    // stalled — every probe must complete bit-exactly.
    let mut xq_results = Vec::with_capacity(xq_rounds);
    for _ in 0..xq_rounds {
        let local = 32usize;
        let mut groups = 2 + (rng.next_u64() % 7) as usize;
        let kind = rng.next_u64() % 5;
        if kind == 4 {
            groups = groups.min(workers.max(1));
        }
        let n = groups * local;
        let mode = match kind {
            0 => ChaosMode::PanicAt {
                gid: (rng.next_u64() as usize) % n,
            },
            1 => ChaosMode::FatalAt {
                gid: (rng.next_u64() as usize) % n,
            },
            2 => ChaosMode::PayloadBomb {
                gid: (rng.next_u64() as usize) % n,
            },
            3 => ChaosMode::StallUntilAbort {
                group: (rng.next_u64() as usize) % groups,
            },
            _ => ChaosMode::BarrierDesync {
                panic_group: (rng.next_u64() as usize) % groups,
            },
        };

        let qa = ctx.queue_with(QueueConfig::from_env().launch_timeout(timeout));
        // Queue B may legitimately wait out a full stall on queue A when
        // the shared pool is small (a 1-worker pool serializes them), so
        // its watchdog gets generous headroom: "slowed but never corrupted
        // or stalled" means it must *complete bit-exactly*, not that it
        // races A's deadline for the same worker.
        let qb = ctx.queue_with(QueueConfig::from_env().launch_timeout(timeout * 10));
        let b_groups = 4usize;
        let b_n = b_groups * local;
        let b_buf = ctx
            .buffer::<u32>(MemFlags::default(), b_n)
            .expect("xq buffer B");
        let b_ref = reference(b_n);
        const B_PROBES: usize = 4;

        let mut a_judge = (false, String::new());
        let mut b_clean = 0usize;
        std::thread::scope(|s| {
            let b = s.spawn(|| {
                let mut clean = 0usize;
                for _ in 0..B_PROBES {
                    let probe: Arc<dyn Kernel> =
                        Arc::new(ChaosKernel::new(b_buf.clone(), ChaosMode::Clean, b_groups));
                    let ok = match qb.enqueue_kernel(&probe, NDRange::d1(b_n).local1(local)) {
                        Ok(_) => {
                            let mut host = vec![0u32; b_n];
                            qb.read_buffer(&b_buf, 0, &mut host).is_ok() && host == b_ref
                        }
                        Err(e) => {
                            eprintln!("cl-chaos: contention probe on queue B failed: {e}");
                            false
                        }
                    };
                    if ok {
                        clean += 1;
                    }
                }
                clean
            });

            let a_buf = ctx
                .buffer::<u32>(MemFlags::default(), n)
                .expect("xq buffer A");
            let kernel: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(a_buf.clone(), mode, groups));
            let res = qa.enqueue_kernel(&kernel, NDRange::d1(n).local1(local));
            a_judge = judge(&mode, &res);
            b_clean = b.join().expect("queue B thread");
        });

        // Heal queue A (either thread's enqueue may have respawned a
        // retired worker already, so no respawn-count obligation here —
        // the single-queue soak above asserts that bookkeeping).
        let a_probe: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(
            ctx.buffer::<u32>(MemFlags::default(), n).expect("heal"),
            ChaosMode::Clean,
            groups,
        ));
        let a_healed = qa
            .enqueue_kernel(&a_probe, NDRange::d1(n).local1(local))
            .is_ok();

        xq_results.push(XqRound {
            mode: mode.label(),
            injected: format!("{mode:?}"),
            error: a_judge.1.clone(),
            a_ok: a_judge.0 && a_healed,
            b_ok: b_clean == B_PROBES,
            b_probes: B_PROBES,
        });
    }

    // ------ Out-of-order subgraph-isolation rounds ------
    // One OOO queue, two chains. Chain A: a seeded fault at the head, two
    // clean dependents chained by explicit wait lists (explicit edges
    // propagate failure even if the head fails before the dependents are
    // submitted — no race on the live window). Chain B: three clean
    // launches on a disjoint buffer, ordered among themselves by
    // auto-inferred hazards, independent of chain A. The fault must fail
    // exactly chain A's dependents; chain B must come through bit-exact.
    let mut ooo_results = Vec::with_capacity(ooo_rounds);
    for round in 0..ooo_rounds {
        let local = 32usize;
        let mut groups = 2 + (rng.next_u64() % 7) as usize;
        // No worker-depleting faults here (`StallUntilAbort`, `FatalAt`):
        // on a small pool they starve *concurrent independent* commands —
        // already dispatched, so never re-running the launch-entry
        // `recover` — until those commands' own watchdogs fire. That is a
        // pool-capacity artifact the single-queue soak already covers, not
        // a scheduler-isolation property. The fail-fast panics are what
        // exercise dependency-failure propagation.
        let kind = rng.next_u64() % 3;
        if kind == 2 {
            groups = groups.min(workers.max(1));
        }
        let n = groups * local;
        let mode = match kind {
            0 => ChaosMode::PanicAt {
                gid: (rng.next_u64() as usize) % n,
            },
            1 => ChaosMode::PayloadBomb {
                gid: (rng.next_u64() as usize) % n,
            },
            _ => ChaosMode::BarrierDesync {
                panic_group: (rng.next_u64() as usize) % groups,
            },
        };

        let q = ctx.queue_with(
            QueueConfig::from_env()
                .out_of_order(true)
                .launch_timeout(timeout),
        );
        let a_buf = ctx
            .buffer::<u32>(MemFlags::default(), n)
            .expect("ooo buffer A");
        let b_groups = 4usize;
        let b_n = b_groups * local;
        let b_buf = ctx
            .buffer::<u32>(MemFlags::default(), b_n)
            .expect("ooo buffer B");

        let fault: Arc<dyn Kernel> = Arc::new(ChaosKernel::new(a_buf.clone(), mode, groups));
        let head = q
            .submit_kernel(&fault, NDRange::d1(n).local1(local), &[])
            .expect("submit chain A head");
        let dep1_k: Arc<dyn Kernel> =
            Arc::new(ChaosKernel::new(a_buf.clone(), ChaosMode::Clean, groups));
        let dep1 = q
            .submit_kernel(
                &dep1_k,
                NDRange::d1(n).local1(local),
                std::slice::from_ref(&head),
            )
            .expect("submit chain A dep 1");
        let dep2_k: Arc<dyn Kernel> =
            Arc::new(ChaosKernel::new(a_buf.clone(), ChaosMode::Clean, groups));
        let dep2 = q
            .submit_kernel(
                &dep2_k,
                NDRange::d1(n).local1(local),
                std::slice::from_ref(&dep1),
            )
            .expect("submit chain A dep 2");
        let b_events: Vec<_> = (0..3)
            .map(|j| {
                let k: Arc<dyn Kernel> =
                    Arc::new(ChaosKernel::new(b_buf.clone(), ChaosMode::Clean, b_groups));
                q.submit_kernel(&k, NDRange::d1(b_n).local1(local), &[])
                    .unwrap_or_else(|e| panic!("submit chain B #{j}: {e}"))
            })
            .collect();
        // No `finish` here: with a watchdog armed, `finish` reuses the
        // per-launch deadline as its drain deadline, which a serialized
        // small pool can exceed legitimately. Each event wait below blocks
        // until that command settles, which drains the queue just as well.
        let (fault_ok, error) = judge(&mode, &head.wait(None));
        let dependents_failed = [&dep1, &dep2]
            .iter()
            .filter(|e| matches!(e.wait(None), Err(ClError::DependencyFailed { .. })))
            .count();
        let b_completed = b_events.iter().all(|e| e.wait(None).is_ok());
        let mut host = vec![0u32; b_n];
        let independent_ok =
            b_completed && q.read_buffer(&b_buf, 0, &mut host).is_ok() && host == reference(b_n);
        if !fault_ok || dependents_failed != 2 || !independent_ok {
            eprintln!(
                "cl-chaos: ooo round {round}: fault_ok={fault_ok} \
                 dependents_failed={dependents_failed}/2 independent_ok={independent_ok}"
            );
        }
        ooo_results.push(OooRound {
            mode: mode.label(),
            injected: format!("{mode:?}"),
            error,
            fault_ok,
            dependents_failed,
            dependents: 2,
            independent_ok,
        });
    }
    let elapsed = t0.elapsed();

    let recovered = results.iter().filter(|r| r.error_ok && r.probe_ok).count();
    let xq_recovered = xq_results.iter().filter(|r| r.a_ok && r.b_ok).count();
    let ooo_isolated = ooo_results.iter().filter(|r| r.ok()).count();
    fs::create_dir_all(&out_dir).expect("create output directory");
    fs::write(
        out_dir.join("chaos.md"),
        render_md(
            &results,
            &xq_results,
            &ooo_results,
            seed,
            workers,
            timeout,
            recovered,
            xq_recovered,
            ooo_isolated,
            elapsed,
        ),
    )
    .expect("write chaos.md");
    // Under CL_TRACE=1 the soak also exports its span log, so CI can assert
    // the traced-chaos artifact exists and parses (the trace must survive
    // every contained fault, not just clean runs).
    if let Some(log) = q.trace() {
        let path = out_dir.join("chaos-trace.json");
        fs::write(&path, log.to_chrome_json()).expect("write chaos-trace.json");
        println!(
            "cl-chaos: traced soak exported {} spans to {}",
            log.len(),
            path.display()
        );
    }

    for (i, r) in results.iter().enumerate() {
        if !(r.error_ok && r.probe_ok) {
            eprintln!(
                "cl-chaos: round {i} UNRECOVERED: {} ({}), error: {} (expected={}), probe ok={}",
                r.mode, r.injected, r.error, r.error_ok, r.probe_ok
            );
        }
    }
    for (i, r) in xq_results.iter().enumerate() {
        if !(r.a_ok && r.b_ok) {
            eprintln!(
                "cl-chaos: contention round {i} FAILED: {} ({}), queue A ok={}, queue B ok={}",
                r.mode, r.injected, r.a_ok, r.b_ok
            );
        }
    }
    for (i, r) in ooo_results.iter().enumerate() {
        if !r.ok() {
            eprintln!(
                "cl-chaos: ooo round {i} FAILED: {} ({}), fault ok={}, dependents \
                 failed={}/{}, independent chain ok={}",
                r.mode, r.injected, r.fault_ok, r.dependents_failed, r.dependents, r.independent_ok
            );
        }
    }
    println!(
        "cl-chaos: {recovered}/{} rounds recovered, {xq_recovered}/{} contention \
         rounds isolated, {ooo_isolated}/{} ooo subgraphs isolated \
         (seed {seed}, {workers} workers, timeout {timeout:?}, {:.2}s)",
        results.len(),
        xq_results.len(),
        ooo_results.len(),
        elapsed.as_secs_f64()
    );
    if recovered != results.len()
        || xq_recovered != xq_results.len()
        || ooo_isolated != ooo_results.len()
    {
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: not a valid value: {}", args[i]))
}

/// Does `res` report the fault `mode` injected, the way the fault model
/// promises?
fn judge(mode: &ChaosMode, res: &Result<ocl_rt::Event, ClError>) -> (bool, String) {
    match res {
        Ok(_) => (false, "Ok (no fault reported)".into()),
        Err(e) => {
            let ok = match (mode, e) {
                (
                    ChaosMode::PanicAt { gid }
                    | ChaosMode::FatalAt { gid }
                    | ChaosMode::PayloadBomb { gid },
                    ClError::KernelPanicked {
                        kernel, gid: got, ..
                    },
                ) => kernel == "chaos" && *got == [*gid, 0, 0],
                (ChaosMode::BarrierDesync { .. }, ClError::KernelPanicked { kernel, .. }) => {
                    kernel == "chaos"
                }
                (ChaosMode::StallUntilAbort { .. }, ClError::LaunchTimedOut { kernel, .. }) => {
                    kernel == "chaos"
                }
                _ => false,
            };
            (ok, e.to_string())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_md(
    rounds: &[Round],
    xq_rounds: &[XqRound],
    ooo_rounds: &[OooRound],
    seed: u64,
    workers: usize,
    timeout: Duration,
    recovered: usize,
    xq_recovered: usize,
    ooo_isolated: usize,
    elapsed: Duration,
) -> String {
    let mut md = String::new();
    md.push_str("# Chaos soak: fault injection against the fault-tolerant runtime\n\n");
    let _ = writeln!(
        md,
        "{} rounds, seed {seed}, {workers} workers, launch timeout {timeout:?}, \
         wall time {:.2}s. Each round injects one fault, asserts the enqueue \
         reports it as the right `ClError`, then runs a clean probe on the \
         **same queue** and checks its output bit-exactly.\n",
        rounds.len(),
        elapsed.as_secs_f64()
    );
    let _ = writeln!(
        md,
        "**Recovered: {recovered}/{} ({}%).**\n",
        rounds.len(),
        if rounds.is_empty() {
            100
        } else {
            100 * recovered / rounds.len()
        }
    );
    md.push_str("| Round | Mode | Geometry | Injected | Reported error | Error ok | Probe ok | Respawned |\n");
    md.push_str("|---:|---|---|---|---|---|---|---:|\n");
    for (i, r) in rounds.iter().enumerate() {
        let _ = writeln!(
            md,
            "| {} | {} | {}/{} | `{}` | {} | {} | {} | {} |",
            i,
            r.mode,
            r.n,
            r.local,
            r.injected,
            r.error,
            if r.error_ok { "yes" } else { "**NO**" },
            if r.probe_ok { "yes" } else { "**NO**" },
            r.respawned,
        );
    }
    let fatal_rounds = rounds.iter().filter(|r| r.mode == "fatal").count();
    let total_respawned: u64 = rounds.iter().map(|r| r.respawned).sum();
    let _ = writeln!(
        md,
        "\n{fatal_rounds} fatal (worker-retiring) rounds; {total_respawned} worker \
         respawns observed by probe enqueues. A `fatal` round counts as recovered \
         only if its probe respawned at least one worker."
    );

    md.push_str("\n## Two-queue contention\n\n");
    let _ = writeln!(
        md,
        "A second thread runs clean bit-exact probes on queue B (its own \
         buffer) while queue A takes the seeded fault on the shared worker \
         pool. Isolation contract: B may be slowed but never corrupted or \
         stalled. **Isolated: {xq_recovered}/{}.**\n",
        xq_rounds.len()
    );
    md.push_str("| Round | Fault on A | Reported error | A ok | B probes clean |\n");
    md.push_str("|---:|---|---|---|---|\n");
    for (i, r) in xq_rounds.iter().enumerate() {
        let _ = writeln!(
            md,
            "| {} | `{}` | {} | {} | {} |",
            i,
            r.injected,
            r.error,
            if r.a_ok { "yes" } else { "**NO**" },
            if r.b_ok {
                format!("{}/{}", r.b_probes, r.b_probes)
            } else {
                "**corrupted/stalled**".to_string()
            },
        );
    }

    md.push_str("\n## Out-of-order subgraph isolation\n\n");
    let _ = writeln!(
        md,
        "One `CL_QUEUE_OUT_OF_ORDER_EXEC_MODE` queue, two chains. Chain A \
         takes the seeded fault at its head; its two explicitly chained \
         dependents must be skipped with `DependencyFailed`. Chain B (three \
         clean launches on a disjoint buffer, same queue) must complete \
         bit-exactly. **Isolated: {ooo_isolated}/{}.**\n",
        ooo_rounds.len()
    );
    md.push_str("| Round | Fault at head | Reported error | Fault ok | Dependents skipped | Independent chain |\n");
    md.push_str("|---:|---|---|---|---|---|\n");
    for (i, r) in ooo_rounds.iter().enumerate() {
        let _ = writeln!(
            md,
            "| {} | `{}` | {} | {} | {}/{} | {} |",
            i,
            r.injected,
            r.error,
            if r.fault_ok { "yes" } else { "**NO**" },
            r.dependents_failed,
            r.dependents,
            if r.independent_ok {
                "bit-exact"
            } else {
                "**corrupted/stalled**"
            },
        );
    }
    md
}
