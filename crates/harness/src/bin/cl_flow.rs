//! `cl-flow` — replay the paper's transfer and chain scenarios on a
//! recording queue and statically analyze the command stream.
//!
//! ```text
//! cl-flow [--workers W] [--seed S] [--out DIR] [--stable]
//!
//!   --workers W  pool workers of the device under test (default: min(4, cores))
//!   --seed S     input seed for the replayed kernels (default: 7)
//!   --out DIR    output directory for flow.md / flow.csv (default: results)
//!   --stable     deterministic report: skip the wall-clock overhead sweep
//! ```
//!
//! Three clean replays, each on its own recording queue:
//!
//! 1. **Figure 7** — explicit `write_buffer` → `square` → `read_buffer`,
//! 2. **Figure 8** — the same round trip through `map`/`unmap` pairs,
//! 3. **Figure 9** — the producer→consumer chain `vectoadd` → `square`,
//!    where the analyzer must *prove* the RAW dependence on the
//!    intermediate buffer.
//!
//! A clean replay with any `Violation` finding, or a Figure 9 chain whose
//! RAW edge is not proven, exits nonzero. Then five seeded-fault rounds —
//! flag-contract, use-while-mapped, redundant transfer, read-before-write,
//! unsynchronized host access — each of which the analysis (or the
//! debug-mode enqueue gate) must catch; a missed fault exits nonzero.
//! Finally the recording-disabled overhead is measured against run-to-run
//! noise, the same way `cl-trace` prices the disabled-tracing path.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cl_analyze::flow::{FlowAnalysis, FlowCommand, FlowLintKind, HazardKind};
use cl_analyze::{Severity, Verdict};
use cl_kernels::apps::square::Square;
use cl_kernels::apps::vectoradd::VectorAdd;
use cl_kernels::util::random_f32;
use ocl_rt::{Context, Device, MemFlags, NDRange, QueueConfig};

const N: usize = 4096;

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Proven => "proven",
        Verdict::Violation => "VIOLATION",
        Verdict::Unknown => "unknown",
    }
}

/// One replayed scenario and its analysis.
struct Scenario {
    name: &'static str,
    commands: Vec<FlowCommand>,
    analysis: FlowAnalysis,
}

impl Scenario {
    fn proven_edges(&self) -> usize {
        self.analysis
            .edges
            .iter()
            .filter(|e| e.verdict == Verdict::Proven)
            .count()
    }

    fn errors(&self) -> usize {
        self.analysis
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    fn warnings(&self) -> usize {
        self.analysis
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }
}

/// One seeded-fault round: which lint it targets and whether it was caught.
struct Seeded {
    kind: FlowLintKind,
    caught: bool,
    how: String,
    analysis: FlowAnalysis,
}

fn recording_queue(ctx: &Context) -> ocl_rt::CommandQueue {
    ctx.queue_with(
        QueueConfig::default()
            .recording(true)
            .launch_timeout(Duration::from_secs(60)),
    )
}

fn square(input: &ocl_rt::Buffer<f32>, output: &ocl_rt::Buffer<f32>) -> Square {
    Square {
        input: input.clone(),
        output: output.clone(),
        n: N,
        items_per_wi: 1,
    }
}

/// Figure 7: host→device write, kernel, device→host read.
fn fig7(ctx: &Context, seed: u64) -> Scenario {
    let q = recording_queue(ctx);
    let host = random_f32(seed, N, -2.0, 2.0);
    let input = ctx.buffer::<f32>(MemFlags::READ_ONLY, N).expect("in");
    let output = ctx.buffer::<f32>(MemFlags::WRITE_ONLY, N).expect("out");
    q.write_buffer(&input, 0, &host).expect("write");
    q.run(square(&input, &output), NDRange::d1(N))
        .expect("square");
    let mut back = vec![0.0f32; N];
    q.read_buffer(&output, 0, &mut back).expect("read");
    assert!(
        back.iter().zip(&host).all(|(&y, &x)| y == x * x),
        "fig7 results"
    );
    let log = q.flow().unwrap();
    Scenario {
        name: "Figure 7: write → square → read",
        commands: log.commands(),
        analysis: log.analyze(),
    }
}

/// Figure 8: the same round trip through map/unmap pairs.
fn fig8(ctx: &Context, seed: u64) -> Scenario {
    let q = recording_queue(ctx);
    let host = random_f32(seed ^ 0x5EED, N, -2.0, 2.0);
    let input = ctx.buffer::<f32>(MemFlags::default(), N).expect("in");
    let output = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    {
        let (mut m, _) = q.map_buffer_mut(&input).expect("map in");
        m.copy_from_slice(&host);
    }
    q.run(square(&input, &output), NDRange::d1(N))
        .expect("square");
    {
        let (m, _) = q.map_buffer(&output).expect("map out");
        assert!(
            m.iter().zip(&host).all(|(&y, &x)| y == x * x),
            "fig8 results"
        );
    }
    let log = q.flow().unwrap();
    Scenario {
        name: "Figure 8: map-write → square → map-read",
        commands: log.commands(),
        analysis: log.analyze(),
    }
}

/// Figure 9: producer→consumer chain; the RAW dependence on the
/// intermediate buffer must be *proven*, not merely suspected.
fn fig9(ctx: &Context, seed: u64) -> (Scenario, bool) {
    let q = recording_queue(ctx);
    let ha = random_f32(seed, N, -3.0, 3.0);
    let hb = random_f32(seed ^ 0xABCD, N, -3.0, 3.0);
    let a = ctx.buffer_from(MemFlags::READ_ONLY, &ha).expect("a");
    let b = ctx.buffer_from(MemFlags::READ_ONLY, &hb).expect("b");
    let c = ctx.buffer::<f32>(MemFlags::default(), N).expect("c");
    let d = ctx.buffer::<f32>(MemFlags::WRITE_ONLY, N).expect("d");
    q.run(
        VectorAdd {
            a,
            b,
            c: c.clone(),
            n: N,
            items_per_wi: 1,
        },
        NDRange::d1(N),
    )
    .expect("vectoradd");
    q.run(square(&c, &d), NDRange::d1(N)).expect("square");
    let mut back = vec![0.0f32; N];
    q.read_buffer(&d, 0, &mut back).expect("read");
    assert!(
        back.iter()
            .zip(ha.iter().zip(&hb))
            .all(|(&y, (&x1, &x2))| y == (x1 + x2) * (x1 + x2)),
        "fig9 results"
    );
    let log = q.flow().unwrap();
    let commands = log.commands();
    let analysis = log.analyze();
    // Command 0 is the vectoradd launch, command 1 the square launch; the
    // chain through `c` must be a proven RAW dependence.
    let chain_proven = analysis
        .edges_between(0, 1)
        .any(|e| e.kind == HazardKind::Raw && e.verdict == Verdict::Proven);
    (
        Scenario {
            name: "Figure 9: vectoadd → square chain",
            commands,
            analysis,
        },
        chain_proven,
    )
}

/// Seeded fault: launch `square` with a read-only output binding. Debug
/// builds reject at the enqueue gate; release builds record the launch and
/// the replay analysis must flag the flag-contract violation.
fn seed_flag_contract(ctx: &Context, seed: u64) -> Seeded {
    let q = recording_queue(ctx);
    let host = random_f32(seed, N, -1.0, 1.0);
    let input = ctx.buffer_from(MemFlags::READ_ONLY, &host).expect("in");
    let ro_out = ctx.buffer::<f32>(MemFlags::READ_ONLY, N).expect("out");
    let res = q.run(square(&input, &ro_out), NDRange::d1(N));
    let analysis = q.flow().unwrap().analyze();
    let in_replay = analysis.verdict(FlowLintKind::FlagContract) == Verdict::Violation;
    let at_enqueue = res.is_err();
    Seeded {
        kind: FlowLintKind::FlagContract,
        caught: in_replay || at_enqueue,
        how: match (in_replay, at_enqueue) {
            (true, true) => "replay analysis + enqueue rejection".into(),
            (true, false) => "replay analysis".into(),
            (false, true) => "enqueue gate (launch rejected before recording)".into(),
            (false, false) => "MISSED".into(),
        },
        analysis,
    }
}

/// Seeded fault: a device write lands while a host read-mapping is live.
fn seed_use_while_mapped(ctx: &Context, seed: u64) -> Seeded {
    let q = recording_queue(ctx);
    let host = random_f32(seed, N, -1.0, 1.0);
    let buf = ctx.buffer_from(MemFlags::default(), &host).expect("buf");
    {
        let (_m, _) = q.map_buffer(&buf).expect("map");
        // Device write while the mapping is live: the host view and the
        // device copy now disagree — exactly what OpenCL leaves undefined.
        q.write_buffer(&buf, 0, &[0.0f32; N]).expect("write");
    }
    let analysis = q.flow().unwrap().analyze();
    let caught = analysis.verdict(FlowLintKind::UseWhileMapped) == Verdict::Violation;
    Seeded {
        kind: FlowLintKind::UseWhileMapped,
        caught,
        how: if caught { "replay analysis" } else { "MISSED" }.into(),
        analysis,
    }
}

/// Seeded fault: a transfer whose bytes are fully overwritten before any
/// consumer — paying the Figure 7/8 transfer cost for nothing.
fn seed_redundant_transfer(ctx: &Context, seed: u64) -> Seeded {
    let q = recording_queue(ctx);
    let host = random_f32(seed, N, -1.0, 1.0);
    let input = ctx.buffer_from(MemFlags::READ_ONLY, &host).expect("in");
    let out = ctx.buffer::<f32>(MemFlags::default(), N).expect("out");
    // The pointless transfer: square's proven footprint overwrites all of
    // it before anything reads.
    q.write_buffer(&out, 0, &[9.0f32; N]).expect("write");
    q.run(square(&input, &out), NDRange::d1(N)).expect("square");
    let mut back = vec![0.0f32; N];
    q.read_buffer(&out, 0, &mut back).expect("read");
    let analysis = q.flow().unwrap().analyze();
    let caught = analysis.verdict(FlowLintKind::RedundantTransfer) == Verdict::Violation;
    Seeded {
        kind: FlowLintKind::RedundantTransfer,
        caught,
        how: if caught { "replay analysis" } else { "MISSED" }.into(),
        analysis,
    }
}

/// Seeded fault: the kernel's proven read set touches a buffer no command
/// (and no `COPY_HOST_PTR` init) ever defined.
fn seed_read_before_write(ctx: &Context) -> Seeded {
    let q = recording_queue(ctx);
    let uninit = ctx.buffer::<f32>(MemFlags::READ_ONLY, N).expect("in");
    let out = ctx.buffer::<f32>(MemFlags::WRITE_ONLY, N).expect("out");
    q.run(square(&uninit, &out), NDRange::d1(N))
        .expect("square");
    let analysis = q.flow().unwrap().analyze();
    let caught = analysis.verdict(FlowLintKind::ReadBeforeWrite) == Verdict::Violation;
    Seeded {
        kind: FlowLintKind::ReadBeforeWrite,
        caught,
        how: if caught { "replay analysis" } else { "MISSED" }.into(),
        analysis,
    }
}

/// Seeded fault: a host write to device memory outside any mapping.
fn seed_host_sync(ctx: &Context, seed: u64) -> Seeded {
    let q = recording_queue(ctx);
    let host = random_f32(seed, N, -1.0, 1.0);
    let buf = ctx.buffer_from(MemFlags::default(), &host).expect("buf");
    let out = ctx.buffer::<f32>(MemFlags::WRITE_ONLY, N).expect("out");
    // Model a host poking the allocation directly, with no map command.
    q.flow().unwrap().record_host_access(&buf, 0..N, true, None);
    q.run(square(&buf, &out), NDRange::d1(N)).expect("square");
    let analysis = q.flow().unwrap().analyze();
    let caught = analysis.verdict(FlowLintKind::HostSync) == Verdict::Violation;
    Seeded {
        kind: FlowLintKind::HostSync,
        caught,
        how: if caught { "replay analysis" } else { "MISSED" }.into(),
        analysis,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = usize::min(4, cl_pool::available_cores().max(1));
    let mut seed = 7u64;
    let mut out_dir = PathBuf::from("results");
    let mut stable = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = parse(&args, i, "--workers");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--stable" => stable = true,
            "--help" | "-h" => {
                println!("usage: cl-flow [--workers W] [--seed S] [--out DIR] [--stable]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    workers = workers.max(1);
    let ctx = Context::new(Device::native_cpu(workers).expect("flow device"));

    // ------ Clean replays ------
    let mut failures = 0usize;
    let (chain, chain_proven) = fig9(&ctx, seed);
    let clean = [fig7(&ctx, seed), fig8(&ctx, seed), chain];
    for s in &clean {
        if s.analysis.has_violations() {
            eprintln!("cl-flow: FAILED: clean replay '{}' has violations:", s.name);
            for f in &s.analysis.findings {
                eprintln!("  [{}] {}", f.kind.as_str(), f.message);
            }
            failures += 1;
        }
    }
    if !chain_proven {
        eprintln!("cl-flow: FAILED: Figure 9 chain RAW dependence not proven");
        failures += 1;
    }

    // ------ Seeded faults ------
    let seeded = [
        seed_flag_contract(&ctx, seed),
        seed_use_while_mapped(&ctx, seed),
        seed_redundant_transfer(&ctx, seed),
        seed_read_before_write(&ctx),
        seed_host_sync(&ctx, seed),
    ];
    for s in &seeded {
        if !s.caught {
            eprintln!(
                "cl-flow: FAILED: seeded {} fault not caught",
                s.kind.as_str()
            );
            failures += 1;
        }
    }

    // ------ Overhead: recording disabled vs enabled ------
    // The same pricing as cl-trace's disabled-tracing measurement: a
    // 12-launch square sweep twice without recording (noise band) and once
    // with. With recording off the queue holds no FlowLog and each record
    // site is one skipped Option branch.
    let sweep = |cfg: QueueConfig| -> f64 {
        let q = ctx.queue_with(cfg.launch_timeout(Duration::from_secs(60)));
        let t0 = Instant::now();
        for _ in 0..3 {
            for factor in [1usize, 10, 100, 1000] {
                let built = cl_kernels::apps::square::build(&ctx, 100_000, factor, None, seed);
                q.enqueue_kernel(&built.kernel, built.range).expect("sweep");
            }
        }
        t0.elapsed().as_secs_f64()
    };
    // Stable mode skips the sweep entirely: its numbers are wall-clock and
    // would churn the committed report. `cl-bench` carries the continuous
    // measurement as `overhead/flow-off`.
    let (noise, recording_cost) = if stable {
        (0.0, 0.0)
    } else {
        let off_a = sweep(QueueConfig::default());
        let off_b = sweep(QueueConfig::default());
        let on = sweep(QueueConfig::default().recording(true));
        let base = off_a.min(off_b);
        ((off_a - off_b).abs() / base, on / base - 1.0)
    };

    // ------ Reports ------
    fs::create_dir_all(&out_dir).expect("create output directory");
    let md = render_md(&clean, chain_proven, &seeded, noise, recording_cost, stable);
    fs::write(out_dir.join("flow.md"), md).expect("write flow.md");
    fs::write(out_dir.join("flow.csv"), render_csv(&clean, &seeded)).expect("write flow.csv");

    let caught = seeded.iter().filter(|s| s.caught).count();
    println!(
        "cl-flow: {} clean replays ({} violations), Figure 9 RAW {}, \
         seeded faults caught {caught}/{}; disabled-path noise {:.2}%, \
         recording cost {:+.2}% → {}",
        clean.len(),
        clean.iter().map(Scenario::errors).sum::<usize>(),
        if chain_proven { "proven" } else { "NOT PROVEN" },
        seeded.len(),
        noise * 100.0,
        recording_cost * 100.0,
        out_dir.join("flow.md").display(),
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

fn render_md(
    clean: &[Scenario],
    chain_proven: bool,
    seeded: &[Seeded],
    noise: f64,
    recording_cost: f64,
    stable: bool,
) -> String {
    let mut md = String::new();
    md.push_str("# Command-stream analysis (`cl-flow`)\n\n");
    md.push_str(
        "Each scenario replays on its own recording queue; the recorded \
         stream is analyzed offline into a dependence DAG (RAW/WAR/WAW \
         edges with three-valued verdicts from the kernels' static \
         footprints) plus five inter-command lints.\n",
    );

    md.push_str("\n## Clean replays\n\n");
    md.push_str(
        "| Scenario | Commands | Edges | Proven | Independent pairs | Errors | Warnings |\n",
    );
    md.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
    for s in clean {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} |",
            s.name,
            s.commands.len(),
            s.analysis.edges.len(),
            s.proven_edges(),
            s.analysis.independent_pairs,
            s.errors(),
            s.warnings(),
        );
    }
    let _ = writeln!(
        md,
        "\nFigure 9 chain: the `vectoadd → square` RAW dependence on the \
         intermediate buffer is **{}**.\n",
        if chain_proven { "proven" } else { "NOT proven" }
    );

    for s in clean {
        let _ = writeln!(md, "### {}\n", s.name);
        md.push_str("| # | Command | Dependence edges out |\n|---:|---|---|\n");
        for (i, c) in s.commands.iter().enumerate() {
            let outs: Vec<String> = s
                .analysis
                .edges
                .iter()
                .filter(|e| e.from == i)
                .map(|e| {
                    format!(
                        "{} → #{} on `{}` ({})",
                        e.kind.as_str(),
                        e.to,
                        e.buffer_name,
                        verdict_str(e.verdict)
                    )
                })
                .collect();
            let _ = writeln!(
                md,
                "| {i} | {} | {} |",
                c.label,
                if outs.is_empty() {
                    "—".to_string()
                } else {
                    outs.join("; ")
                }
            );
        }
        md.push('\n');
    }

    md.push_str("## Seeded faults\n\n");
    md.push_str(
        "Each round seeds one violation into an otherwise-clean stream; \
         all must be caught (in the replay analysis, or — for the flag \
         contract in debug builds — at the enqueue gate).\n\n",
    );
    md.push_str("| Fault | Caught | How | Findings in replay |\n|---|---|---|---|\n");
    for s in seeded {
        let findings: Vec<String> = s
            .analysis
            .findings
            .iter()
            .filter(|f| f.kind == s.kind)
            .map(|f| f.message.clone())
            .collect();
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} |",
            s.kind.as_str(),
            if s.caught { "yes" } else { "**NO**" },
            s.how,
            if findings.is_empty() {
                "—".to_string()
            } else {
                findings.join("; ")
            }
        );
    }

    md.push_str("\n## Disabled-path overhead\n\n");
    if stable {
        md.push_str(
            "Skipped in stable mode: the sweep's numbers are wall-clock and \
             would churn this committed report. The continuous measurement \
             lives in `cl-bench` as `overhead/flow-off`, gated against \
             `BENCH_BASELINE.json`. With recording off the queue holds no \
             `FlowLog`, launch bindings are never queried, and every record \
             site is one skipped `Option` branch.\n",
        );
    } else {
        let _ = writeln!(
            md,
            "A 12-launch square coalescing sweep, run twice with recording \
             disabled and once enabled: run-to-run noise {:.2}%, recording run \
             {:+.2}% vs the faster disabled run. With recording off the queue \
             holds no `FlowLog`, launch bindings are never queried, and every \
             record site is one skipped `Option` branch.",
            noise * 100.0,
            recording_cost * 100.0,
        );
    }
    md
}

fn render_csv(clean: &[Scenario], seeded: &[Seeded]) -> String {
    let mut csv = String::from(
        "section,name,commands,edges,proven_edges,independent_pairs,errors,warnings,caught\n",
    );
    for s in clean {
        csv.push_str(&cl_util::csv::row([
            "clean".to_string(),
            s.name.to_string(),
            s.commands.len().to_string(),
            s.analysis.edges.len().to_string(),
            s.proven_edges().to_string(),
            s.analysis.independent_pairs.to_string(),
            s.errors().to_string(),
            s.warnings().to_string(),
            String::new(),
        ]));
    }
    for s in seeded {
        csv.push_str(&cl_util::csv::row([
            "seeded".to_string(),
            s.kind.as_str().to_string(),
            s.analysis.commands.to_string(),
            s.analysis.edges.len().to_string(),
            String::new(),
            String::new(),
            s.analysis
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .count()
                .to_string(),
            String::new(),
            s.caught.to_string(),
        ]));
    }
    csv
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: not a valid value: {}", args[i]))
}
