//! `cl-coarsen` — certify the thread-coarsening legality prover and its
//! static cost model against the kernel registry.
//!
//! ```text
//! cl-coarsen [--workers W] [--default-wg N] [--out DIR] [--stable]
//!
//!   --workers W     pool workers of the timing device (default: 2)
//!   --default-wg N  workgroup size cap for NULL locals (default: 256)
//!   --out DIR       output directory for coarsen.md / coarsen.csv
//!                   (default: results)
//!   --stable        deterministic report: measured-timing cells render as
//!                   "·" and the predicted-vs-measured agreement check is
//!                   skipped, so the committed report is byte-identical
//!                   across machines. Verdicts, features, chosen factors,
//!                   and static predictions (all deterministic at pinned
//!                   --workers) still render in full.
//! ```
//!
//! Four sections, any seeded-defect miss exits nonzero:
//!
//! 1. **Registry sweep** — every Table II/III launch gets a coarsening
//!    verdict (`Proven(K≤max)` / `Illegal` / `Unknown`) or an explicit
//!    exemption, plus its architecture-independent feature record and the
//!    cost model's chosen factor and predicted speedup.
//! 2. **Par-for twins** — the `mbench` OpenMP loop IRs lifted to access
//!    specs (`analyze_coarsen_loop`) and certified the same way.
//! 3. **Seeded defects** — the `cl_kernels::coarsen` fixtures must come
//!    back exactly `Illegal`, `Illegal`, `Unknown`, and a queue with a
//!    forced factor must refuse all three at enqueue time while the Auto
//!    queue runs them uncoarsened.
//! 4. **Timing cross-validation** — a `Proven` kernel runs coarsened and
//!    uncoarsened on a native queue; the measured dispatch speedup is
//!    compared against the static prediction (error band: agreement within
//!    50% relative or 0.35 absolute, whichever is looser — the model has
//!    one machine constant and must only rank, not time).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use cl_analyze::{
    analyze_coarsen, analyze_coarsen_loop, choose_factor, features, CoarsenAnalysis, CoarsenPlan,
    CoarsenVerdict, KernelFeatures, LintGeometry,
};
use cl_kernels::access::SpecCoverage;
use cl_kernels::registry::{parboil_kernels, simple_apps};
use ocl_rt::{ClError, CoarsenMode, Context, Device, Kernel, NDRange, QueueConfig};

struct Row {
    section: &'static str,
    benchmark: String,
    kernel: String,
    geometry: String,
    exempt: Option<&'static str>,
    analysis: Option<CoarsenAnalysis>,
    feats: Option<KernelFeatures>,
    plan: CoarsenPlan,
}

fn lane_summary(f: &KernelFeatures) -> String {
    if f.lanes.is_empty() {
        return "—".into();
    }
    f.lanes
        .iter()
        .map(|l| format!("{}:{}", l.buffer, l.class.as_str()))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 2usize;
    let mut default_wg = 256usize;
    let mut out_dir = PathBuf::from("results");
    let mut stable = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .expect("--workers needs a count")
                    .parse()
                    .expect("--workers needs an integer");
            }
            "--default-wg" => {
                i += 1;
                default_wg = args
                    .get(i)
                    .expect("--default-wg needs a size")
                    .parse()
                    .expect("--default-wg needs an integer");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--stable" => stable = true,
            "--help" | "-h" => {
                println!("usage: cl-coarsen [--workers W] [--default-wg N] [--out DIR] [--stable]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut failures: Vec<String> = Vec::new();

    // --- 1. Registry sweep ----------------------------------------------
    let mut rows = Vec::new();
    for entry in simple_apps().into_iter().chain(parboil_kernels()) {
        for &global in &entry.globals {
            let (analysis, feats, plan) = match entry.coverage(global, default_wg) {
                None => {
                    failures.push(format!(
                        "{}/{} at {}: kernel publishes neither spec nor exemption",
                        entry.benchmark,
                        entry.kernel,
                        global.describe()
                    ));
                    continue;
                }
                Some(SpecCoverage::Exempt(reason)) => {
                    rows.push(Row {
                        section: "registry",
                        benchmark: entry.benchmark.to_string(),
                        kernel: entry.kernel.to_string(),
                        geometry: global.describe(),
                        exempt: Some(reason),
                        analysis: None,
                        feats: None,
                        plan: CoarsenPlan::NONE,
                    });
                    continue;
                }
                Some(SpecCoverage::Spec(spec)) => {
                    let analysis = analyze_coarsen(&spec);
                    let feats = features(&spec, 1.0);
                    let plan = choose_factor(&analysis, &feats, workers);
                    (analysis, feats, plan)
                }
            };
            rows.push(Row {
                section: "registry",
                benchmark: entry.benchmark.to_string(),
                kernel: entry.kernel.to_string(),
                geometry: global.describe(),
                exempt: None,
                analysis: Some(analysis),
                feats: Some(feats),
                plan,
            });
        }
    }

    // --- 2. Par-for twins (mbench loop IR) -------------------------------
    const TWIN_N: usize = 65_536;
    const TWIN_WG: usize = 64;
    for mb in cl_kernels::mbench::all() {
        let l = (mb.omp_ir)();
        let in_len = mb.input_len(TWIN_N);
        let arrays = vec![
            ("a".to_string(), in_len),
            ("b".to_string(), in_len),
            ("c".to_string(), TWIN_N),
        ];
        let geometry = LintGeometry::d1(TWIN_N, TWIN_WG);
        let analysis = analyze_coarsen_loop(mb.name, &l, &arrays, geometry);
        rows.push(Row {
            section: "par-for twin",
            benchmark: "mbench".to_string(),
            kernel: mb.name.to_string(),
            geometry: format!("{TWIN_N} wg {TWIN_WG}"),
            exempt: None,
            analysis: Some(analysis),
            feats: None,
            plan: CoarsenPlan::NONE,
        });
    }

    // --- 3. Seeded defects -----------------------------------------------
    let ctx = Context::new(Device::native_cpu(workers).expect("native device"));
    const FIX_N: usize = 4096;
    const FIX_WG: usize = 64;
    let fixtures: Vec<(&str, Arc<dyn Kernel>, NDRange)> = {
        let (ns, r1) = cl_kernels::coarsen::neighbor_shift(&ctx, FIX_N, FIX_WG);
        let (aw, r2) = cl_kernels::coarsen::all_write_zero(&ctx, FIX_N, FIX_WG);
        let (is_, r3) = cl_kernels::coarsen::indirect_scatter(&ctx, FIX_N, FIX_WG);
        vec![
            ("Illegal", ns, r1),
            ("Illegal", aw, r2),
            ("Unknown", is_, r3),
        ]
    };
    let q_force = ctx.queue_with(QueueConfig::default().coarsen(CoarsenMode::Force(4)));
    for (want, kernel, range) in &fixtures {
        let resolved = range
            .resolve_with(ctx.device().default_wg(), ctx.device().null_target_groups())
            .expect("fixture geometry");
        let spec = kernel
            .access_spec(&resolved)
            .expect("fixture publishes a spec");
        let analysis = analyze_coarsen(&spec);
        let got = match &analysis.verdict {
            CoarsenVerdict::Proven { .. } => "Proven",
            CoarsenVerdict::Illegal { .. } => "Illegal",
            CoarsenVerdict::Unknown { .. } => "Unknown",
        };
        if got != *want {
            failures.push(format!(
                "seeded defect {}: expected {want}, prover said {got} ({})",
                kernel.name(),
                analysis.verdict.reason()
            ));
        }
        // A forced factor must be refused at enqueue time for every
        // fixture — none of them carries a `Proven` certificate.
        match q_force.enqueue_kernel(kernel, *range) {
            Err(ClError::ContractViolation { .. }) => {}
            Err(e) => failures.push(format!(
                "seeded defect {}: forced coarsening refused with the wrong error: {e}",
                kernel.name()
            )),
            Ok(_) => failures.push(format!(
                "seeded defect {}: forced coarsening was NOT refused at enqueue",
                kernel.name()
            )),
        }
        rows.push(Row {
            section: "seeded defect",
            benchmark: "fixture".to_string(),
            kernel: kernel.name().to_string(),
            geometry: format!("{FIX_N} wg {FIX_WG}"),
            exempt: None,
            analysis: Some(analysis),
            feats: Some(features(&spec, 1.0)),
            plan: CoarsenPlan::NONE,
        });
    }

    // --- 4. Timing cross-validation --------------------------------------
    const TIME_N: usize = 65_536;
    const TIME_WG: usize = 64;
    let built = cl_kernels::apps::square::build(&ctx, TIME_N, 1, Some(TIME_WG), 7);
    let resolved = built
        .range
        .resolve_with(ctx.device().default_wg(), ctx.device().null_target_groups())
        .expect("square geometry");
    let spec = built
        .kernel
        .access_spec(&resolved)
        .expect("square publishes a spec");
    let analysis = analyze_coarsen(&spec);
    let profile = built.kernel.profile();
    let ratio = profile.flops / (profile.mem_bytes / 4.0).max(1.0);
    let feats = features(&spec, ratio);
    let plan = choose_factor(&analysis, &feats, workers);
    if plan.factor <= 1 {
        failures.push(format!(
            "timing: square at {TIME_N} should coarsen (verdict {}), got factor {}",
            analysis.verdict.label(),
            plan.factor
        ));
    }
    let q_auto = ctx.queue_with(QueueConfig::default().coarsen(CoarsenMode::Auto));
    let q_off = ctx.queue_with(QueueConfig::default().coarsen(CoarsenMode::Off));
    let median_ns = |q: &ocl_rt::CommandQueue| -> u64 {
        const WARM: usize = 3;
        const SAMPLES: usize = 9;
        let mut times = Vec::with_capacity(SAMPLES);
        for it in 0..WARM + SAMPLES {
            let t0 = Instant::now();
            q.enqueue_kernel(&built.kernel, built.range)
                .expect("timing enqueue");
            if it >= WARM {
                times.push(t0.elapsed().as_nanos() as u64);
            }
        }
        times.sort_unstable();
        times[times.len() / 2]
    };
    let fused_ns = median_ns(&q_auto);
    let serial_ns = median_ns(&q_off);
    built.verify(&q_auto).expect("coarsened square results");
    let measured = serial_ns as f64 / fused_ns.max(1) as f64;
    let agreement = if stable {
        None
    } else {
        let band = f64::max(0.5 * plan.predicted_speedup, 0.35);
        Some((measured - plan.predicted_speedup).abs() <= band)
    };
    if let Some(false) = agreement {
        failures.push(format!(
            "timing: predicted x{:.2} vs measured x{measured:.2} disagree beyond the error band",
            plan.predicted_speedup
        ));
    }

    // --- Report -----------------------------------------------------------
    fs::create_dir_all(&out_dir).expect("create output directory");
    let md = render_md(
        &rows, workers, default_wg, plan, measured, fused_ns, serial_ns, agreement, stable,
    );
    fs::write(out_dir.join("coarsen.md"), md).expect("write coarsen.md");
    fs::write(out_dir.join("coarsen.csv"), render_csv(&rows)).expect("write coarsen.csv");

    let proven = rows
        .iter()
        .filter(|r| matches!(&r.analysis, Some(a) if a.verdict.is_proven()))
        .count();
    println!(
        "cl-coarsen: {} launches analyzed ({proven} proven), {} seeded defects checked, \
         fused x{:.2} predicted x{:.2}{}",
        rows.len(),
        fixtures.len(),
        if stable { f64::NAN } else { measured },
        plan.predicted_speedup,
        if stable { " (stable mode)" } else { "" },
    );
    for f in &failures {
        eprintln!("cl-coarsen: FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_md(
    rows: &[Row],
    workers: usize,
    default_wg: usize,
    plan: CoarsenPlan,
    measured: f64,
    fused_ns: u64,
    serial_ns: u64,
    agreement: Option<bool>,
    stable: bool,
) -> String {
    let mut md = String::new();
    md.push_str("# Thread-coarsening certification\n\n");
    let _ = writeln!(
        md,
        "Legality verdicts and static cost-model decisions for every \
         registry launch (`cl_analyze::coarsen`, NULL locals resolved with \
         a {default_wg}-workitem cap, factors chosen for {workers} \
         workers). `Proven(K≤max)` certifies that fusing up to `max` \
         consecutive workgroups per dispatch chunk is bit-exact; `Illegal` \
         kernels are refused under a forced factor; `Unknown` kernels run \
         uncoarsened.\n"
    );
    md.push_str(
        "| Section | Benchmark | Kernel | Geometry | Verdict | Guards | Lanes | Entropy (bits) | Footprint (KiB) | K | Predicted |\n",
    );
    md.push_str("|---|---|---|---|---|---|---|---:|---:|---:|---:|\n");
    for r in rows {
        let (verdict, guards) = match (&r.exempt, &r.analysis) {
            (Some(_), _) => ("exempt".to_string(), "—".to_string()),
            (None, Some(a)) => (a.verdict.label(), a.guards.as_str().to_string()),
            (None, None) => ("—".to_string(), "—".to_string()),
        };
        let (lanes, entropy, footprint) = match &r.feats {
            Some(f) => (
                lane_summary(f),
                format!("{:.2}", f.access_entropy_bits),
                format!("{:.0}", f.footprint_bytes as f64 / 1024.0),
            ),
            None => ("—".into(), "—".into(), "—".into()),
        };
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.section,
            r.benchmark,
            r.kernel,
            r.geometry,
            verdict,
            guards,
            lanes,
            entropy,
            footprint,
            if r.plan.factor > 1 {
                r.plan.factor.to_string()
            } else {
                "1".to_string()
            },
            if r.plan.factor > 1 {
                format!("x{:.2}", r.plan.predicted_speedup)
            } else {
                "—".to_string()
            },
        );
    }
    let exempt: Vec<&Row> = rows.iter().filter(|r| r.exempt.is_some()).collect();
    if !exempt.is_empty() {
        md.push_str("\n## Exempt launches\n\n");
        for r in exempt {
            let _ = writeln!(
                md,
                "- {}/{} at {}: {}",
                r.benchmark,
                r.kernel,
                r.geometry,
                r.exempt.unwrap()
            );
        }
    }
    md.push_str("\n## Non-proven verdicts\n\n");
    let mut any = false;
    for r in rows {
        if let Some(a) = &r.analysis {
            if !a.verdict.is_proven() {
                any = true;
                let _ = writeln!(
                    md,
                    "- {} {}/{}: {} — {}",
                    r.section,
                    r.benchmark,
                    r.kernel,
                    a.verdict.label(),
                    a.verdict.reason()
                );
            }
        }
    }
    if !any {
        md.push_str("(none outside the seeded defects)\n");
    }
    md.push_str("\n## Fused-dispatch cross-validation\n\n");
    let cell = |v: String| if stable { "·".to_string() } else { v };
    let _ = writeln!(
        md,
        "`square` at 65536 items, wg 64, {workers} workers: chosen factor \
         K={}, predicted speedup x{:.2}, serial median {} ns, fused median \
         {} ns, measured speedup {} — agreement {}. Error band: within 50% \
         relative or 0.35 absolute of the prediction, whichever is looser.",
        plan.factor,
        plan.predicted_speedup,
        cell(serial_ns.to_string()),
        cell(fused_ns.to_string()),
        cell(format!("x{measured:.2}")),
        match agreement {
            None => "not checked (stable mode)".to_string(),
            Some(true) => "OK".to_string(),
            Some(false) => "FAILED".to_string(),
        },
    );
    if stable {
        md.push_str(
            "\n*Stable mode (`--stable`): measured-timing cells render as \
             \"·\" so the committed report is machine-independent; verdicts, \
             features, factors, and static predictions are deterministic and \
             render in full.*\n",
        );
    }
    md
}

fn render_csv(rows: &[Row]) -> String {
    let mut csv = String::from(
        "section,benchmark,kernel,geometry,verdict,guards,lanes,entropy_bits,footprint_bytes,factor,predicted_speedup,reason\n",
    );
    for r in rows {
        let (verdict, guards, reason) = match (&r.exempt, &r.analysis) {
            (Some(why), _) => ("exempt".to_string(), "-".to_string(), why.to_string()),
            (None, Some(a)) => (
                a.verdict.label(),
                a.guards.as_str().to_string(),
                a.verdict.reason().to_string(),
            ),
            (None, None) => ("-".to_string(), "-".to_string(), String::new()),
        };
        let (lanes, entropy, footprint) = match &r.feats {
            Some(f) => (
                lane_summary(f),
                format!("{:.4}", f.access_entropy_bits),
                f.footprint_bytes.to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        csv.push_str(&cl_util::csv::row([
            r.section.to_string(),
            r.benchmark.clone(),
            r.kernel.clone(),
            r.geometry.clone(),
            verdict,
            guards,
            lanes,
            entropy,
            footprint,
            r.plan.factor.to_string(),
            format!("{:.4}", r.plan.predicted_speedup),
            reason,
        ]));
    }
    csv
}
