//! `cl-tune` — prove the online autotuner converges: replay the Table II
//! square sweep plus skewed geometries through a tuned queue, then measure
//! every shortlist candidate exhaustively and gate the tuner's choice.
//!
//! ```text
//! cl-tune [--workers W] [--out DIR] [--cache PATH] [--stable]
//!         [--verify-reuse]
//!
//!   --workers W      pool workers of the timing device (default: 2)
//!   --out DIR        output directory for tune.md / tune.csv
//!                    (default: results)
//!   --cache PATH     tuner cache file (default: target/tune-cache.json);
//!                    deleted at startup so every run starts cold
//!   --stable         deterministic report: measured cells (chosen config,
//!                    % of best, medians) render as "·" so the committed
//!                    report is byte-identical across machines. Candidate
//!                    counts, trial counts, and budgets are pinned by the
//!                    deterministic prior + halving schedule and render in
//!                    full. All gates still run.
//!   --verify-reuse   internal: run as the cold-cache second process —
//!                    load the cache written by the parent, replay every
//!                    workload, and exit nonzero unless every decision is
//!                    reused with zero additional trials.
//! ```
//!
//! Gates (any failure exits nonzero):
//!
//! 1. **Convergence** — every workload converges within the pinned trial
//!    budget (`cl_tune::schedule_trials` over its shortlist).
//! 2. **Quality** — the converged config's exhaustively-measured median is
//!    within 5% of the best measured candidate (plus the bench gate's MAD
//!    noise floor). A first-pass miss is re-judged on a back-to-back
//!    paired re-measure of the two configs, so a load spike during the
//!    sweep's minutes-long window cannot fake a regression.
//! 3. **Correctness** — tuned-queue results verify against the serial
//!    reference for every workload.
//! 4. **Reuse** — a second process (`--verify-reuse`, spawned from this
//!    binary) reads the persisted cache and replays every workload with
//!    zero additional trials.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cl_harness::bench::{mad, median};
use cl_kernels::apps::{square, vectoradd, Built};
use cl_tune::{schedule_trials, TuneGeometry, TuneKey, TunedConfig, Tuner};
use ocl_rt::{CoarsenMode, Context, Device, NDRange, QueueConfig};

/// Quality gate: converged config within 5% of the exhaustive best.
const QUALITY_REL: f64 = 0.05;
/// MAD multiplier of the quality gate's noise floor (the PR 5 constant).
const MAD_K: f64 = 6.0;
/// Absolute noise floor of the quality gate, matching the bench gate's
/// `GateConfig::abs_floor_ns`: deltas under one dispatch quantum are
/// scheduling noise regardless of the relative gap, so µs-scale launches
/// are gated by this and ms-scale launches by the 5% relative bound.
const ABS_FLOOR_NS: f64 = 25_000.0;
/// Exhaustive measurement: samples per candidate after warmup.
const EXH_WARMUP: usize = 2;
const EXH_SAMPLES: usize = 7;

struct Workload {
    section: &'static str,
    name: &'static str,
    n: usize,
    build: fn(&Context, usize) -> Built,
}

fn build_square(ctx: &Context, n: usize) -> Built {
    square::build(ctx, n, 1, None, 7)
}

fn build_vectoradd(ctx: &Context, n: usize) -> Built {
    vectoradd::build(ctx, n, 1, None, 7)
}

/// The replayed sweep: Table II square sizes, the two smallest Table II
/// vectoradd sizes, and two skewed geometries (divisor-poor sizes the
/// fixed NULL-local heuristic handles worst).
fn workloads() -> Vec<Workload> {
    let mut w = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000, 10_000_000] {
        w.push(Workload {
            section: "table-ii",
            name: "square",
            n,
            build: build_square,
        });
    }
    for n in [110_000usize, 1_100_000] {
        w.push(Workload {
            section: "table-ii",
            name: "vectoradd",
            n,
            build: build_vectoradd,
        });
    }
    // 31 250 = 2·5⁶: divisors under the cap are sparse (…125, 250), so the
    // heuristic's "largest divisor ≤ cap" pick is far from the ladder.
    w.push(Workload {
        section: "skewed",
        name: "square",
        n: 31_250,
        build: build_square,
    });
    // 999 900 = 2²·3²·5²·11·101: a dense but irregular divisor lattice.
    w.push(Workload {
        section: "skewed",
        name: "vectoradd",
        n: 999_900,
        build: build_vectoradd,
    });
    w
}

/// The tuner's key for a workload, matching the queue's construction.
fn key_for(built: &Built, device: &Device) -> TuneKey {
    TuneKey {
        kernel: built.kernel.name().to_string(),
        global: built.range.global(),
        dims: built.range.dims(),
        device: device.name().to_string(),
        workers: device.pool().workers(),
    }
}

/// Recompute the shortlist exactly as the queue does (deterministic), for
/// the budget and the exhaustive sweep.
fn shortlist_for(built: &Built, device: &Device) -> Vec<TunedConfig> {
    let default = built
        .range
        .resolve_with(device.default_wg(), device.null_target_groups())
        .expect("workload geometry resolves");
    let features = built.kernel.access_spec(&default).map(|spec| {
        let profile = built.kernel.profile();
        let ratio = profile.flops / (profile.mem_bytes / 4.0).max(1.0);
        cl_analyze::features(&spec, ratio)
    });
    let geom = TuneGeometry {
        global: built.range.global(),
        dims: built.range.dims(),
    };
    cl_tune::shortlist(
        &geom,
        features.as_ref(),
        device.default_wg(),
        device.pool().workers(),
        default.local[0],
    )
}

/// Median/MAD of a config's execution window (ns), measured on a plain
/// queue with the tuned explicit local size and a forced (prover-clamped)
/// chunk factor — the exact plan a converged tuner decision produces.
fn measure_config(ctx: &Context, built: &Built, cfg: TunedConfig) -> (f64, f64) {
    let mode = if cfg.chunk > 1 {
        CoarsenMode::Force(cfg.chunk)
    } else {
        CoarsenMode::Off
    };
    let q = ctx.queue_with(QueueConfig::default().coarsen(mode));
    let range = explicit_range(built.range, cfg.wg);
    let mut samples = Vec::with_capacity(EXH_SAMPLES);
    for it in 0..EXH_WARMUP + EXH_SAMPLES {
        let ev = q
            .enqueue_kernel(&built.kernel, range)
            .expect("exhaustive-sweep enqueue");
        if it >= EXH_WARMUP {
            let p = ev.profiling();
            samples.push(p.completed_ns.saturating_sub(p.started_ns) as f64);
        }
    }
    (median(&samples), mad(&samples))
}

fn explicit_range(range: NDRange, wg: usize) -> NDRange {
    range.local1(wg)
}

struct Row {
    section: &'static str,
    name: &'static str,
    n: usize,
    candidates: usize,
    budget: usize,
    trials: usize,
    chosen: TunedConfig,
    chosen_ns: f64,
    best: TunedConfig,
    best_ns: f64,
    pct_of_best: f64,
    reused: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers = 2usize;
    let mut out_dir = PathBuf::from("results");
    let mut cache = PathBuf::from("target/tune-cache.json");
    let mut stable = false;
    let mut verify_reuse = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .expect("--workers needs a count")
                    .parse()
                    .expect("--workers needs an integer");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--cache" => {
                i += 1;
                cache = PathBuf::from(args.get(i).expect("--cache needs a path"));
            }
            "--stable" => stable = true,
            "--verify-reuse" => verify_reuse = true,
            "--help" | "-h" => {
                println!(
                    "usage: cl-tune [--workers W] [--out DIR] [--cache PATH] [--stable] \
                     [--verify-reuse]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if verify_reuse {
        std::process::exit(run_reuse_check(workers, cache));
    }

    // Cold start: the convergence trajectory below must be earned, not
    // read from a previous run's cache.
    let _ = fs::remove_file(&cache);
    let tuner = Arc::new(Tuner::new(Some(cache.clone())));
    let device = Device::native_cpu(workers).expect("native device");
    let mut failures: Vec<String> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();

    for w in workloads() {
        let ctx = Context::new(device.clone());
        let built = (w.build)(&ctx, w.n);
        let key = key_for(&built, &device);
        let shortlist = shortlist_for(&built, &device);
        let budget = schedule_trials(shortlist.len());
        let q = ctx.queue_with(QueueConfig::default().tuner(Arc::clone(&tuner)));

        // Drive the bandit to convergence through real NULL-local enqueues.
        let mut launches = 0usize;
        while tuner.converged(&key).is_none() {
            if launches > budget + shortlist.len() + 4 {
                failures.push(format!(
                    "{}/{}: no convergence after {launches} launches (budget {budget})",
                    w.name, w.n
                ));
                break;
            }
            q.enqueue_kernel(&built.kernel, built.range)
                .expect("tuned enqueue");
            launches += 1;
        }
        let Some(chosen) = tuner.converged(&key) else {
            continue;
        };
        let trials = tuner.trials(&key);
        if trials > budget {
            failures.push(format!(
                "{}/{}: {trials} trials exceed the pinned budget {budget}",
                w.name, w.n
            ));
        }
        if let Err(e) = built.verify(&q) {
            failures.push(format!(
                "{}/{}: tuned results diverge from reference: {e}",
                w.name, w.n
            ));
        }

        // Exhaustive ground truth: measure every candidate the tuner could
        // have chosen, identically configured.
        let measured: Vec<(TunedConfig, f64, f64)> = shortlist
            .iter()
            .map(|&cfg| {
                let (med, m) = measure_config(&ctx, &built, cfg);
                (cfg, med, m)
            })
            .collect();
        let &(best, best_ns, best_mad) = measured
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty shortlist");
        let &(_, chosen_ns, chosen_mad) = measured
            .iter()
            .find(|(cfg, _, _)| *cfg == chosen)
            .expect("chosen config is in the shortlist");
        // Same verdict shape as the PR 5 bench gate: the delta must beat
        // every floor (absolute, relative, MAD) to count as a real miss.
        // The exhaustive sweep measures candidates minutes apart, so a
        // load spike during one candidate's window can fake a miss; a
        // first-pass failure is retried with a back-to-back paired
        // re-measure of just the chosen and best configs before it counts.
        let verdict = |chosen_ns: f64, chosen_mad: f64, best_ns: f64, best_mad: f64| {
            let allowed = ABS_FLOOR_NS
                .max(QUALITY_REL * best_ns)
                .max(MAD_K * chosen_mad.max(best_mad));
            (chosen_ns - best_ns > allowed, allowed)
        };
        let (mut miss, mut allowed) = verdict(chosen_ns, chosen_mad, best_ns, best_mad);
        let (mut chosen_ns, mut best_ns) = (chosen_ns, best_ns);
        if miss && chosen != best {
            eprintln!(
                "cl-tune: {}/{}: quality gate miss on the first pass; paired re-measure",
                w.name, w.n
            );
            let (c_ns, c_mad) = measure_config(&ctx, &built, chosen);
            let (b_ns, b_mad) = measure_config(&ctx, &built, best);
            (miss, allowed) = verdict(c_ns, c_mad, b_ns, b_mad);
            (chosen_ns, best_ns) = (c_ns, b_ns);
        }
        if miss {
            failures.push(format!(
                "{}/{}: converged to {} at {chosen_ns:.0} ns, worse than 5% off the best {} \
                 at {best_ns:.0} ns (allowed delta {allowed:.0} ns)",
                w.name,
                w.n,
                chosen.label(),
                best.label(),
            ));
        }
        rows.push(Row {
            section: w.section,
            name: w.name,
            n: w.n,
            candidates: shortlist.len(),
            budget,
            trials,
            chosen,
            chosen_ns,
            best,
            best_ns,
            pct_of_best: if chosen_ns > 0.0 {
                best_ns / chosen_ns * 100.0
            } else {
                100.0
            },
            reused: false,
        });
    }

    // Cold-cache second process: a fresh process must reuse every persisted
    // decision with zero additional trials.
    let exe = std::env::current_exe().expect("own executable path");
    let status = std::process::Command::new(exe)
        .args([
            "--verify-reuse",
            "--workers",
            &workers.to_string(),
            "--cache",
        ])
        .arg(&cache)
        .status();
    let reuse_ok = matches!(&status, Ok(s) if s.success());
    if !reuse_ok {
        failures.push(format!(
            "cold-cache reuse check failed ({})",
            match &status {
                Ok(s) => format!("exit {s}"),
                Err(e) => format!("spawn error: {e}"),
            }
        ));
    }
    for r in &mut rows {
        r.reused = reuse_ok;
    }

    fs::create_dir_all(&out_dir).expect("create output directory");
    fs::write(out_dir.join("tune.md"), render_md(&rows, workers, stable)).expect("write tune.md");
    fs::write(out_dir.join("tune.csv"), render_csv(&rows, stable)).expect("write tune.csv");

    println!(
        "cl-tune: {} workloads converged, {} trials total, cold-cache reuse {}{}",
        rows.len(),
        rows.iter().map(|r| r.trials).sum::<usize>(),
        if reuse_ok { "OK" } else { "FAILED" },
        if stable { " (stable mode)" } else { "" },
    );
    for f in &failures {
        eprintln!("cl-tune: FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// The `--verify-reuse` child: load the parent's cache cold and replay
/// every workload. Exit 0 iff every decision is already converged and no
/// launch spends a trial.
fn run_reuse_check(workers: usize, cache: PathBuf) -> i32 {
    let tuner = Arc::new(Tuner::new(Some(cache)));
    let device = Device::native_cpu(workers).expect("native device");
    let mut bad = 0;
    for w in workloads() {
        let ctx = Context::new(device.clone());
        let built = (w.build)(&ctx, w.n);
        let key = key_for(&built, &device);
        if tuner.converged(&key).is_none() {
            eprintln!(
                "cl-tune --verify-reuse: {}/{} has no persisted decision",
                w.name, w.n
            );
            bad += 1;
            continue;
        }
        let q = ctx.queue_with(QueueConfig::default().tuner(Arc::clone(&tuner)));
        q.enqueue_kernel(&built.kernel, built.range)
            .expect("reuse enqueue");
        if let Err(e) = built.verify(&q) {
            eprintln!("cl-tune --verify-reuse: {}/{}: {e}", w.name, w.n);
            bad += 1;
        }
        let extra = tuner.session_trials(&key);
        if extra != 0 {
            eprintln!(
                "cl-tune --verify-reuse: {}/{} spent {extra} trials despite the cache",
                w.name, w.n
            );
            bad += 1;
        }
    }
    if bad == 0 {
        0
    } else {
        1
    }
}

fn render_md(rows: &[Row], workers: usize, stable: bool) -> String {
    let cell = |v: String| if stable { "·".to_string() } else { v };
    let mut md = String::new();
    md.push_str("# Online autotuning convergence\n\n");
    let _ = writeln!(
        md,
        "Per-workload convergence trajectory of the `cl_tune` bandit on a \
         native queue with {workers} workers: candidate shortlist from the \
         static prior, successive-halving trials (pinned schedule — the \
         trial count is deterministic), converged configuration, and its \
         exhaustively-measured quality vs the best candidate. The reuse \
         column is a second process replaying the sweep from the persisted \
         cache with zero additional trials.\n"
    );
    md.push_str(
        "| Section | Kernel | n | Candidates | Trials | Budget | Chosen | % of best | Reuse |\n",
    );
    md.push_str("|---|---|---:|---:|---:|---:|---|---:|---|\n");
    for r in rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.section,
            r.name,
            r.n,
            r.candidates,
            r.trials,
            r.budget,
            cell(r.chosen.label()),
            cell(format!("{:.1}", r.pct_of_best)),
            if r.reused { "ok" } else { "FAILED" },
        );
    }
    md.push_str(
        "\n*Gates: convergence within the trial budget; chosen config within \
         5% of the exhaustively-measured best (bench-gate noise floors: 25 µs \
         absolute, 6·MAD); bit-correct results on the tuned queue; zero-trial \
         cold-cache reuse. Any failure exits nonzero.*\n",
    );
    if stable {
        md.push_str(
            "\n*Stable mode (`--stable`): measured cells render as \"·\" so \
             the committed report is machine-independent; candidate counts, \
             trial counts, and budgets are deterministic and render in \
             full.*\n",
        );
    }
    md
}

fn render_csv(rows: &[Row], stable: bool) -> String {
    let cell = |v: String| if stable { "-".to_string() } else { v };
    let mut csv = String::from(
        "section,kernel,n,candidates,trials,budget,chosen_wg,chosen_chunk,chosen_ns,best_wg,best_chunk,best_ns,pct_of_best,reused\n",
    );
    for r in rows {
        csv.push_str(&cl_util::csv::row([
            r.section.to_string(),
            r.name.to_string(),
            r.n.to_string(),
            r.candidates.to_string(),
            r.trials.to_string(),
            r.budget.to_string(),
            cell(r.chosen.wg.to_string()),
            cell(r.chosen.chunk.to_string()),
            cell(format!("{:.0}", r.chosen_ns)),
            cell(r.best.wg.to_string()),
            cell(r.best.chunk.to_string()),
            cell(format!("{:.0}", r.best_ns)),
            cell(format!("{:.2}", r.pct_of_best)),
            r.reused.to_string(),
        ]));
    }
    csv
}
