//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--full] [--native] [--out DIR] [--only figN]
//!
//!   --full     use the paper's full problem sizes (default: scaled down)
//!   --native   also run wall-clock measurements on this host
//!   --out DIR  output directory (default: results)
//!   --only ID  run a single experiment, e.g. --only fig6
//! ```
//!
//! Writes one Markdown + CSV file per figure, the tables, and a combined
//! `EXPERIMENTS.generated.md`.

use std::fs;
use std::path::PathBuf;

use cl_harness::{all_figures, figures, tables, Config, Figure};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut out_dir = PathBuf::from("results");
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => cfg.quick = false,
            "--native" => cfg.native = true,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--only" => {
                i += 1;
                only = Some(args.get(i).expect("--only needs an id").clone());
            }
            "--help" | "-h" => {
                println!("usage: repro [--full] [--native] [--out DIR] [--only figN]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    fs::create_dir_all(&out_dir).expect("create output directory");
    eprintln!(
        "repro: plane = modeled{}, sizes = {}",
        if cfg.native { " + native" } else { "" },
        if cfg.quick { "quick" } else { "full (paper)" }
    );

    let figures: Vec<Figure> = match &only {
        Some(id) => vec![run_one(id, &cfg)],
        None => {
            let mut figs = all_figures(&cfg);
            figs.push(figures::extra::vectorizer_ablation(&cfg));
            figs.push(figures::extra::occupancy_figure(&cfg));
            figs.push(figures::extra::scheduling_ablation(&cfg));
            figs
        }
    };

    let mut combined = String::new();
    combined.push_str("# Generated experiment results\n\n");
    combined.push_str(&format!(
        "Configuration: {} sizes{}.\n\n",
        if cfg.quick { "quick" } else { "full paper" },
        if cfg.native {
            ", with native wall-clock series"
        } else {
            ""
        }
    ));

    if only.is_none() {
        let t = tables::all_tables();
        fs::write(out_dir.join("tables.md"), &t).expect("write tables");
        combined.push_str(&t);
        eprintln!("wrote {}", out_dir.join("tables.md").display());
    }

    for fig in &figures {
        let md = fig.to_markdown();
        fs::write(out_dir.join(format!("{}.md", fig.id)), &md).expect("write figure md");
        fs::write(out_dir.join(format!("{}.csv", fig.id)), fig.to_csv()).expect("write figure csv");
        combined.push_str(&md);
        eprintln!("wrote {}/{}.md (+ .csv)", out_dir.display(), fig.id);
    }

    fs::write(out_dir.join("EXPERIMENTS.generated.md"), combined).expect("write combined");
    eprintln!(
        "wrote {}",
        out_dir.join("EXPERIMENTS.generated.md").display()
    );
}

fn run_one(id: &str, cfg: &Config) -> Figure {
    match id {
        "fig1" => figures::fig1::run(cfg),
        "fig2" => figures::fig2::run(cfg),
        "fig3" => figures::fig3::run(cfg),
        "fig4" => figures::fig4::run(cfg),
        "fig5" => figures::fig5::run(cfg),
        "fig6" => figures::fig6::run(cfg),
        "fig7" => figures::fig7::run(cfg),
        "fig8" => figures::fig8::run(cfg),
        "fig9" => figures::fig9::run(cfg),
        "fig10" => figures::fig10::run(cfg),
        "fig11" => figures::fig11::run(cfg),
        "extra-vectorizer" => figures::extra::vectorizer_ablation(cfg),
        "extra-occupancy" => figures::extra::occupancy_figure(cfg),
        "extra-scheduling" => figures::extra::scheduling_ablation(cfg),
        other => {
            eprintln!(
                "unknown experiment id: {other} (expected fig1..fig11 or extra-vectorizer/\
                 extra-occupancy/extra-scheduling)"
            );
            std::process::exit(2);
        }
    }
}
