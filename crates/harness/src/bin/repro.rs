//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--full] [--native] [--out DIR] [--only figN]
//!
//!   --full     use the paper's full problem sizes (default: scaled down)
//!   --native   also run wall-clock measurements on this host
//!   --out DIR  output directory (default: results)
//!   --only ID  run a single experiment, e.g. --only fig6
//! ```
//!
//! Writes one Markdown + CSV file per figure, the tables, and a combined
//! `EXPERIMENTS.generated.md`.

use std::fs;
use std::panic::catch_unwind;
use std::path::PathBuf;

use cl_harness::{figures, tables, Config, Figure};

/// Every experiment id, in report order (`all_figures` plus the extras).
const ALL_IDS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "extra-vectorizer",
    "extra-occupancy",
    "extra-scheduling",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut out_dir = PathBuf::from("results");
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => cfg.quick = false,
            "--native" => cfg.native = true,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--only" => {
                i += 1;
                only = Some(args.get(i).expect("--only needs an id").clone());
            }
            "--help" | "-h" => {
                println!("usage: repro [--full] [--native] [--out DIR] [--only figN]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    fs::create_dir_all(&out_dir).expect("create output directory");
    eprintln!(
        "repro: plane = modeled{}, sizes = {}",
        if cfg.native { " + native" } else { "" },
        if cfg.quick { "quick" } else { "full (paper)" }
    );

    // Each experiment runs inside `catch_unwind`: one panicking figure is
    // reported (and fails the run with a nonzero exit) without losing the
    // results of every other figure.
    let ids: Vec<&str> = match &only {
        Some(id) => vec![id.as_str()],
        None => ALL_IDS.to_vec(),
    };
    let mut figures: Vec<Figure> = Vec::with_capacity(ids.len());
    let mut failed: Vec<String> = Vec::new();
    for id in ids {
        match catch_unwind(|| run_one(id, &cfg)) {
            Ok(fig) => figures.push(fig),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                eprintln!("repro: {id} FAILED: {msg}");
                failed.push(id.to_string());
            }
        }
    }

    let mut combined = String::new();
    combined.push_str("# Generated experiment results\n\n");
    combined.push_str(&format!(
        "Configuration: {} sizes{}.\n\n",
        if cfg.quick { "quick" } else { "full paper" },
        if cfg.native {
            ", with native wall-clock series"
        } else {
            ""
        }
    ));

    if only.is_none() {
        let t = tables::all_tables();
        fs::write(out_dir.join("tables.md"), &t).expect("write tables");
        combined.push_str(&t);
        eprintln!("wrote {}", out_dir.join("tables.md").display());
    }

    for fig in &figures {
        let md = fig.to_markdown();
        fs::write(out_dir.join(format!("{}.md", fig.id)), &md).expect("write figure md");
        fs::write(out_dir.join(format!("{}.csv", fig.id)), fig.to_csv()).expect("write figure csv");
        combined.push_str(&md);
        eprintln!("wrote {}/{}.md (+ .csv)", out_dir.display(), fig.id);
    }

    fs::write(out_dir.join("EXPERIMENTS.generated.md"), combined).expect("write combined");
    eprintln!(
        "wrote {}",
        out_dir.join("EXPERIMENTS.generated.md").display()
    );
    if !failed.is_empty() {
        eprintln!(
            "repro: {} experiment(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}

fn run_one(id: &str, cfg: &Config) -> Figure {
    match id {
        "fig1" => figures::fig1::run(cfg),
        "fig2" => figures::fig2::run(cfg),
        "fig3" => figures::fig3::run(cfg),
        "fig4" => figures::fig4::run(cfg),
        "fig5" => figures::fig5::run(cfg),
        "fig6" => figures::fig6::run(cfg),
        "fig7" => figures::fig7::run(cfg),
        "fig8" => figures::fig8::run(cfg),
        "fig9" => figures::fig9::run(cfg),
        "fig10" => figures::fig10::run(cfg),
        "fig11" => figures::fig11::run(cfg),
        "extra-vectorizer" => figures::extra::vectorizer_ablation(cfg),
        "extra-occupancy" => figures::extra::occupancy_figure(cfg),
        "extra-scheduling" => figures::extra::scheduling_ablation(cfg),
        other => {
            eprintln!(
                "unknown experiment id: {other} (expected fig1..fig11 or extra-vectorizer/\
                 extra-occupancy/extra-scheduling)"
            );
            std::process::exit(2);
        }
    }
}
