//! `cl-sched` — randomized out-of-order scheduler fuzz + oracle validation.
//!
//! ```text
//! cl-sched [--dags N] [--bug-reps N] [--seed S] [--out DIR] [--stable]
//!
//!   --dags N      random DAG replays per device config (default: 60)
//!   --bug-reps N  repetitions of each seeded-bug scenario (default: 3)
//!   --seed S      base PRNG seed for DAG generation (default: 11)
//!   --out DIR     output directory for sched.md (default: results)
//!   --stable      accepted for CI symmetry; the report is deterministic
//! ```
//!
//! Three experiments, any failure exits nonzero:
//!
//! 1. **Randomized DAG replays.** Each round generates a random command DAG
//!    — [`cl_kernels::sched::MulAdd`] nodes over 1–3 buffers, explicit wait
//!    lists, user events, markers and barriers — and submits it into an
//!    out-of-order queue on each device config (native CPU at two worker
//!    counts, both modeled devices). Oracles: the buffers are **bit-exact**
//!    against the in-order serial reference (MulAdd is non-commutative, so
//!    any illegal same-buffer reorder corrupts the bytes), the completion
//!    ticks **linearize** the event graph ([`ocl_rt::check_linearization`]),
//!    every event completed exactly once, and the queue's `TraceLog` shows
//!    exactly one clean launch span per kernel node with dependency windows
//!    that never overlap (span timestamps certify the schedule the pool
//!    actually ran).
//!
//! 2. **Seeded-bug sweep.** Every [`ocl_rt::SchedBug`] is armed in a
//!    targeted scenario whose oracle must catch it deterministically,
//!    `--bug-reps` times out of `--bug-reps`: a dropped or premature edge
//!    completes a gated command before its user event signals (tick
//!    inversion), a lost wakeup strands a dependent until the finish
//!    watchdog trips, a double dispatch completes an event twice, a skipped
//!    command breaks bit-exactness and records no launch span.
//!
//! 3. **Wide-DAG overlap.** A fan of independent single-buffer commands runs
//!    through an in-order queue and an out-of-order queue; the speedup is
//!    printed (and measured nightly by `cl-bench sched/dag-throughput`, the
//!    gated copy — wall-clock numbers stay out of the drift-tracked report).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cl_kernels::sched::{muladd_ref, MulAdd, Nap};
use cl_util::XorShift;
use ocl_rt::{
    check_linearization, user_event, ClError, Context, Device, EventRef, EventStatus, Kernel,
    MemFlags, NDRange, QueueConfig, SchedBug, SpanKind,
};
use perf_model::{CpuSpec, GpuSpec};

const BUF_LEN: usize = 256;

/// One node of a generated DAG.
enum NodeKind {
    /// MulAdd on buffer `buf` with coefficients `(mul, add)`.
    Kernel { buf: usize, mul: u32, add: u32 },
    /// Marker with an empty wait list (waits everything pending).
    Marker,
    /// Barrier with an empty wait list (fences the pipeline).
    Barrier,
}

struct DagSpec {
    n_bufs: usize,
    nodes: Vec<NodeKind>,
    /// Explicit wait-list edges `(from_node, to_node)`.
    explicit: Vec<(usize, usize)>,
    /// Nodes gated on a user event.
    gated: Vec<usize>,
}

fn gen_dag(rng: &mut XorShift) -> DagSpec {
    let n_bufs = rng.range_usize(1, 4);
    let n_nodes = rng.range_usize(6, 13);
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut explicit = Vec::new();
    let mut gated = Vec::new();
    for i in 0..n_nodes {
        let roll = rng.next_f64();
        if i > 0 && roll < 0.08 {
            nodes.push(NodeKind::Barrier);
            continue;
        }
        if i > 0 && roll < 0.2 {
            nodes.push(NodeKind::Marker);
            continue;
        }
        nodes.push(NodeKind::Kernel {
            buf: rng.range_usize(0, n_bufs),
            // Odd multiplier ≥ 3 and nonzero addend: never the identity,
            // and distinct coefficients keep applications non-commuting.
            mul: 3 + 2 * rng.range_u32(1000),
            add: 1 + rng.range_u32(1000),
        });
        if i > 0 && rng.chance(0.3) {
            explicit.push((rng.range_usize(0, i), i));
        }
        if rng.chance(0.1) {
            gated.push(i);
        }
    }
    DagSpec {
        n_bufs,
        nodes,
        explicit,
        gated,
    }
}

/// Replay one DAG on an out-of-order queue and run every oracle. Returns
/// the violations found (empty = clean round).
fn replay_dag(ctx: &Context, spec: &DagSpec, native: bool) -> Vec<String> {
    let mut violations = Vec::new();
    let q = ctx.queue_with(QueueConfig::default().out_of_order(true).tracing(true));
    let bufs: Vec<_> = (0..spec.n_bufs)
        .map(|_| ctx.buffer::<u32>(MemFlags::default(), BUF_LEN).unwrap())
        .collect();
    let init: Vec<u32> = (0..BUF_LEN as u32)
        .map(|x| x.wrapping_mul(2654435761))
        .collect();
    let mut reference: Vec<Vec<u32>> = Vec::new();
    for b in &bufs {
        q.write_buffer(b, 0, &init).unwrap();
        reference.push(init.clone());
    }

    // Submit the DAG, tracking every ordering edge the scheduler must honor.
    let mut events: Vec<EventRef> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut user_events = Vec::new();
    let mut last_on_buf: Vec<Option<usize>> = vec![None; spec.n_bufs];
    for (i, node) in spec.nodes.iter().enumerate() {
        let mut wait: Vec<EventRef> = spec
            .explicit
            .iter()
            .filter(|&&(_, to)| to == i)
            .map(|&(from, _)| events[from].clone())
            .collect();
        for &(from, to) in &spec.explicit {
            if to == i {
                edges.push((from, i));
            }
        }
        if spec.gated.contains(&i) {
            let ue = user_event();
            wait.push(ue.event());
            user_events.push((ue, i));
        }
        let ev = match node {
            NodeKind::Kernel { buf, mul, add } => {
                if let Some(prev) = last_on_buf[*buf] {
                    // Same-buffer hazard: the scheduler must auto-infer it.
                    edges.push((prev, i));
                }
                last_on_buf[*buf] = Some(i);
                muladd_ref(&mut reference[*buf], *mul, *add);
                let k: Arc<dyn Kernel> = Arc::new(MulAdd {
                    data: bufs[*buf].clone(),
                    mul: *mul,
                    add: *add,
                    iters: 1,
                    label: format!("n{i:02}"),
                });
                q.submit_kernel(&k, NDRange::d1(BUF_LEN), &wait).unwrap()
            }
            NodeKind::Marker => {
                // Empty wait list: orders after everything pending.
                edges.extend((0..i).map(|p| (p, i)));
                q.submit_marker(&[]).unwrap()
            }
            NodeKind::Barrier => {
                edges.extend((0..i).map(|p| (p, i)));
                edges.extend((i + 1..spec.nodes.len()).map(|l| (i, l)));
                q.submit_barrier(&[]).unwrap()
            }
        };
        events.push(ev);
    }

    // Release the gates; gated commands (and their subgraphs) may only
    // complete after these ticks.
    for (ue, gated_node) in user_events {
        let ev = ue.event();
        edges.push((events.len(), gated_node));
        events.push(ev);
        ue.signal();
    }

    if let Err(e) = q.finish() {
        violations.push(format!("finish failed: {e}"));
    }

    // Oracle 1: bit-exact against the in-order serial reference.
    for (bi, b) in bufs.iter().enumerate() {
        let mut got = vec![0u32; BUF_LEN];
        q.read_buffer(b, 0, &mut got).unwrap();
        if got != reference[bi] {
            let first = got
                .iter()
                .zip(&reference[bi])
                .position(|(g, w)| g != w)
                .unwrap();
            violations.push(format!(
                "buffer {bi} diverged from in-order reference at elem {first}: {} != {}",
                got[first], reference[bi][first]
            ));
        }
    }

    // Oracle 2: completion ticks linearize the event graph, each event
    // completed exactly once.
    violations.extend(check_linearization(&events, &edges));

    // Oracle 3: the TraceLog agrees — one clean launch span per kernel
    // node, and a dependency's execution window never overlaps its
    // dependent's (submit timestamps are host wall-clock on every device;
    // completion wall-clock only on native).
    let trace = q.trace().expect("tracing queue");
    let launches: Vec<_> = trace
        .spans()
        .into_iter()
        .filter(|s| s.kind == SpanKind::Launch)
        .collect();
    for (i, node) in spec.nodes.iter().enumerate() {
        if !matches!(node, NodeKind::Kernel { .. }) {
            continue;
        }
        let label = format!("n{i:02}");
        let spans: Vec<_> = launches.iter().filter(|s| s.label == label).collect();
        match spans.as_slice() {
            [s] if s.ok => {}
            [s] => violations.push(format!("launch span for {label} not ok: {s:?}")),
            other => violations.push(format!(
                "expected exactly one launch span for {label}, got {}",
                other.len()
            )),
        }
    }
    let span_of = |i: usize| {
        let label = format!("n{i:02}");
        launches.iter().find(|s| s.label == label)
    };
    for &(a, b) in &edges {
        if a >= spec.nodes.len() || b >= spec.nodes.len() {
            continue; // user-event side: no launch span
        }
        if let (Some(sa), Some(sb)) = (span_of(a), span_of(b)) {
            if sa.profiling.started_ns > sb.profiling.submitted_ns {
                violations.push(format!(
                    "trace overlap on edge n{a:02} -> n{b:02}: dep started at {} but dependent was submitted at {}",
                    sa.profiling.started_ns, sb.profiling.submitted_ns
                ));
            }
            if native && sa.profiling.completed_ns > sb.profiling.submitted_ns {
                violations.push(format!(
                    "trace overlap on edge n{a:02} -> n{b:02}: dep completed at {} after dependent submit at {}",
                    sa.profiling.completed_ns, sb.profiling.submitted_ns
                ));
            }
        }
    }
    violations
}

fn muladd(buf: &ocl_rt::Buffer<u32>, mul: u32, add: u32, label: &str) -> Arc<dyn Kernel> {
    Arc::new(MulAdd {
        data: buf.clone(),
        mul,
        add,
        iters: 1,
        label: label.to_string(),
    })
}

/// Run one seeded-bug scenario; returns the oracle violations (the bug is
/// caught iff they are nonempty).
fn bug_scenario(bug: SchedBug) -> Vec<String> {
    let ctx = Context::new(Device::native_cpu(2).expect("native device"));
    let mut violations = Vec::new();
    match bug {
        SchedBug::DropEdge | SchedBug::PrematureReady => {
            // A command gated on an unsignalled user event must stay
            // pending; both bugs dispatch it early, inverting the
            // user-event -> command tick order.
            let q = ctx.queue_with(QueueConfig::default().out_of_order(true).sched_bug(bug));
            let buf = ctx.buffer::<u32>(MemFlags::default(), BUF_LEN).unwrap();
            q.write_buffer(&buf, 0, &vec![1u32; BUF_LEN]).unwrap();
            let gate = user_event();
            let ev = q
                .submit_kernel(
                    &muladd(&buf, 3, 7, "gated"),
                    NDRange::d1(BUF_LEN),
                    &[gate.event()],
                )
                .unwrap();
            // Give a buggy scheduler time to (wrongly) run the command.
            let deadline = Instant::now() + Duration::from_secs(2);
            while ev.status() == EventStatus::Pending && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            let gate_ev = gate.event();
            gate.signal();
            if q.finish().is_err() {
                violations.push("finish failed".into());
            }
            violations.extend(check_linearization(&[gate_ev, ev], &[(0, 1)]));
        }
        SchedBug::LostWakeup => {
            // The dependent of the first completion never wakes; the finish
            // watchdog must trip and fail it rather than hang.
            let q = ctx.queue_with(
                QueueConfig::default()
                    .out_of_order(true)
                    .sched_bug(bug)
                    .launch_timeout(Duration::from_millis(500)),
            );
            let buf = ctx.buffer::<u32>(MemFlags::default(), BUF_LEN).unwrap();
            q.write_buffer(&buf, 0, &vec![1u32; BUF_LEN]).unwrap();
            let a = q
                .submit_kernel(&muladd(&buf, 3, 7, "a"), NDRange::d1(BUF_LEN), &[])
                .unwrap();
            let b = q
                .submit_kernel(
                    &muladd(&buf, 5, 11, "b"),
                    NDRange::d1(BUF_LEN),
                    std::slice::from_ref(&a),
                )
                .unwrap();
            match q.finish() {
                Err(ClError::FinishTimedOut { .. }) => {
                    violations.push("finish watchdog tripped on stranded dependent".into());
                }
                Err(e) => violations.push(format!("finish failed: {e}")),
                Ok(()) => {}
            }
            if b.status() == EventStatus::Failed {
                violations.push("dependent stranded by lost wakeup".into());
            }
        }
        SchedBug::DoubleDispatch => {
            let q = ctx.queue_with(QueueConfig::default().out_of_order(true).sched_bug(bug));
            let buf = ctx.buffer::<u32>(MemFlags::default(), BUF_LEN).unwrap();
            q.write_buffer(&buf, 0, &vec![1u32; BUF_LEN]).unwrap();
            let ev = q
                .submit_kernel(&muladd(&buf, 3, 7, "a"), NDRange::d1(BUF_LEN), &[])
                .unwrap();
            if q.finish().is_err() {
                violations.push("finish failed".into());
            }
            violations.extend(check_linearization(&[ev], &[]));
        }
        SchedBug::SkipCommand => {
            let q = ctx.queue_with(
                QueueConfig::default()
                    .out_of_order(true)
                    .sched_bug(bug)
                    .tracing(true),
            );
            let buf = ctx.buffer::<u32>(MemFlags::default(), BUF_LEN).unwrap();
            q.write_buffer(&buf, 0, &vec![1u32; BUF_LEN]).unwrap();
            let _ev = q
                .submit_kernel(&muladd(&buf, 3, 7, "a"), NDRange::d1(BUF_LEN), &[])
                .unwrap();
            if q.finish().is_err() {
                violations.push("finish failed".into());
            }
            let mut got = vec![0u32; BUF_LEN];
            q.read_buffer(&buf, 0, &mut got).unwrap();
            if got != vec![3u32 + 7; BUF_LEN] {
                violations.push("skipped command left the buffer untouched".into());
            }
            let trace = q.trace().expect("tracing queue");
            if !trace.spans().iter().any(|s| s.kind == SpanKind::Launch) {
                violations.push("no launch span recorded for the skipped command".into());
            }
        }
    }
    violations
}

/// Wall-clock a fan of `n` independent narrow commands, in-order vs
/// out-of-order. Each command is one workgroup napping `millis` on its own
/// buffer — a fixed-latency, device-underutilizing command. The in-order
/// queue serializes the naps; the out-of-order queue overlaps them across
/// the pool (a sleeping command costs no CPU, so the overlap is visible
/// even on a single-core CI host): exactly the workload
/// `CL_QUEUE_OUT_OF_ORDER_EXEC_MODE` exists for.
fn wide_dag_seconds(ctx: &Context, n: usize, millis: u64, ooo: bool) -> f64 {
    let cfg = QueueConfig::default().out_of_order(ooo);
    let q = ctx.queue_with(cfg);
    let bufs: Vec<_> = (0..n)
        .map(|_| ctx.buffer::<u32>(MemFlags::default(), 16).unwrap())
        .collect();
    for b in &bufs {
        q.write_buffer(b, 0, &[1u32; 16]).unwrap();
    }
    let kernels: Vec<Arc<dyn Kernel>> = bufs
        .iter()
        .enumerate()
        .map(|(i, b)| {
            Arc::new(Nap {
                data: b.clone(),
                millis,
                label: format!("w{i:02}"),
            }) as Arc<dyn Kernel>
        })
        .collect();
    let range = NDRange::d1(16).local1(16);
    let t0 = Instant::now();
    for k in &kernels {
        q.submit_kernel(k, range, &[]).unwrap();
    }
    q.finish().unwrap();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dags = 60usize;
    let mut bug_reps = 3usize;
    let mut seed = 11u64;
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dags" => {
                i += 1;
                dags = args[i].parse().expect("--dags needs a number");
            }
            "--bug-reps" => {
                i += 1;
                bug_reps = args[i].parse().expect("--bug-reps needs a number");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed needs a number");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--stable" => {}
            "--help" | "-h" => {
                println!(
                    "usage: cl-sched [--dags N] [--bug-reps N] [--seed S] [--out DIR] [--stable]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut failed = false;
    let mut md = String::new();
    let _ = writeln!(md, "# Out-of-order scheduler fuzz (`cl-sched`)\n");
    let _ = writeln!(
        md,
        "Random command DAGs (non-commutative `MulAdd` nodes, explicit wait \
         lists, user events, markers, barriers) replayed through an \
         out-of-order queue on every device config. Oracles per round: \
         bit-exact result vs the in-order serial reference, completion ticks \
         linearize the event graph, every event completes exactly once, and \
         the trace shows one clean launch span per kernel node with \
         non-overlapping dependency windows.\n"
    );

    // ---- Experiment 1: randomized DAG replays --------------------------
    let configs: Vec<(&str, Device, bool)> = vec![
        (
            "native-cpu w=2",
            Device::native_cpu(2).expect("native"),
            true,
        ),
        (
            "native-cpu w=4",
            Device::native_cpu(4).expect("native"),
            true,
        ),
        (
            "modeled-cpu (Xeon E5645)",
            Device::modeled_cpu(CpuSpec::xeon_e5645()),
            false,
        ),
        (
            "modeled-gpu (GTX 580)",
            Device::modeled_gpu(GpuSpec::gtx580()),
            false,
        ),
    ];
    let _ = writeln!(md, "## Randomized DAG replays\n");
    let _ = writeln!(
        md,
        "| Device config | Rounds | Commands | Edges | Violations |"
    );
    let _ = writeln!(md, "|---|---:|---:|---:|---:|");
    let mut total_rounds = 0usize;
    for (name, device, native) in &configs {
        let ctx = Context::new(device.clone());
        let mut rng = XorShift::seed_from_u64(seed);
        let (mut n_cmds, mut n_edges, mut n_viol) = (0usize, 0usize, 0usize);
        for round in 0..dags {
            let spec = gen_dag(&mut rng);
            n_cmds += spec.nodes.len();
            n_edges += spec.explicit.len() + spec.gated.len();
            let violations = replay_dag(&ctx, &spec, *native);
            if !violations.is_empty() {
                n_viol += violations.len();
                failed = true;
                eprintln!("FAIL [{name}] round {round}:");
                for v in &violations {
                    eprintln!("  {v}");
                }
            }
            total_rounds += 1;
        }
        println!(
            "replay [{name}]: {dags} rounds, {n_cmds} commands, {} violations",
            n_viol
        );
        let _ = writeln!(md, "| {name} | {dags} | {n_cmds} | {n_edges} | {n_viol} |");
    }
    let _ = writeln!(md);
    println!("total replays: {total_rounds}");

    // ---- Experiment 2: seeded-bug sweep --------------------------------
    let _ = writeln!(md, "## Seeded-bug sweep\n");
    let _ = writeln!(
        md,
        "Each defect is armed via `QueueConfig::sched_bug` in a targeted \
         scenario; the oracle must catch it every repetition.\n"
    );
    let _ = writeln!(md, "| Seeded bug | Scenario | Caught |");
    let _ = writeln!(md, "|---|---|---:|");
    for bug in SchedBug::ALL {
        let scenario = match bug {
            SchedBug::DropEdge | SchedBug::PrematureReady => {
                "command gated on an unsignalled user event"
            }
            SchedBug::LostWakeup => "two-command chain, finish watchdog armed",
            SchedBug::DoubleDispatch => "single command, completion count oracle",
            SchedBug::SkipCommand => "single command, bit-exactness + trace oracle",
        };
        let mut caught = 0usize;
        for _ in 0..bug_reps {
            if !bug_scenario(bug).is_empty() {
                caught += 1;
            }
        }
        println!("bug [{}]: caught {caught}/{bug_reps}", bug.name());
        let _ = writeln!(
            md,
            "| `{}` | {scenario} | {caught}/{bug_reps} |",
            bug.name()
        );
        if caught != bug_reps {
            failed = true;
            eprintln!("FAIL: seeded bug {} escaped the oracle", bug.name());
        }
    }
    let _ = writeln!(md);

    // ---- Experiment 3: wide-DAG overlap --------------------------------
    let ctx = Context::new(Device::native_cpu(4).expect("native"));
    let (n, millis) = (24usize, 10u64);
    let t_in = wide_dag_seconds(&ctx, n, millis, false);
    let t_ooo = wide_dag_seconds(&ctx, n, millis, true);
    let speedup = t_in / t_ooo.max(1e-12);
    println!(
        "wide DAG ({n} independent single-group {millis}ms commands): \
         in-order {:.3} ms, out-of-order {:.3} ms, speedup {speedup:.2}x",
        t_in * 1e3,
        t_ooo * 1e3
    );
    let _ = writeln!(md, "## Wide-DAG overlap\n");
    let _ = writeln!(
        md,
        "A fan of {n} provably independent single-group fixed-latency commands ({millis} ms each) is \
         replayed through an in-order and an out-of-order queue on the native \
         device. Wall-clock numbers are intentionally not recorded here (this \
         report is drift-tracked); the gated measurement is \
         `sched/dag-throughput` in `cl-bench`, which must show the \
         out-of-order queue ahead of the in-order baseline.\n"
    );

    let _ = writeln!(
        md,
        "Verdict: **{}** — {} replay rounds across {} device configs.",
        if failed { "FAIL" } else { "PASS" },
        total_rounds,
        configs.len()
    );

    fs::create_dir_all(&out_dir).expect("create out dir");
    let path = out_dir.join("sched.md");
    fs::write(&path, &md).expect("write sched.md");
    println!("wrote {}", path.display());

    if failed {
        std::process::exit(1);
    }
}
