//! Integrity of every generated figure: rectangular series, consistent
//! x-labels, sane values, and renderer round-trips — so `repro` output can
//! be consumed mechanically (plotting scripts, CI diffs).

use cl_harness::{all_figures, Config};

fn figures() -> Vec<cl_harness::Figure> {
    all_figures(&Config::default())
}

#[test]
fn every_figure_has_series_and_points() {
    for fig in figures() {
        assert!(!fig.series.is_empty(), "{}: no series", fig.id);
        for s in &fig.series {
            assert!(!s.points.is_empty(), "{}/{}: empty series", fig.id, s.label);
        }
    }
}

#[test]
fn values_are_finite_and_positive() {
    for fig in figures() {
        for s in &fig.series {
            for (x, v) in &s.points {
                assert!(
                    v.is_finite() && *v >= 0.0,
                    "{}/{}/{x}: bad value {v}",
                    fig.id,
                    s.label
                );
            }
        }
    }
}

#[test]
fn x_labels_are_consistent_within_device_planes() {
    // Within one figure, series of the same device plane must share the
    // x-label set (the bars of one chart).
    for fig in figures() {
        let first = &fig.series[0];
        for s in &fig.series {
            if s.label.contains("GPU") != first.label.contains("GPU") {
                continue;
            }
            if s.points.len() == first.points.len() {
                for ((xa, _), (xb, _)) in s.points.iter().zip(&first.points) {
                    assert_eq!(xa, xb, "{}: {} vs {}", fig.id, s.label, first.label);
                }
            }
        }
    }
}

#[test]
fn markdown_contains_every_series_and_csv_every_point() {
    for fig in figures() {
        let md = fig.to_markdown();
        for s in &fig.series {
            assert!(
                md.contains(&s.label),
                "{}: markdown misses {}",
                fig.id,
                s.label
            );
        }
        let csv = fig.to_csv();
        let expected_rows: usize = fig.series.iter().map(|s| s.points.len()).sum();
        assert_eq!(
            csv.lines().count(),
            expected_rows + 1,
            "{}: csv row count",
            fig.id
        );
    }
}

#[test]
fn figure_ids_are_unique_and_ordered() {
    let ids: Vec<String> = figures().into_iter().map(|f| f.id).collect();
    let expected: Vec<String> = (1..=11).map(|i| format!("fig{i}")).collect();
    assert_eq!(ids, expected);
}

#[test]
fn quick_and_full_modes_agree_on_every_qualitative_shape() {
    // The full-size run is slower but must tell the same story.
    let quick = all_figures(&Config::default());
    let full = all_figures(&Config::full());
    for (q, f) in quick.iter().zip(&full) {
        assert_eq!(q.id, f.id);
        assert_eq!(q.series.len(), f.series.len(), "{}", q.id);
    }
    // Spot-check the headline claims in full mode.
    let fig1 = &full[0];
    for (x, v) in &fig1.series("1000(CPU)").unwrap().points {
        assert!(*v > 1.0, "full fig1 {x}: {v}");
    }
    let fig9 = &full[8];
    let mis = fig9
        .series("modeled (cache-sim)")
        .unwrap()
        .get("misaligned")
        .unwrap();
    assert!(mis > 1.05, "full fig9: {mis}");
}
