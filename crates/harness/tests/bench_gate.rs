//! End-to-end tests for the `cl-bench` performance gate binary.
//!
//! The synthetic tests drive `--gate-only` with hand-built reports, so the
//! pass/fail contract is pinned without measurement noise. The real-run
//! test measures the fast suite once, records it as a baseline, then
//! replays the same run through the gate — clean (must pass) and with a
//! seeded 50x regression (must exit nonzero).

use std::path::PathBuf;
use std::process::{Command, Output};

use cl_harness::bench::{BenchRecord, BenchStats, Report};

fn bench_bin() -> &'static str {
    env!("CARGO_BIN_EXE_cl-bench")
}

/// A scratch directory unique to this test, wiped on entry.
fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("bench_gate_{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bench_bin())
        .args(args)
        .output()
        .expect("spawn cl-bench")
}

fn report_with(median: f64, mad: f64) -> Report {
    Report::new(
        1,
        vec![BenchRecord {
            name: "synthetic/one".into(),
            unit: "ns/op".into(),
            stats: BenchStats {
                median,
                mad,
                min: median * 0.9,
                samples: 20,
            },
        }],
    )
}

fn write_report(dir: &std::path::Path, name: &str, r: &Report) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, r.to_json()).expect("write report");
    path
}

#[test]
fn gate_fails_on_clear_regression() {
    let dir = scratch("regression");
    // Median 100µs with tight MAD; current run is 3x slower — far beyond
    // max(abs floor 25µs, 50% rel floor, 6*MAD).
    let base = write_report(&dir, "base.json", &report_with(100_000.0, 500.0));
    let cur = write_report(&dir, "cur.json", &report_with(300_000.0, 500.0));
    let out = run(&[
        "--gate-only",
        cur.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "verdict table: {stdout}");
}

#[test]
fn gate_passes_improvement_and_noise() {
    let dir = scratch("pass");
    let base = write_report(&dir, "base.json", &report_with(100_000.0, 4_000.0));
    // Faster is never a regression.
    let faster = write_report(&dir, "faster.json", &report_with(60_000.0, 4_000.0));
    // 20µs slower, but within 6 * 4µs MAD (and within the 50% rel floor).
    let noisy = write_report(&dir, "noisy.json", &report_with(120_000.0, 4_000.0));
    for cur in [&faster, &noisy] {
        let out = run(&[
            "--gate-only",
            cur.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}: {}",
            cur.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn missing_baseline_is_not_an_error() {
    let dir = scratch("nobase");
    let cur = write_report(&dir, "cur.json", &report_with(100_000.0, 500.0));
    let out = run(&[
        "--gate-only",
        cur.to_str().unwrap(),
        "--baseline",
        dir.join("absent.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no baseline"));
}

#[test]
fn real_run_roundtrip_and_seeded_regression() {
    let dir = scratch("real");
    let baseline = dir.join("baseline.json");
    let run_file = dir.join("run.json");

    // One real (fast-profile) measurement, recorded as the baseline.
    let out = run(&[
        "--fast",
        "--workers",
        "1",
        "--out",
        run_file.to_str().unwrap(),
        "--record-baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "suite run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // BENCH.json round-trips through the reader and covers the suite.
    let text = std::fs::read_to_string(&run_file).expect("read run file");
    let report = Report::from_json(&text).expect("parse run file");
    assert_eq!(report.workers, 1);
    for name in [
        "enqueue/empty-1g",
        "dispatch/wg64",
        "pool/steal",
        "transfer/copy-4MiB",
        "overhead/trace-off",
        "overhead/flow-off",
    ] {
        let b = report
            .find(name)
            .unwrap_or_else(|| panic!("missing {name}"));
        assert!(b.stats.median > 0.0, "{name}: non-positive median");
        assert!(b.stats.samples > 0, "{name}: no samples");
    }

    // The identical run gates clean against its own baseline...
    let clean = run(&[
        "--gate-only",
        run_file.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "self-gate failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // ...and a seeded 50x regression on the same data must be caught.
    let seeded = run(&[
        "--gate-only",
        run_file.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--inject-regression",
        "50",
    ]);
    assert_eq!(
        seeded.status.code(),
        Some(1),
        "seeded regression not caught"
    );
    assert!(String::from_utf8_lossy(&seeded.stdout).contains("REGRESSED"));
}
