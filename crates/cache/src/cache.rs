//! A single set-associative cache level with true-LRU replacement.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways >= 1, "need at least one way");
        assert!(
            self.size_bytes.is_multiple_of(self.ways * self.line_bytes) && self.sets() >= 1,
            "size must be a whole number of sets"
        );
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch (true LRU).
    last_use: u64,
}

/// One cache level. Addresses are byte addresses; lookups operate on lines.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets × ways, row-major by set
    tick: u64,
    sets: u64,
    line_shift: u32,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Cache {
            lines: vec![Line::default(); cfg.sets() * cfg.ways],
            tick: 0,
            sets: cfg.sets() as u64,
            line_shift: cfg.line_bytes.trailing_zeros(),
            cfg,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        // Modulo indexing supports non-power-of-two set counts (e.g. the
        // 12 MB Xeon L3); the tag is the full line address, which is always
        // unambiguous.
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % self.sets) as usize;
        (set, line_addr)
    }

    /// Look up `addr`; on miss, fill the line (evicting LRU). Returns `true`
    /// on hit.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        for line in ways.iter_mut() {
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;

        // Fill: pick an invalid way, else the LRU way.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("ways >= 1");
        let v = &mut ways[victim];
        if v.valid {
            self.evictions += 1;
            if v.dirty {
                self.writebacks += 1;
            }
        }
        *v = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: self.tick,
        };
        false
    }

    /// Whether `addr`'s line is currently resident (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Drop all contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 16B lines = 64 B.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x108, false)); // same 16B line
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets*line = 32 B).
        c.access(0, false); // A (line 0, set 0)
        c.access(2 * 32, false); // B (set 0, different tag)
        c.access(0, false); // touch A -> B is now LRU
        c.access(4 * 32, false); // C evicts B
        assert!(c.probe(0));
        assert!(!c.probe(2 * 32));
        assert!(c.probe(4 * 32));
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = tiny();
        c.access(0, true); // dirty A in set 0
        c.access(32, false); // B set 0
        c.access(64, false); // evicts A (LRU) -> writeback
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = tiny();
        c.access(0, false); // set 0
        c.access(16, false); // set 1
        assert!(c.probe(0));
        assert!(c.probe(16));
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny();
        // 8 distinct lines > 4-line capacity, round-robin: all misses on
        // second pass too (LRU worst case).
        for _ in 0..2 {
            for i in 0..8u64 {
                c.access(i * 16, false);
            }
        }
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 16);
    }

    #[test]
    fn working_set_within_capacity_hits_on_repass() {
        let mut c = tiny();
        for _ in 0..2 {
            for i in 0..4u64 {
                c.access(i * 16, false);
            }
        }
        assert_eq!(c.misses, 4);
        assert_eq!(c.hits, 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.misses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 60,
            ways: 2,
            line_bytes: 15,
        });
    }

    #[test]
    fn geometry_reports_sets() {
        let cfg = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        assert_eq!(cfg.sets(), 64);
    }
}
