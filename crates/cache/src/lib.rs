//! # cache-sim — a set-associative multi-level cache hierarchy simulator
//!
//! Substrate for the paper's locality/affinity experiment (Section III-E,
//! Figure 9): when a second kernel's work is *misaligned* with the cores
//! that produced its input, private-cache reuse is lost and the run slows
//! down by ~15%. The wall-clock version of that experiment runs on real
//! hardware via `cl-pool` pinning; this simulator provides the
//! deterministic, machine-independent version and the per-core miss counts
//! that explain the slowdown.
//!
//! The model: per-core private L1 and L2, one shared L3, all set-associative
//! with true-LRU replacement, write-allocate, and a
//! non-inclusive-non-exclusive fill policy (a miss fills every level on the
//! way in; evictions are independent per level). Latencies are configurable
//! per level so experiments can convert hit/miss profiles into cycles.
//!
//! ```
//! use cache_sim::{CacheConfig, Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::xeon_e5645(4));
//! h.access(0, 0x1000, false);          // cold miss
//! let r = h.access(0, 0x1008, false);  // same 64B line: L1 hit
//! assert_eq!(r, cache_sim::HitLevel::L1);
//! ```

mod cache;
mod hierarchy;
mod pattern;
mod prefetch;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats, HitLevel, LevelLatencies};
pub use pattern::{strided_addresses, ArrayWalk};
pub use prefetch::NextLinePrefetcher;
