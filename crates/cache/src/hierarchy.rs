//! Multi-core hierarchy: private L1/L2 per core, shared L3.

use crate::cache::{Cache, CacheConfig};

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    L1,
    L2,
    L3,
    Memory,
}

/// Load-to-use latency of each level, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelLatencies {
    pub l1: f64,
    pub l2: f64,
    pub l3: f64,
    pub memory: f64,
}

impl Default for LevelLatencies {
    fn default() -> Self {
        // Westmere-class numbers (Xeon E5645 era).
        LevelLatencies {
            l1: 4.0,
            l2: 10.0,
            l3: 40.0,
            memory: 200.0,
        }
    }
}

/// Hierarchy geometry.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    pub cores: usize,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub l3: CacheConfig,
    pub latencies: LevelLatencies,
}

impl HierarchyConfig {
    /// The paper's CPU (Table I): L1D/L2/L3 = 64K/256K/12M, 64-byte lines.
    pub fn xeon_e5645(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l3: CacheConfig {
                size_bytes: 12 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            latencies: LevelLatencies::default(),
        }
    }

    /// A deliberately tiny hierarchy for fast unit tests.
    pub fn tiny(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 2048,
                ways: 4,
                line_bytes: 64,
            },
            l3: CacheConfig {
                size_bytes: 8192,
                ways: 4,
                line_bytes: 64,
            },
            latencies: LevelLatencies::default(),
        }
    }
}

/// Per-core hit/miss profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub l3_hits: u64,
    pub memory_accesses: u64,
}

impl HierarchyStats {
    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.memory_accesses
    }

    /// Sum of access latencies under `lat`, in cycles.
    pub fn cycles(&self, lat: &LevelLatencies) -> f64 {
        self.l1_hits as f64 * lat.l1
            + self.l2_hits as f64 * lat.l2
            + self.l3_hits as f64 * lat.l3
            + self.memory_accesses as f64 * lat.memory
    }

    /// Counter-wise `self - earlier` (for windowed measurements).
    pub fn delta_since_stats(&self, earlier: &HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1_hits: self.l1_hits - earlier.l1_hits,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l3_hits: self.l3_hits - earlier.l3_hits,
            memory_accesses: self.memory_accesses - earlier.memory_accesses,
        }
    }

    fn merge(&mut self, other: &HierarchyStats) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.l3_hits += other.l3_hits;
        self.memory_accesses += other.memory_accesses;
    }
}

/// The simulated hierarchy. Not thread-safe by design — experiments replay
/// access traces deterministically on one thread.
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    per_core: Vec<HierarchyStats>,
}

impl Hierarchy {
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores >= 1, "need at least one core");
        Hierarchy {
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect(),
            l3: Cache::new(cfg.l3),
            per_core: vec![HierarchyStats::default(); cfg.cores],
            cfg,
        }
    }

    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// One access by `core` to byte address `addr`. Fills all levels on the
    /// way in (NINE policy) and returns the level that served the access.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> HitLevel {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let stats = &mut self.per_core[core];
        if self.l1[core].access(addr, is_write) {
            stats.l1_hits += 1;
            return HitLevel::L1;
        }
        if self.l2[core].access(addr, is_write) {
            stats.l2_hits += 1;
            return HitLevel::L2;
        }
        if self.l3.access(addr, is_write) {
            stats.l3_hits += 1;
            return HitLevel::L3;
        }
        stats.memory_accesses += 1;
        HitLevel::Memory
    }

    /// Per-core profile.
    pub fn core_stats(&self, core: usize) -> HierarchyStats {
        self.per_core[core]
    }

    /// Profile summed over all cores.
    pub fn total_stats(&self) -> HierarchyStats {
        let mut t = HierarchyStats::default();
        for s in &self.per_core {
            t.merge(s);
        }
        t
    }

    /// Average memory-access latency in cycles over everything recorded.
    pub fn amat(&self) -> f64 {
        let t = self.total_stats();
        if t.total() == 0 {
            0.0
        } else {
            t.cycles(&self.cfg.latencies) / t.total() as f64
        }
    }

    /// Clear contents and statistics (e.g. between experiment phases).
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.reset();
        }
        for c in &mut self.l2 {
            c.reset();
        }
        self.l3.reset();
        self.per_core.fill(HierarchyStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_path_promotes_to_private_caches() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny(2));
        assert_eq!(h.access(0, 0x1000, false), HitLevel::Memory);
        assert_eq!(h.access(0, 0x1000, false), HitLevel::L1);
    }

    #[test]
    fn shared_l3_serves_other_core() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny(2));
        h.access(0, 0x2000, true); // core 0 brings the line in everywhere
                                   // Core 1 misses its private caches but hits the shared L3.
        assert_eq!(h.access(1, 0x2000, false), HitLevel::L3);
        // And now it is resident in core 1's L1 too.
        assert_eq!(h.access(1, 0x2000, false), HitLevel::L1);
    }

    #[test]
    fn private_caches_do_not_leak_across_cores() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny(4));
        h.access(2, 0x40, false);
        let s3 = h.core_stats(3);
        assert_eq!(s3.total(), 0);
    }

    #[test]
    fn l1_capacity_spill_hits_l2() {
        let cfg = HierarchyConfig::tiny(1); // L1 512B = 8 lines, L2 2KB = 32 lines
        let mut h = Hierarchy::new(cfg);
        // Touch 16 lines: fits L2, thrashes L1.
        for i in 0..16u64 {
            h.access(0, i * 64, false);
        }
        h.core_stats(0);
        // Second pass: L1 thrashes (round robin over 2-way 4-set? lines map
        // across sets) — at minimum, some L2 hits must appear.
        for i in 0..16u64 {
            h.access(0, i * 64, false);
        }
        let s = h.core_stats(0);
        assert!(s.l2_hits > 0, "{s:?}");
        assert_eq!(s.memory_accesses, 16, "only the cold pass misses to memory");
    }

    #[test]
    fn amat_reflects_locality() {
        let mut good = Hierarchy::new(HierarchyConfig::tiny(1));
        for _ in 0..100 {
            good.access(0, 0, false);
        }
        let mut bad = Hierarchy::new(HierarchyConfig::tiny(1));
        for i in 0..100u64 {
            bad.access(0, i * 4096, false);
        }
        assert!(good.amat() < bad.amat());
    }

    #[test]
    fn stats_cycles_matches_hand_count() {
        let lat = LevelLatencies {
            l1: 1.0,
            l2: 10.0,
            l3: 100.0,
            memory: 1000.0,
        };
        let s = HierarchyStats {
            l1_hits: 5,
            l2_hits: 4,
            l3_hits: 3,
            memory_accesses: 2,
        };
        assert_eq!(s.cycles(&lat), 5.0 + 40.0 + 300.0 + 2000.0);
        assert_eq!(s.total(), 14);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny(1));
        h.access(0, 0, false);
        h.reset();
        assert_eq!(h.total_stats().total(), 0);
        assert_eq!(h.access(0, 0, false), HitLevel::Memory);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut h = Hierarchy::new(HierarchyConfig::tiny(1));
        h.access(1, 0, false);
    }

    #[test]
    fn xeon_preset_has_paper_geometry() {
        let cfg = HierarchyConfig::xeon_e5645(6);
        assert_eq!(cfg.l1.size_bytes, 64 * 1024);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.l3.size_bytes, 12 * 1024 * 1024);
    }
}
