//! A next-line hardware prefetcher, composable with the hierarchy.
//!
//! The Westmere-class machine of Table I ships stream prefetchers that hide
//! much of the sequential-walk miss cost; replaying kernels with and
//! without prefetch brackets the locality effects the affinity experiment
//! measures.

use crate::hierarchy::{Hierarchy, HitLevel};

/// Wraps a [`Hierarchy`] and issues a next-line prefetch after every
/// demand access that hits a new cache line (tagless sequential stream
/// detection — the simplest real prefetcher design).
pub struct NextLinePrefetcher {
    inner: Hierarchy,
    line_bytes: u64,
    /// Lines brought in by prefetch (per run).
    pub prefetches: u64,
    /// Demand accesses that found their line prefetched (already resident).
    pub prefetch_hits: u64,
    last_line: Vec<Option<u64>>,
}

impl NextLinePrefetcher {
    pub fn new(inner: Hierarchy) -> Self {
        let cores = inner.config().cores;
        let line_bytes = inner.config().l1.line_bytes as u64;
        NextLinePrefetcher {
            inner,
            line_bytes,
            prefetches: 0,
            prefetch_hits: 0,
            last_line: vec![None; cores],
        }
    }

    /// Demand access; triggers a next-line prefetch when the access crosses
    /// into a new line adjacent to the previous one (an ascending stream).
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> HitLevel {
        let line = addr / self.line_bytes;
        let level = self.inner.access(core, addr, is_write);
        let streaming = self.last_line[core] == Some(line.wrapping_sub(1));
        if self.last_line[core] != Some(line) {
            if level == HitLevel::L1 && streaming {
                self.prefetch_hits += 1;
            }
            if streaming || self.last_line[core].is_none() {
                // Prefetch the next line into this core's caches.
                self.inner.access(core, (line + 1) * self.line_bytes, false);
                self.prefetches += 1;
            }
            self.last_line[core] = Some(line);
        }
        level
    }

    /// The wrapped hierarchy (stats include prefetch fills).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;

    #[test]
    fn sequential_walk_gets_prefetched() {
        let mut p = NextLinePrefetcher::new(Hierarchy::new(HierarchyConfig::tiny(1)));
        // Walk 32 lines sequentially, element by element.
        let mut demand_memory = 0;
        for i in 0..(32 * 16) as u64 {
            if p.access(0, i * 4, false) == HitLevel::Memory {
                demand_memory += 1;
            }
        }
        // Only the first line misses to memory on the demand path; the
        // prefetcher runs ahead of every later line.
        assert_eq!(demand_memory, 1, "prefetcher should hide the stream");
        assert!(p.prefetches >= 31);
        assert!(p.prefetch_hits >= 30, "{}", p.prefetch_hits);
    }

    #[test]
    fn random_walk_is_not_prefetched() {
        let mut p = NextLinePrefetcher::new(Hierarchy::new(HierarchyConfig::tiny(1)));
        let mut misses = 0;
        // Strided far apart: no adjacent-line streams.
        for i in 0..64u64 {
            if p.access(0, i * 4096, false) == HitLevel::Memory {
                misses += 1;
            }
        }
        assert!(misses >= 60, "random walk must keep missing, got {misses}");
    }

    #[test]
    fn per_core_streams_are_independent() {
        let mut p = NextLinePrefetcher::new(Hierarchy::new(HierarchyConfig::tiny(2)));
        // Interleave two sequential streams on two cores.
        for i in 0..(8 * 16) as u64 {
            p.access(0, i * 4, false);
            p.access(1, 1 << 20 | (i * 4), false);
        }
        // Stats include the prefetch fills themselves (~one per line);
        // the demand path must be almost entirely L1 hits.
        let s0 = p.hierarchy().core_stats(0);
        let s1 = p.hierarchy().core_stats(1);
        assert!(s0.memory_accesses <= 10, "{s0:?}");
        assert!(s1.memory_accesses <= 10, "{s1:?}");
        assert!(s0.l1_hits > 100, "{s0:?}");
        assert!(s1.l1_hits > 100, "{s1:?}");
    }
}
