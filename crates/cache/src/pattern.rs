//! Address-pattern generators for replaying kernel access traces.

/// Byte addresses of a strided walk: `base + i*stride` for `i in 0..count`.
pub fn strided_addresses(base: u64, stride: u64, count: usize) -> impl Iterator<Item = u64> {
    (0..count as u64).map(move |i| base + i * stride)
}

/// A typed view of an array walk: iterating elements of `elem_bytes` bytes
/// over an index range, as a kernel touching `a[i]` would.
#[derive(Debug, Clone, Copy)]
pub struct ArrayWalk {
    /// Byte address where element 0 lives.
    pub base: u64,
    /// Size of one element in bytes.
    pub elem_bytes: u64,
}

impl ArrayWalk {
    pub fn new(base: u64, elem_bytes: u64) -> Self {
        ArrayWalk { base, elem_bytes }
    }

    /// Byte address of element `i`.
    pub fn addr(&self, i: usize) -> u64 {
        self.base + i as u64 * self.elem_bytes
    }

    /// Addresses of elements `range`, in order.
    pub fn range(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = u64> + '_ {
        range.map(move |i| self.addr(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_walk_generates_expected_addresses() {
        let v: Vec<u64> = strided_addresses(100, 8, 4).collect();
        assert_eq!(v, vec![100, 108, 116, 124]);
    }

    #[test]
    fn array_walk_addresses_elements() {
        let w = ArrayWalk::new(0x1000, 4);
        assert_eq!(w.addr(0), 0x1000);
        assert_eq!(w.addr(3), 0x100C);
        let v: Vec<u64> = w.range(2..4).collect();
        assert_eq!(v, vec![0x1008, 0x100C]);
    }
}
