//! Bounded retry with jittered exponential backoff.
//!
//! The jitter scheme is *monotone by construction*: attempt `k`'s raw delay
//! is `base · 2^k` (uncapped), and the jittered delay is drawn from
//! `[raw/2, raw)`. Consecutive intervals touch — attempt `k`'s maximum is
//! attempt `k+1`'s minimum — so the delay sequence is non-decreasing in the
//! attempt number for *any* RNG stream, while still decorrelating tenants
//! that back off together. The cap is applied after jitter, so the sequence
//! plateaus at `cap` instead of oscillating below it.

use std::time::Duration;

use cl_util::XorShift;

/// Retry budget and backoff shape for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Delay scale for attempt 0; attempt `k` is centered on `base · 2^k`.
    pub base: Duration,
    /// Hard ceiling on any single delay.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (backoff delays still computable).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The jittered delay for `attempt` (0-based), drawn from `rng`.
    ///
    /// `min(cap, base · 2^attempt · (0.5 + 0.5·u))` with `u ∈ [0, 1)` —
    /// monotone non-decreasing in `attempt`, capped at `cap`, and
    /// deterministic for a given RNG stream (see module docs).
    pub fn delay(&self, attempt: u32, rng: &mut XorShift) -> Duration {
        let base = self.base.as_nanos().min(u64::MAX as u128) as u64;
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let raw = base.saturating_mul(factor);
        let jittered = (raw as f64) * (0.5 + 0.5 * rng.next_f64());
        let cap = self.cap.as_nanos().min(u64::MAX as u128) as u64;
        // f64→u64 saturates on overflow, so huge attempts land on `cap`.
        Duration::from_nanos((jittered as u64).min(cap))
    }
}

/// Stateful helper walking a [`RetryPolicy`]'s delay sequence.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: XorShift,
    attempt: u32,
}

impl Backoff {
    /// Start a backoff sequence; `seed` fixes the jitter stream.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Backoff {
            policy,
            rng: XorShift::seed_from_u64(seed),
            attempt: 0,
        }
    }

    /// The next delay, or `None` once the retry budget is spent.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        let d = self.policy.delay(self.attempt, &mut self.rng);
        self.attempt += 1;
        Some(d)
    }

    /// Retries consumed so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_monotone_and_capped() {
        let p = RetryPolicy {
            max_retries: 16,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(10),
        };
        for seed in 0..32 {
            let mut rng = XorShift::seed_from_u64(seed);
            let mut prev = Duration::ZERO;
            for attempt in 0..40 {
                let d = p.delay(attempt, &mut rng);
                assert!(d >= prev, "seed {seed} attempt {attempt}: {d:?} < {prev:?}");
                assert!(d <= p.cap);
                prev = d;
            }
            assert_eq!(prev, p.cap, "sequence plateaus at the cap");
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a: Vec<_> = std::iter::from_fn({
            let mut b = Backoff::new(p.clone(), 7);
            move || b.next_delay()
        })
        .collect();
        let b: Vec<_> = std::iter::from_fn({
            let mut b = Backoff::new(p.clone(), 7);
            move || b.next_delay()
        })
        .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), p.max_retries as usize);
        assert_eq!(Backoff::new(RetryPolicy::none(), 7).next_delay(), None);
    }
}
