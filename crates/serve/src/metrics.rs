//! Per-tenant serving statistics: admission/fault counters plus a bounded
//! latency reservoir feeding the p50/p99 columns of `results/serve.md`.

use std::sync::atomic::{AtomicU64, Ordering};

use cl_util::sync::Mutex;

/// Latency samples kept per tenant. Load runs are far smaller than this;
/// the cap only bounds memory on pathological soaks.
const MAX_SAMPLES: usize = 1 << 16;

/// Live counters for one tenant. All increments are relaxed: the fields are
/// statistics, not synchronization.
#[derive(Default)]
pub struct TenantStats {
    pub(crate) launches: AtomicU64,
    pub(crate) transfers: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) faults: AtomicU64,
    pub(crate) backpressure: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) rejected_evicted: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
}

impl TenantStats {
    pub(crate) fn record_latency(&self, ns: u64) {
        let mut l = self.latencies_ns.lock();
        if l.len() < MAX_SAMPLES {
            l.push(ns);
        }
    }

    /// A point-in-time copy with percentiles computed.
    pub fn snapshot(&self) -> StatsSnapshot {
        let lat = self.latencies_ns.lock();
        let mut sorted = lat.clone();
        drop(lat);
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            sorted[((sorted.len() - 1) as f64 * q).round() as usize]
        };
        StatsSnapshot {
            launches: self.launches.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            backpressure: self.backpressure.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rejected_evicted: self.rejected_evicted.load(Ordering::Relaxed),
            samples: sorted.len(),
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            max_ns: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// A point-in-time view of one tenant's [`TenantStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successful kernel launches.
    pub launches: u64,
    /// Successful transfer/map commands.
    pub transfers: u64,
    /// Payload bytes moved by successful transfers/maps.
    pub bytes: u64,
    /// Kernel faults (panic or watchdog timeout) on this handle.
    pub faults: u64,
    /// Commands refused at admission (quota exceeded).
    pub backpressure: u64,
    /// Launches shed by the gate under overload (also counted as refused).
    pub shed: u64,
    /// Retries performed by `launch_with_retry`.
    pub retries: u64,
    /// Commands refused because the tenant was evicted.
    pub rejected_evicted: u64,
    /// Latency samples recorded.
    pub samples: usize,
    /// Median launch latency (event queued→completed), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile launch latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst launch latency, nanoseconds.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_reservoir() {
        let s = TenantStats::default();
        for ns in 1..=100u64 {
            s.record_latency(ns);
        }
        let snap = s.snapshot();
        assert_eq!(snap.samples, 100);
        assert_eq!(snap.p50_ns, 51); // nearest-rank on 0-based index
        assert_eq!(snap.p99_ns, 99);
        assert_eq!(snap.max_ns, 100);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = TenantStats::default().snapshot();
        assert_eq!(snap, StatsSnapshot::default());
    }
}
