//! # cl-serve — multi-tenant serving layer over the runtime
//!
//! The paper measures OpenCL one benchmark at a time; a production runtime
//! serves many independent clients over one machine. This crate is the
//! in-process front-end for that: N clients each own a [`Tenant`] handle
//! (its own `Context` + `CommandQueue` + quotas) over one shared
//! [`ocl_rt::Device`] and its `cl_pool::ThreadPool`.
//!
//! Guarantees, in order of the overload story:
//!
//! 1. **Admission control** — every tenant command first passes per-tenant
//!    in-flight and pending-byte quotas. Over quota, the command is refused
//!    with [`ClError::Backpressure`] carrying a `retry_after` hint; nothing
//!    queues unboundedly.
//! 2. **Weighted fairness** — kernel launches (the only commands that
//!    occupy pool workers) pass a [`WeightedGate`]: a fixed number of
//!    execution slots handed out by deficit weighted round-robin across
//!    tenants, so a flooding tenant cannot monopolize workers.
//! 3. **Graceful degradation** — when the gate's waiting room is full, load
//!    is shed deterministically: the newest waiter of the lowest-weight
//!    lane goes first, and an arrival that *is* the newest lowest-weight
//!    work is rejected outright. Shed work fails with `Backpressure`,
//!    everyone else's p99 stays bounded.
//! 4. **Fault isolation** — panic/timeout containment (PR 2) is scoped per
//!    tenant: a tenant whose kernel panics or stalls gets the error on its
//!    own handle; the pool self-heals and other tenants' enqueues proceed.
//!    A configurable consecutive-fault budget auto-evicts abusive tenants
//!    ([`ClError::TenantEvicted`]).
//! 5. **Retry/backoff** — [`Tenant::launch_with_retry`] retries transient
//!    failures (backpressure, device-unavailable) a bounded number of times
//!    with jittered exponential backoff ([`RetryPolicy`]), deterministic
//!    under the tenant's seeded RNG.
//!
//! Knobs come from [`TenantConfig`] / [`ServeConfig`], each with a
//! `CL_SERVE_*` environment override (see the README table).

mod backoff;
mod config;
mod fair;
mod metrics;
mod server;
mod tenant;

pub use backoff::{Backoff, RetryPolicy};
pub use config::{ServeConfig, TenantConfig};
pub use fair::{AcquireError, SlotGuard, WeightedGate};
pub use metrics::{StatsSnapshot, TenantStats};
pub use server::Server;
pub use tenant::{is_transient, Tenant};

// Re-export the error type tenants surface, so harnesses can match on
// `cl_serve::ClError` without naming the runtime crate.
pub use ocl_rt::ClError;
