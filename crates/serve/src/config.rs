//! Serving-layer configuration: per-tenant and per-server knobs, each with a
//! `CL_SERVE_*` environment override (documented in the README table).

use std::time::Duration;

use crate::backoff::RetryPolicy;

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Per-tenant quotas, weight, and retry policy.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Label used in reports; defaults to `tenant-<id>`.
    pub name: Option<String>,
    /// Fairness weight (≥ 1): slots granted per WRR round.
    pub weight: u32,
    /// Admission quota: concurrent commands in flight on this handle.
    pub max_inflight: usize,
    /// Admission quota: bytes of transfer/map payload in flight.
    pub max_pending_bytes: usize,
    /// Bounded-retry policy for [`crate::Tenant::launch_with_retry`].
    pub retry: RetryPolicy,
    /// Auto-evict after this many *consecutive* kernel faults
    /// (panic/timeout). `None` disables auto-eviction.
    pub fault_budget: Option<u32>,
    /// Launch watchdog for the tenant's queue; `None` falls back to
    /// [`ServeConfig::launch_timeout`].
    pub launch_timeout: Option<Duration>,
    /// Opt the tenant's queue into `CL_QUEUE_OUT_OF_ORDER_EXEC_MODE`:
    /// commands land in the per-queue pending DAG and run as soon as their
    /// auto-inferred or explicit dependencies complete. Per tenant, so one
    /// tenant's reordering never changes a neighbour's stream semantics.
    pub out_of_order: bool,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            name: None,
            weight: 1,
            max_inflight: 32,
            max_pending_bytes: 64 << 20,
            retry: RetryPolicy::default(),
            fault_budget: None,
            launch_timeout: None,
            out_of_order: false,
        }
    }
}

impl TenantConfig {
    /// Defaults, overridden by the environment:
    /// `CL_SERVE_WEIGHT`, `CL_SERVE_MAX_INFLIGHT`,
    /// `CL_SERVE_MAX_PENDING_BYTES`, `CL_SERVE_RETRIES`,
    /// `CL_SERVE_BACKOFF_BASE_US`, `CL_SERVE_BACKOFF_CAP_MS`,
    /// `CL_SERVE_FAULT_BUDGET` (0 disables), `CL_SERVE_OOO` (1 opts the
    /// tenant queue into out-of-order execution).
    pub fn from_env() -> Self {
        let mut c = TenantConfig::default();
        if let Some(w) = env_parse::<u32>("CL_SERVE_WEIGHT") {
            c.weight = w.max(1);
        }
        if let Some(n) = env_parse::<usize>("CL_SERVE_MAX_INFLIGHT") {
            c.max_inflight = n.max(1);
        }
        if let Some(b) = env_parse::<usize>("CL_SERVE_MAX_PENDING_BYTES") {
            c.max_pending_bytes = b;
        }
        if let Some(r) = env_parse::<u32>("CL_SERVE_RETRIES") {
            c.retry.max_retries = r;
        }
        if let Some(us) = env_parse::<u64>("CL_SERVE_BACKOFF_BASE_US") {
            c.retry.base = Duration::from_micros(us);
        }
        if let Some(ms) = env_parse::<u64>("CL_SERVE_BACKOFF_CAP_MS") {
            c.retry.cap = Duration::from_millis(ms);
        }
        if let Some(n) = env_parse::<u32>("CL_SERVE_FAULT_BUDGET") {
            c.fault_budget = (n > 0).then_some(n);
        }
        if let Some(v) = env_parse::<u8>("CL_SERVE_OOO") {
            c.out_of_order = v != 0;
        }
        c
    }

    /// Set the report label.
    pub fn name(mut self, n: impl Into<String>) -> Self {
        self.name = Some(n.into());
        self
    }

    /// Set the fairness weight (clamped to ≥ 1).
    pub fn weight(mut self, w: u32) -> Self {
        self.weight = w.max(1);
        self
    }

    /// Set the in-flight command quota.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Set the pending-byte quota.
    pub fn max_pending_bytes(mut self, b: usize) -> Self {
        self.max_pending_bytes = b;
        self
    }

    /// Set the retry policy.
    pub fn retry(mut self, r: RetryPolicy) -> Self {
        self.retry = r;
        self
    }

    /// Set the consecutive-fault auto-evict budget.
    pub fn fault_budget(mut self, n: u32) -> Self {
        self.fault_budget = (n > 0).then_some(n);
        self
    }

    /// Set the tenant's launch watchdog.
    pub fn launch_timeout(mut self, t: Duration) -> Self {
        self.launch_timeout = Some(t);
        self
    }

    /// Opt the tenant's queue into out-of-order execution.
    pub fn out_of_order(mut self, on: bool) -> Self {
        self.out_of_order = on;
        self
    }
}

/// Server-wide knobs: gate capacity and shed thresholds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Execution slots the gate hands out; `None` → one per pool worker.
    pub slots: Option<usize>,
    /// Gate waiting-room capacity; arrivals beyond it shed load.
    pub max_waiting: usize,
    /// Bound on time parked waiting for a slot; timing out sheds the
    /// waiter with `Backpressure`. `None` waits indefinitely.
    pub admit_timeout: Option<Duration>,
    /// Default launch watchdog for tenant queues (per-tenant
    /// [`TenantConfig::launch_timeout`] overrides). The serving layer arms
    /// one by default so a stalled kernel can never pin a gate slot
    /// forever.
    pub launch_timeout: Option<Duration>,
    /// Opt every tenant queue into online autotuning of NULL-local
    /// launches. Tenants share the per-process `cl_tune::Tuner`, so
    /// repeated traffic from many clients compounds into one learning
    /// curve and converged decisions are reused across tenants.
    pub tune: bool,
    /// Tune against this specific tuner instead of the process-global one
    /// (tests inject isolated tuners with private cache files). Implies
    /// tuning for every tenant regardless of [`ServeConfig::tune`].
    pub tuner: Option<std::sync::Arc<ocl_rt::cl_tune::Tuner>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slots: None,
            max_waiting: 64,
            admit_timeout: None,
            launch_timeout: Some(Duration::from_secs(30)),
            tune: false,
            tuner: None,
        }
    }
}

impl ServeConfig {
    /// Defaults, overridden by the environment: `CL_SERVE_SLOTS` (0 → one
    /// per worker), `CL_SERVE_MAX_WAITING`, `CL_SERVE_ADMIT_TIMEOUT_MS`
    /// (0 → wait indefinitely), `CL_SERVE_TIMEOUT_MS` (0 → no watchdog),
    /// and `CL_TUNE` (1 opts tenant queues into the process tuner).
    pub fn from_env() -> Self {
        let mut c = ServeConfig::default();
        if let Some(s) = env_parse::<usize>("CL_SERVE_SLOTS") {
            c.slots = (s > 0).then_some(s);
        }
        if let Some(w) = env_parse::<usize>("CL_SERVE_MAX_WAITING") {
            c.max_waiting = w;
        }
        if let Some(ms) = env_parse::<u64>("CL_SERVE_ADMIT_TIMEOUT_MS") {
            c.admit_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Some(ms) = env_parse::<u64>("CL_SERVE_TIMEOUT_MS") {
            c.launch_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        c.tune = ocl_rt::cl_tune::Tuner::enabled_from_env();
        c
    }

    /// Set the gate slot count.
    pub fn slots(mut self, n: usize) -> Self {
        self.slots = Some(n.max(1));
        self
    }

    /// Set the waiting-room capacity.
    pub fn max_waiting(mut self, n: usize) -> Self {
        self.max_waiting = n;
        self
    }

    /// Set the admission wait bound.
    pub fn admit_timeout(mut self, t: Duration) -> Self {
        self.admit_timeout = Some(t);
        self
    }

    /// Set the default launch watchdog for tenant queues.
    pub fn launch_timeout(mut self, t: Duration) -> Self {
        self.launch_timeout = Some(t);
        self
    }

    /// Opt tenant queues into online autotuning of NULL-local launches.
    pub fn tune(mut self, on: bool) -> Self {
        self.tune = on;
        self
    }

    /// Tune tenant queues against this specific tuner instance.
    pub fn tuner(mut self, tuner: std::sync::Arc<ocl_rt::cl_tune::Tuner>) -> Self {
        self.tuner = Some(tuner);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let t = TenantConfig::default();
        assert_eq!(t.weight, 1);
        assert!(t.max_inflight > 0);
        assert!(t.max_pending_bytes > 0);
        let s = ServeConfig::default();
        assert!(s.slots.is_none());
        assert!(s.max_waiting > 0);
        assert!(s.launch_timeout.is_some());
    }

    #[test]
    fn builders_clamp() {
        let t = TenantConfig::default().weight(0).max_inflight(0);
        assert_eq!(t.weight, 1);
        assert_eq!(t.max_inflight, 1);
        assert_eq!(TenantConfig::default().fault_budget(0).fault_budget, None);
    }

    #[test]
    fn ooo_defaults_off_and_env_opts_in() {
        assert!(!TenantConfig::default().out_of_order);
        assert!(TenantConfig::default().out_of_order(true).out_of_order);
        // Serialized against nothing: this is the only test in the crate
        // touching CL_SERVE_OOO.
        std::env::set_var("CL_SERVE_OOO", "1");
        assert!(TenantConfig::from_env().out_of_order);
        std::env::set_var("CL_SERVE_OOO", "0");
        assert!(!TenantConfig::from_env().out_of_order);
        std::env::remove_var("CL_SERVE_OOO");
        assert!(!TenantConfig::from_env().out_of_order);
    }
}
