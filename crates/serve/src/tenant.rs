//! The per-client handle: quota-gated, fairness-gated, fault-isolated
//! access to the shared device.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use cl_util::sync::Mutex;
use cl_util::XorShift;
use ocl_rt::{
    Buffer, ClError, CommandQueue, Context, Event, Kernel, MemFlags, NDRange, Pod, TypedMap,
    TypedMapMut,
};

use crate::config::TenantConfig;
use crate::fair::{AcquireError, WeightedGate};
use crate::metrics::{StatsSnapshot, TenantStats};

/// True for errors worth retrying with backoff: the serving layer refused
/// the command (quota/overload) or the device was transiently unavailable.
/// Kernel faults (panic, timeout) and validation errors are not transient —
/// retrying them repeats the failure.
pub fn is_transient(e: &ClError) -> bool {
    matches!(
        e,
        ClError::Backpressure { .. } | ClError::DeviceUnavailable(_)
    )
}

pub(crate) struct TenantShared {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) cfg: TenantConfig,
    pub(crate) inflight: AtomicUsize,
    pub(crate) pending_bytes: AtomicUsize,
    pub(crate) evicted: AtomicBool,
    pub(crate) consecutive_faults: AtomicU32,
    pub(crate) stats: TenantStats,
}

/// One client's handle on the server: its own context and queue over the
/// shared pool, guarded by admission quotas and the fairness gate.
///
/// `Tenant` is `Sync` — a client may issue commands from several threads —
/// but a well-behaved client owns exactly one.
pub struct Tenant {
    shared: Arc<TenantShared>,
    gate: Arc<WeightedGate>,
    ctx: Context,
    queue: CommandQueue,
    rng: Mutex<XorShift>,
}

/// Releases the admission counters when the command finishes (or is
/// refused downstream of admission).
struct AdmitGuard<'t> {
    shared: &'t TenantShared,
    bytes: usize,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
        if self.bytes > 0 {
            self.shared
                .pending_bytes
                .fetch_sub(self.bytes, Ordering::AcqRel);
        }
    }
}

impl Tenant {
    pub(crate) fn new(
        shared: Arc<TenantShared>,
        gate: Arc<WeightedGate>,
        ctx: Context,
        queue: CommandQueue,
    ) -> Self {
        // Jitter stream seeded from the tenant id: deterministic per tenant,
        // decorrelated across tenants.
        let rng = Mutex::new(XorShift::seed_from_u64(0x5E55_10F0 ^ shared.id));
        Tenant {
            shared,
            gate,
            ctx,
            queue,
            rng,
        }
    }

    /// Serving-layer tenant id (appears in `ClError::Backpressure`).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Report label.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// The tenant's private context (buffers created here belong to it).
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The tenant's raw queue — the unmetered escape hatch. Commands issued
    /// here bypass admission control and the fairness gate; prefer the
    /// `Tenant` methods.
    pub fn queue(&self) -> &CommandQueue {
        &self.queue
    }

    /// Live statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Commands currently admitted and not yet finished.
    pub fn in_flight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Whether this tenant has been evicted.
    pub fn is_evicted(&self) -> bool {
        self.shared.evicted.load(Ordering::Acquire)
    }

    /// `clCreateBuffer` in the tenant's context.
    pub fn buffer<T: Pod>(&self, flags: MemFlags, len: usize) -> Result<Buffer<T>, ClError> {
        self.ctx.buffer(flags, len)
    }

    /// `clCreateBuffer` + `COPY_HOST_PTR` in the tenant's context.
    pub fn buffer_from<T: Pod>(&self, flags: MemFlags, data: &[T]) -> Result<Buffer<T>, ClError> {
        self.ctx.buffer_from(flags, data)
    }

    /// Enqueue a kernel launch: admission (in-flight quota) → fairness gate
    /// (execution slot) → the tenant's queue. Kernel faults are contained to
    /// this handle and counted against the fault budget.
    pub fn launch(&self, kernel: &Arc<dyn Kernel>, range: NDRange) -> Result<Event, ClError> {
        let admit = self.admit(0)?;
        let slot = match self.gate.acquire(self.shared.id) {
            Ok(g) => g,
            Err(AcquireError::Shed) => {
                drop(admit);
                self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(self.backpressure_error());
            }
            Err(AcquireError::Evicted) => {
                drop(admit);
                return Err(self.evicted_error());
            }
        };
        let res = self.queue.enqueue_kernel(kernel, range);
        drop(slot);
        drop(admit);
        match &res {
            Ok(ev) => {
                self.shared.stats.launches.fetch_add(1, Ordering::Relaxed);
                self.shared.stats.record_latency(launch_latency_ns(ev));
                self.shared.consecutive_faults.store(0, Ordering::Relaxed);
            }
            Err(e) => self.note_fault(e),
        }
        res
    }

    /// [`Tenant::launch`] with bounded retries on transient errors, sleeping
    /// the policy's jittered exponential backoff between attempts.
    pub fn launch_with_retry(
        &self,
        kernel: &Arc<dyn Kernel>,
        range: NDRange,
    ) -> Result<Event, ClError> {
        let mut attempt = 0u32;
        loop {
            match self.launch(kernel, range) {
                Err(ref e) if attempt < self.shared.cfg.retry.max_retries && is_transient(e) => {
                    let delay = {
                        let mut rng = self.rng.lock();
                        self.shared.cfg.retry.delay(attempt, &mut rng)
                    };
                    // Honor a larger server-provided hint.
                    let delay = match e {
                        ClError::Backpressure { retry_after, .. } => delay.max(*retry_after),
                        _ => delay,
                    };
                    self.shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// `clEnqueueWriteBuffer`, metered against the byte quota. Transfers run
    /// on the calling thread (they never occupy pool workers), so they pass
    /// admission control but not the fairness gate.
    pub fn write<T: Pod>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        src: &[T],
    ) -> Result<Event, ClError> {
        let bytes = std::mem::size_of_val(src);
        let _admit = self.admit(bytes)?;
        let res = self.queue.write_buffer(buf, offset, src);
        self.note_transfer(&res, bytes);
        res
    }

    /// `clEnqueueReadBuffer`, metered against the byte quota.
    pub fn read<T: Pod>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        dst: &mut [T],
    ) -> Result<Event, ClError> {
        let bytes = std::mem::size_of_val(dst);
        let _admit = self.admit(bytes)?;
        let res = self.queue.read_buffer(buf, offset, dst);
        self.note_transfer(&res, bytes);
        res
    }

    /// `clEnqueueMapBuffer` (read view). The buffer's full size is metered
    /// for the duration of the blocking map call; the mapped lifetime
    /// afterwards is not.
    pub fn map<'t, T: Pod>(
        &'t self,
        buf: &'t Buffer<T>,
    ) -> Result<(TypedMap<'t, T>, Event), ClError> {
        let bytes = buf.len() * std::mem::size_of::<T>();
        let _admit = self.admit(bytes)?;
        let res = self.queue.map_buffer(buf);
        if res.is_ok() {
            self.shared.stats.transfers.fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
        res
    }

    /// `clEnqueueMapBuffer` (write view), metered like [`Tenant::map`].
    pub fn map_mut<'t, T: Pod>(
        &'t self,
        buf: &'t Buffer<T>,
    ) -> Result<(TypedMapMut<'t, T>, Event), ClError> {
        let bytes = buf.len() * std::mem::size_of::<T>();
        let _admit = self.admit(bytes)?;
        let res = self.queue.map_buffer_mut(buf);
        if res.is_ok() {
            self.shared.stats.transfers.fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
        res
    }

    /// Admission control: reserve an in-flight slot and `bytes` of the byte
    /// quota, or refuse with [`ClError::Backpressure`].
    fn admit(&self, bytes: usize) -> Result<AdmitGuard<'_>, ClError> {
        let s = &*self.shared;
        if s.evicted.load(Ordering::Acquire) {
            return Err(self.evicted_error());
        }
        let mut cur = s.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= s.cfg.max_inflight {
                self.shared
                    .stats
                    .backpressure
                    .fetch_add(1, Ordering::Relaxed);
                return Err(self.backpressure_error());
            }
            match s.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        if bytes > 0 {
            let mut b = s.pending_bytes.load(Ordering::Relaxed);
            loop {
                if b.saturating_add(bytes) > s.cfg.max_pending_bytes {
                    s.inflight.fetch_sub(1, Ordering::AcqRel);
                    self.shared
                        .stats
                        .backpressure
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(self.backpressure_error());
                }
                match s.pending_bytes.compare_exchange_weak(
                    b,
                    b + bytes,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => b = now,
                }
            }
        }
        Ok(AdmitGuard { shared: s, bytes })
    }

    /// Backpressure with a `retry_after` hint scaled by current load: the
    /// fuller the tenant's pipeline, the longer the suggested wait.
    fn backpressure_error(&self) -> ClError {
        let s = &self.shared;
        let load = s.inflight.load(Ordering::Relaxed).max(1) as u32;
        let hint = s
            .cfg
            .retry
            .base
            .saturating_mul(load)
            .min(s.cfg.retry.cap)
            .max(s.cfg.retry.base);
        ClError::Backpressure {
            tenant: s.id,
            retry_after: hint,
        }
    }

    fn evicted_error(&self) -> ClError {
        self.shared
            .stats
            .rejected_evicted
            .fetch_add(1, Ordering::Relaxed);
        ClError::TenantEvicted {
            tenant: self.shared.id,
        }
    }

    fn note_transfer(&self, res: &Result<Event, ClError>, bytes: usize) {
        if res.is_ok() {
            self.shared.stats.transfers.fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Count kernel faults (panic/timeout) toward the consecutive-fault
    /// budget; exhausting it evicts the tenant. Refusals and validation
    /// errors do not count.
    fn note_fault(&self, e: &ClError) {
        if !matches!(
            e,
            ClError::KernelPanicked { .. } | ClError::LaunchTimedOut { .. }
        ) {
            return;
        }
        let s = &self.shared;
        s.stats.faults.fetch_add(1, Ordering::Relaxed);
        let seen = s.consecutive_faults.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(budget) = s.cfg.fault_budget {
            if seen >= budget && !s.evicted.swap(true, Ordering::AcqRel) {
                self.gate.evict(s.id);
            }
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        // Free the WRR lane; any stragglers parked on it fail cleanly.
        self.gate.deregister(self.shared.id);
    }
}

#[allow(dead_code)]
fn _assert_traits() {
    fn sync<T: Sync + Send>() {}
    sync::<Tenant>();
}

fn launch_latency_ns(ev: &Event) -> u64 {
    let p = ev.profiling();
    if p.completed_ns > p.queued_ns && p.queued_ns > 0 {
        p.completed_ns - p.queued_ns
    } else {
        (ev.duration_s() * 1e9) as u64
    }
}
