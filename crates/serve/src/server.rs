//! The server: one shared device + fairness gate, handing out [`Tenant`]s.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use cl_util::sync::Mutex;
use ocl_rt::{ClError, Context, ContextConfig, Device, QueueConfig};

use crate::config::{ServeConfig, TenantConfig};
use crate::fair::WeightedGate;
use crate::tenant::{Tenant, TenantShared};

/// The in-process serving front-end: owns the shared [`Device`] and the
/// [`WeightedGate`], and mints per-client [`Tenant`] handles.
pub struct Server {
    device: Device,
    cfg: ServeConfig,
    gate: Arc<WeightedGate>,
    tenants: Mutex<Vec<(u64, Weak<TenantShared>)>>,
    next_id: AtomicU64,
}

impl Server {
    /// A server over a fresh native-CPU device with `workers` pool workers.
    pub fn new(workers: usize, cfg: ServeConfig) -> Result<Self, ClError> {
        Ok(Self::with_device(Device::native_cpu(workers)?, cfg))
    }

    /// A server over an existing device (shared pool, modeled device, …).
    pub fn with_device(device: Device, cfg: ServeConfig) -> Self {
        let slots = cfg.slots.unwrap_or_else(|| device.pool().workers()).max(1);
        let gate = WeightedGate::new(slots, cfg.max_waiting, cfg.admit_timeout);
        Server {
            device,
            cfg,
            gate,
            tenants: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Mint a tenant handle: its own context and queue over the shared
    /// device, a WRR lane at `cfg.weight`, and fresh quota counters.
    pub fn tenant(&self, cfg: TenantConfig) -> Tenant {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let name = cfg.name.clone().unwrap_or_else(|| format!("tenant-{id}"));
        self.gate.register(id, cfg.weight);
        // Per-tenant context: buffers and race logs never alias across
        // tenants (the runtime's WrongContext check enforces it).
        let ctx = Context::new_with(self.device.clone(), ContextConfig::default());
        // Tenants share one tuner (the injected instance or the process
        // global): every client's NULL-local traffic feeds the same bandit,
        // and one tenant's converged decision is every tenant's hot path.
        let qcfg = QueueConfig {
            launch_timeout: cfg.launch_timeout.or(self.cfg.launch_timeout),
            out_of_order: cfg.out_of_order,
            tune: self.cfg.tune,
            tuner: self.cfg.tuner.clone(),
            ..QueueConfig::default()
        };
        let queue = ctx.queue_with(qcfg);
        let shared = Arc::new(TenantShared {
            id,
            name,
            cfg,
            inflight: Default::default(),
            pending_bytes: Default::default(),
            evicted: Default::default(),
            consecutive_faults: Default::default(),
            stats: Default::default(),
        });
        let mut reg = self.tenants.lock();
        reg.retain(|(_, w)| w.strong_count() > 0);
        reg.push((id, Arc::downgrade(&shared)));
        drop(reg);
        Tenant::new(shared, Arc::clone(&self.gate), ctx, queue)
    }

    /// Administratively evict tenant `id`: parked launches fail, later
    /// commands on the handle return [`ClError::TenantEvicted`]. Returns
    /// false when no live tenant has that id.
    pub fn evict(&self, id: u64) -> bool {
        let reg = self.tenants.lock();
        let Some(shared) = reg
            .iter()
            .find(|(tid, _)| *tid == id)
            .and_then(|(_, w)| w.upgrade())
        else {
            return false;
        };
        drop(reg);
        if !shared.evicted.swap(true, Ordering::AcqRel) {
            self.gate.evict(id);
        }
        true
    }

    /// The shared device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The fairness gate (shared by every tenant).
    pub fn gate(&self) -> &Arc<WeightedGate> {
        &self.gate
    }

    /// The server-wide configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Live (not dropped) tenant handles.
    pub fn alive(&self) -> usize {
        self.tenants
            .lock()
            .iter()
            .filter(|(_, w)| w.strong_count() > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_mints_distinct_tenants() {
        let srv = Server::new(2, ServeConfig::default()).unwrap();
        let a = srv.tenant(TenantConfig::default());
        let b = srv.tenant(TenantConfig::default().name("bee").weight(3));
        assert_ne!(a.id(), b.id());
        assert_eq!(b.name(), "bee");
        assert_eq!(srv.alive(), 2);
        drop(a);
        assert_eq!(srv.alive(), 1);
    }

    #[test]
    fn gate_defaults_to_one_slot_per_worker() {
        let srv = Server::new(3, ServeConfig::default()).unwrap();
        assert_eq!(srv.gate().capacity(), 3);
        let srv = Server::new(2, ServeConfig::default().slots(5)).unwrap();
        assert_eq!(srv.gate().capacity(), 5);
    }

    #[test]
    fn evict_unknown_id_is_false() {
        let srv = Server::new(1, ServeConfig::default()).unwrap();
        assert!(!srv.evict(99));
        let t = srv.tenant(TenantConfig::default());
        assert!(srv.evict(t.id()));
        assert!(t.is_evicted());
    }
}
