//! The weighted admission gate: a fixed pool of execution slots handed out
//! across per-tenant lanes by deficit weighted round-robin.
//!
//! Kernel launches are the only tenant commands that occupy pool workers,
//! so they are the only commands that pass the gate. Each tenant owns a
//! *lane*; a lane's `weight` is the number of grants it receives per WRR
//! round while it has waiters. Slots release on [`SlotGuard`] drop, and the
//! releasing thread immediately grants the next waiter under the same lock,
//! so slot hand-off order is exactly grant order — deterministic given the
//! arrival order within each lane.
//!
//! **Shedding** (graceful degradation): the waiting room is bounded by
//! `max_waiting`. When it is full, the gate sheds the *newest waiter of the
//! lowest-weight lane* to admit a heavier arrival, and rejects the arrival
//! outright when the arrival itself is the newest lowest-weight work. Under
//! sustained overload, heavy tenants keep their bounded queue; the flood is
//! what gets refused.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cl_util::sync::{Condvar, Mutex};

const WAITING: u8 = 0;
const GRANTED: u8 = 1;
const SHED: u8 = 2;
const EVICTED: u8 = 3;

/// Why [`WeightedGate::acquire`] refused a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// Shed under overload (waiting room full, or the admit timeout
    /// elapsed). Transient — maps to `ClError::Backpressure`.
    Shed,
    /// The lane was evicted before or while waiting. Terminal — maps to
    /// `ClError::TenantEvicted`.
    Evicted,
}

struct Waiter {
    state: AtomicU8,
    /// Global arrival order, for picking the *newest* victim across
    /// equal-weight lanes when shedding.
    seq: u64,
}

struct Lane {
    tenant: u64,
    weight: u32,
    /// Grants remaining this WRR round.
    credit: u32,
    queue: VecDeque<Arc<Waiter>>,
    evicted: bool,
}

struct GateState {
    free: usize,
    waiting_total: usize,
    lanes: Vec<Lane>,
    /// Lane index the WRR scan starts from.
    cursor: usize,
    /// Arrival counter stamped onto waiters.
    next_seq: u64,
}

/// Weighted round-robin slot gate shared by all tenants of a server.
pub struct WeightedGate {
    state: Mutex<GateState>,
    cv: Condvar,
    capacity: usize,
    max_waiting: usize,
    admit_timeout: Option<Duration>,
}

/// An execution slot; releasing (dropping) it grants the next waiter.
pub struct SlotGuard {
    gate: Arc<WeightedGate>,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.gate.release();
    }
}

impl WeightedGate {
    /// A gate with `capacity` slots and a `max_waiting`-bounded waiting
    /// room. `admit_timeout` bounds how long an acquire may stay parked.
    pub fn new(capacity: usize, max_waiting: usize, admit_timeout: Option<Duration>) -> Arc<Self> {
        Arc::new(WeightedGate {
            state: Mutex::new(GateState {
                free: capacity.max(1),
                waiting_total: 0,
                lanes: Vec::new(),
                cursor: 0,
                next_seq: 0,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            max_waiting,
            admit_timeout,
        })
    }

    /// Register a lane for `tenant` with the given WRR weight.
    pub fn register(&self, tenant: u64, weight: u32) {
        let mut s = self.state.lock();
        debug_assert!(
            s.lanes.iter().all(|l| l.tenant != tenant),
            "tenant {tenant} registered twice"
        );
        let weight = weight.max(1);
        s.lanes.push(Lane {
            tenant,
            weight,
            credit: weight,
            queue: VecDeque::new(),
            evicted: false,
        });
    }

    /// Remove `tenant`'s lane; its parked waiters fail with
    /// [`AcquireError::Evicted`].
    pub fn deregister(&self, tenant: u64) {
        let mut s = self.state.lock();
        let st = &mut *s;
        if let Some(i) = st.lanes.iter().position(|l| l.tenant == tenant) {
            let lane = st.lanes.remove(i);
            st.waiting_total -= lane.queue.len();
            if st.cursor > i {
                st.cursor -= 1;
            }
            if !st.lanes.is_empty() {
                st.cursor %= st.lanes.len();
            } else {
                st.cursor = 0;
            }
            let woken = !lane.queue.is_empty();
            for w in lane.queue {
                w.state.store(EVICTED, Ordering::Release);
            }
            drop(s);
            if woken {
                self.cv.notify_all();
            }
        }
    }

    /// Evict `tenant`'s lane in place: parked waiters fail with
    /// [`AcquireError::Evicted`], and so does every later acquire.
    pub fn evict(&self, tenant: u64) {
        let mut s = self.state.lock();
        let st = &mut *s;
        if let Some(lane) = st.lanes.iter_mut().find(|l| l.tenant == tenant) {
            lane.evicted = true;
            st.waiting_total -= lane.queue.len();
            let drained: Vec<_> = lane.queue.drain(..).collect();
            drop(s);
            if !drained.is_empty() {
                for w in &drained {
                    w.state.store(EVICTED, Ordering::Release);
                }
                self.cv.notify_all();
            }
        }
    }

    /// Acquire an execution slot on `tenant`'s lane, parking until granted,
    /// shed, or evicted.
    pub fn acquire(self: &Arc<Self>, tenant: u64) -> Result<SlotGuard, AcquireError> {
        let waiter = {
            let mut s = self.state.lock();
            let li = s
                .lanes
                .iter()
                .position(|l| l.tenant == tenant)
                .expect("tenant lane not registered with the gate");
            if s.lanes[li].evicted {
                return Err(AcquireError::Evicted);
            }
            // Fast path. Grants drain the waiting room before `free` goes
            // positive again, so free > 0 implies nobody is parked — taking
            // the slot directly cannot barge past a waiter.
            if s.waiting_total == 0 && s.free > 0 {
                s.free -= 1;
                return Ok(SlotGuard {
                    gate: Arc::clone(self),
                });
            }
            if s.waiting_total >= self.max_waiting {
                let my_weight = s.lanes[li].weight;
                let min_weight = s
                    .lanes
                    .iter()
                    .filter(|l| !l.queue.is_empty())
                    .map(|l| l.weight)
                    .min();
                match min_weight {
                    // Shed the newest waiter among the lowest-weight lanes
                    // to make room for this strictly heavier arrival. Each
                    // lane's newest waiter is its back; across equal-weight
                    // lanes the victim is the latest arrival (max seq).
                    Some(mw) if my_weight > mw => {
                        let vi = s
                            .lanes
                            .iter()
                            .enumerate()
                            .filter(|(_, l)| l.weight == mw && !l.queue.is_empty())
                            .max_by_key(|(_, l)| l.queue.back().expect("nonempty").seq)
                            .map(|(i, _)| i)
                            .expect("a lane with min weight has waiters");
                        let victim = s.lanes[vi].queue.pop_back().expect("nonempty");
                        s.waiting_total -= 1;
                        victim.state.store(SHED, Ordering::Release);
                        self.cv.notify_all();
                    }
                    // The arrival is itself the newest lowest-weight work.
                    _ => return Err(AcquireError::Shed),
                }
            }
            let w = Arc::new(Waiter {
                state: AtomicU8::new(WAITING),
                seq: s.next_seq,
            });
            s.next_seq += 1;
            s.lanes[li].queue.push_back(Arc::clone(&w));
            s.waiting_total += 1;
            // A slot may be free if we got here via the shed branch.
            let granted = Self::grant_locked(&mut s);
            drop(s);
            if granted > 0 {
                self.cv.notify_all();
            }
            w
        };

        let deadline = self.admit_timeout.map(|t| Instant::now() + t);
        let mut s = self.state.lock();
        loop {
            match waiter.state.load(Ordering::Acquire) {
                GRANTED => {
                    return Ok(SlotGuard {
                        gate: Arc::clone(self),
                    })
                }
                SHED => return Err(AcquireError::Shed),
                EVICTED => return Err(AcquireError::Evicted),
                _ => {}
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Withdraw under the lock. If the waiter is no
                        // longer queued, a grant/shed raced the timeout —
                        // loop once more to read the final state.
                        let st = &mut *s;
                        let mut withdrawn = false;
                        for lane in &mut st.lanes {
                            if let Some(i) = lane.queue.iter().position(|q| Arc::ptr_eq(q, &waiter))
                            {
                                lane.queue.remove(i);
                                st.waiting_total -= 1;
                                withdrawn = true;
                                break;
                            }
                        }
                        if withdrawn {
                            return Err(AcquireError::Shed);
                        }
                        continue;
                    }
                    self.cv.wait_for(&mut s, d - now);
                }
                // Periodic re-check is belt and braces against a lost
                // wakeup; grants always notify under normal operation.
                None => {
                    self.cv.wait_for(&mut s, Duration::from_millis(100));
                }
            }
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently parked acquisitions (all lanes).
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting_total
    }

    /// Slots not currently handed out.
    pub fn free(&self) -> usize {
        self.state.lock().free
    }

    fn release(&self) {
        let mut s = self.state.lock();
        s.free += 1;
        debug_assert!(s.free <= self.capacity, "slot released twice");
        let granted = Self::grant_locked(&mut s);
        drop(s);
        if granted > 0 {
            self.cv.notify_all();
        }
    }

    /// Hand free slots to parked waiters in deficit-WRR order. Caller
    /// notifies the condvar when the return is nonzero.
    fn grant_locked(s: &mut GateState) -> usize {
        let n = s.lanes.len();
        let mut granted = 0;
        if n == 0 {
            return 0;
        }
        while s.free > 0 && s.waiting_total > 0 {
            let mut progressed = false;
            for k in 0..n {
                let i = (s.cursor + k) % n;
                let lane = &mut s.lanes[i];
                if lane.credit > 0 && !lane.queue.is_empty() {
                    let w = lane.queue.pop_front().expect("nonempty");
                    lane.credit -= 1;
                    // Stay on the lane while it has credit (strict WRR
                    // bursts of `weight` grants), else move past it.
                    s.cursor = if lane.credit > 0 { i } else { (i + 1) % n };
                    s.waiting_total -= 1;
                    s.free -= 1;
                    w.state.store(GRANTED, Ordering::Release);
                    granted += 1;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                if !s.lanes.iter().any(|l| !l.queue.is_empty()) {
                    debug_assert!(false, "waiting_total out of sync with lane queues");
                    break;
                }
                // Every lane with waiters is out of credit: new WRR round.
                for l in &mut s.lanes {
                    l.credit = l.weight;
                }
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    fn park_until(gate: &Arc<WeightedGate>, waiting: usize) {
        let t0 = Instant::now();
        while gate.waiting() < waiting {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "waiters never parked"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn fast_path_and_single_waiter() {
        let gate = WeightedGate::new(1, 16, None);
        gate.register(1, 1);
        let g = gate.acquire(1).unwrap();
        let gate2 = Arc::clone(&gate);
        let h = std::thread::spawn(move || gate2.acquire(1).map(drop));
        park_until(&gate, 1);
        drop(g);
        h.join().unwrap().unwrap();
        assert_eq!(gate.free(), 1);
    }

    #[test]
    fn grant_order_is_weighted_round_robin() {
        let gate = WeightedGate::new(1, 16, None);
        gate.register(1, 2); // A, weight 2
        gate.register(2, 1); // B, weight 1
        let holder = gate.acquire(1).unwrap();
        let order = Arc::new(StdMutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Park 4 A waiters then 2 B waiters; lanes are independent queues,
        // so only the per-lane FIFO order matters and A/B arrival
        // interleaving does not.
        for (tenant, count) in [(1u64, 4usize), (2, 2)] {
            for _ in 0..count {
                let gate2 = Arc::clone(&gate);
                let order = Arc::clone(&order);
                let parked = gate.waiting() + 1;
                handles.push(std::thread::spawn(move || {
                    let g = gate2.acquire(tenant).unwrap();
                    order.lock().unwrap().push(tenant);
                    drop(g); // hand the slot to the next grant
                }));
                park_until(&gate, parked);
            }
        }
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        // Credits start at the weights: A,A,B then refill, A,A,B.
        assert_eq!(*order.lock().unwrap(), vec![1, 1, 2, 1, 1, 2]);
    }

    #[test]
    fn shed_newest_lowest_weight_first() {
        let gate = WeightedGate::new(1, 2, None);
        gate.register(1, 1); // low
        gate.register(2, 5); // high
        let holder = gate.acquire(2).unwrap();

        let spawn_waiter = |tenant: u64| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire(tenant).map(drop))
        };
        let low1 = spawn_waiter(1);
        park_until(&gate, 1);
        let low2 = spawn_waiter(1);
        park_until(&gate, 2);

        // Waiting room full. A heavier arrival sheds low2 (newest waiter of
        // the lowest-weight lane) and takes its place.
        let high = spawn_waiter(2);
        assert_eq!(low2.join().unwrap(), Err(AcquireError::Shed));
        park_until(&gate, 2);

        // A low-weight arrival with the room full is itself the newest
        // lowest-weight work: rejected outright, nothing else shed.
        assert!(matches!(gate.acquire(1), Err(AcquireError::Shed)));
        assert_eq!(gate.waiting(), 2);

        drop(holder);
        low1.join().unwrap().unwrap();
        high.join().unwrap().unwrap();
    }

    #[test]
    fn shed_victim_is_newest_across_equal_weight_lanes() {
        let gate = WeightedGate::new(1, 2, None);
        gate.register(1, 1); // lowA
        gate.register(2, 1); // lowB
        gate.register(3, 5); // high
        let holder = gate.acquire(3).unwrap();

        let ga = Arc::clone(&gate);
        let low_a = std::thread::spawn(move || ga.acquire(1).map(drop));
        park_until(&gate, 1);
        let gb = Arc::clone(&gate);
        let low_b = std::thread::spawn(move || gb.acquire(2).map(drop));
        park_until(&gate, 2);

        // lowB's waiter arrived last: it is the victim, even though lowA's
        // lane comes first in registration order.
        let gh = Arc::clone(&gate);
        let high = std::thread::spawn(move || gh.acquire(3).map(drop));
        assert_eq!(low_b.join().unwrap(), Err(AcquireError::Shed));
        drop(holder);
        low_a.join().unwrap().unwrap();
        high.join().unwrap().unwrap();
    }

    #[test]
    fn evicted_lane_fails_parked_and_future_acquires() {
        let gate = WeightedGate::new(1, 16, None);
        gate.register(1, 1);
        gate.register(2, 1);
        let holder = gate.acquire(2).unwrap();
        let gate2 = Arc::clone(&gate);
        let parked = std::thread::spawn(move || gate2.acquire(1).map(drop));
        park_until(&gate, 1);
        gate.evict(1);
        assert_eq!(parked.join().unwrap(), Err(AcquireError::Evicted));
        assert!(matches!(gate.acquire(1), Err(AcquireError::Evicted)));
        assert_eq!(gate.waiting(), 0);
        drop(holder);
    }

    #[test]
    fn admit_timeout_sheds_parked_waiter() {
        let gate = WeightedGate::new(1, 16, Some(Duration::from_millis(30)));
        gate.register(1, 1);
        let holder = gate.acquire(1).unwrap();
        let t0 = Instant::now();
        assert_eq!(gate.acquire(1).map(drop), Err(AcquireError::Shed));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(gate.waiting(), 0, "timed-out waiter withdrew");
        drop(holder);
        // The slot is usable again after the timeout path.
        drop(gate.acquire(1).unwrap());
    }

    #[test]
    fn deregister_frees_the_lane() {
        let gate = WeightedGate::new(2, 16, None);
        gate.register(1, 1);
        gate.register(2, 1);
        gate.deregister(1);
        let s = gate.state.lock();
        assert_eq!(s.lanes.len(), 1);
        assert_eq!(s.lanes[0].tenant, 2);
    }
}
