//! Property tests: every SIMD lane operation agrees with its scalar
//! counterpart on arbitrary inputs, for both supported widths.

use cl_vec::{simd_apply, simd_apply2, VecF32};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Bounded to avoid inf/NaN arithmetic edge cases; lane ops are IEEE
    // pass-throughs either way.
    -1e6f32..1e6f32
}

fn pos_f32() -> impl Strategy<Value = f32> {
    1e-3f32..1e4f32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_ops_match_scalar_4(a in prop::array::uniform4(finite_f32()), b in prop::array::uniform4(finite_f32())) {
        let va = VecF32(a);
        let vb = VecF32(b);
        for k in 0..4 {
            prop_assert_eq!((va + vb)[k], a[k] + b[k]);
            prop_assert_eq!((va - vb)[k], a[k] - b[k]);
            prop_assert_eq!((va * vb)[k], a[k] * b[k]);
            prop_assert_eq!(va.min(vb)[k], a[k].min(b[k]));
            prop_assert_eq!(va.max(vb)[k], a[k].max(b[k]));
            prop_assert_eq!((-va)[k], -a[k]);
        }
    }

    #[test]
    fn binary_ops_match_scalar_8(a in prop::array::uniform8(finite_f32()), b in prop::array::uniform8(finite_f32())) {
        let va = VecF32(a);
        let vb = VecF32(b);
        for k in 0..8 {
            prop_assert_eq!((va * vb + va)[k], a[k] * b[k] + a[k]);
        }
    }

    #[test]
    fn mul_add_matches_scalar(
        a in prop::array::uniform4(finite_f32()),
        b in prop::array::uniform4(finite_f32()),
        c in prop::array::uniform4(finite_f32()),
    ) {
        let r = VecF32(a).mul_add(VecF32(b), VecF32(c));
        for k in 0..4 {
            prop_assert_eq!(r[k], a[k] * b[k] + c[k]);
        }
    }

    #[test]
    fn math_fns_match_scalar(a in prop::array::uniform4(pos_f32())) {
        let v = VecF32(a);
        for k in 0..4 {
            prop_assert_eq!(v.sqrt()[k], a[k].sqrt());
            prop_assert_eq!(v.ln()[k], a[k].ln());
            prop_assert_eq!(v.rsqrt()[k], 1.0 / a[k].sqrt());
        }
    }

    #[test]
    fn hsum_matches_iterative_sum(a in prop::array::uniform4(finite_f32())) {
        let expected: f32 = a.iter().sum();
        prop_assert_eq!(VecF32(a).hsum(), expected);
    }

    #[test]
    fn select_is_lanewise(
        mask in prop::array::uniform4(any::<bool>()),
        a in prop::array::uniform4(finite_f32()),
        b in prop::array::uniform4(finite_f32()),
    ) {
        let r = VecF32::select(mask, VecF32(a), VecF32(b));
        for k in 0..4 {
            prop_assert_eq!(r[k], if mask[k] { a[k] } else { b[k] });
        }
    }

    #[test]
    fn simd_apply_equals_scalar_loop(data in prop::collection::vec(finite_f32(), 0..200)) {
        let mut simd_out = vec![0.0f32; data.len()];
        simd_apply::<4>(&data, &mut simd_out, |v| v * v + v, |x| x * x + x);
        let scalar_out: Vec<f32> = data.iter().map(|&x| x * x + x).collect();
        prop_assert_eq!(simd_out, scalar_out);
    }

    #[test]
    fn simd_apply2_equals_scalar_loop(
        n in 0usize..200,
        seed_a in finite_f32(),
        seed_b in finite_f32(),
    ) {
        let a: Vec<f32> = (0..n).map(|i| seed_a + i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| seed_b - i as f32).collect();
        let mut out = vec![0.0f32; n];
        simd_apply2::<8>(&a, &b, &mut out, |x, y| x - y, |x, y| x - y);
        for i in 0..n {
            prop_assert_eq!(out[i], a[i] - b[i]);
        }
    }

    #[test]
    fn gather_matches_indexing(
        src in prop::collection::vec(finite_f32(), 1..64),
        raw_idx in prop::array::uniform4(any::<usize>()),
    ) {
        let idx = [
            raw_idx[0] % src.len(),
            raw_idx[1] % src.len(),
            raw_idx[2] % src.len(),
            raw_idx[3] % src.len(),
        ];
        let v = VecF32::<4>::gather(&src, &idx);
        for k in 0..4 {
            prop_assert_eq!(v[k], src[idx[k]]);
        }
    }

    #[test]
    fn load_store_roundtrip_any_offset(
        data in prop::collection::vec(finite_f32(), 8..64),
        off_seed in any::<usize>(),
    ) {
        let off = off_seed % (data.len() - 7);
        let v = VecF32::<8>::load(&data, off);
        let mut out = vec![0.0f32; data.len()];
        v.store(&mut out, off);
        prop_assert_eq!(&out[off..off + 8], &data[off..off + 8]);
    }
}
