//! Property tests: every SIMD lane operation agrees with its scalar
//! counterpart on seeded-random inputs, for both supported widths.
//!
//! The workspace builds offline, so these sweeps are hand-rolled seeded
//! loops rather than proptest strategies.

use cl_vec::{simd_apply, simd_apply2, VecF32};

/// Deterministic xorshift64* stream, kept local so cl-vec stays
/// dependency-free (it is the root of the workspace dependency graph).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bounded to avoid inf/NaN arithmetic edge cases; lane ops are IEEE
    /// pass-throughs either way.
    fn finite(&mut self) -> f32 {
        self.f32(-1e6, 1e6)
    }

    fn pos(&mut self) -> f32 {
        self.f32(1e-3, 1e4)
    }

    fn array<const N: usize>(&mut self) -> [f32; N] {
        std::array::from_fn(|_| self.finite())
    }
}

const CASES: usize = 128;

#[test]
fn binary_ops_match_scalar_4() {
    let mut rng = Rng::new(0x51);
    for _ in 0..CASES {
        let a: [f32; 4] = rng.array();
        let b: [f32; 4] = rng.array();
        let va = VecF32(a);
        let vb = VecF32(b);
        for k in 0..4 {
            assert_eq!((va + vb)[k], a[k] + b[k]);
            assert_eq!((va - vb)[k], a[k] - b[k]);
            assert_eq!((va * vb)[k], a[k] * b[k]);
            assert_eq!(va.min(vb)[k], a[k].min(b[k]));
            assert_eq!(va.max(vb)[k], a[k].max(b[k]));
            assert_eq!((-va)[k], -a[k]);
        }
    }
}

#[test]
fn binary_ops_match_scalar_8() {
    let mut rng = Rng::new(0x52);
    for _ in 0..CASES {
        let a: [f32; 8] = rng.array();
        let b: [f32; 8] = rng.array();
        let va = VecF32(a);
        let vb = VecF32(b);
        for k in 0..8 {
            assert_eq!((va * vb + va)[k], a[k] * b[k] + a[k]);
        }
    }
}

#[test]
fn mul_add_matches_scalar() {
    let mut rng = Rng::new(0x53);
    for _ in 0..CASES {
        let a: [f32; 4] = rng.array();
        let b: [f32; 4] = rng.array();
        let c: [f32; 4] = rng.array();
        let r = VecF32(a).mul_add(VecF32(b), VecF32(c));
        for k in 0..4 {
            assert_eq!(r[k], a[k] * b[k] + c[k]);
        }
    }
}

#[test]
fn math_fns_match_scalar() {
    let mut rng = Rng::new(0x54);
    for _ in 0..CASES {
        let a: [f32; 4] = std::array::from_fn(|_| rng.pos());
        let v = VecF32(a);
        for (k, &x) in a.iter().enumerate() {
            assert_eq!(v.sqrt()[k], x.sqrt());
            assert_eq!(v.ln()[k], x.ln());
            assert_eq!(v.rsqrt()[k], 1.0 / x.sqrt());
        }
    }
}

#[test]
fn hsum_matches_iterative_sum() {
    let mut rng = Rng::new(0x55);
    for _ in 0..CASES {
        let a: [f32; 4] = rng.array();
        let expected: f32 = a.iter().sum();
        assert_eq!(VecF32(a).hsum(), expected);
    }
}

#[test]
fn select_is_lanewise() {
    let mut rng = Rng::new(0x56);
    for _ in 0..CASES {
        let mask: [bool; 4] = std::array::from_fn(|_| rng.bool());
        let a: [f32; 4] = rng.array();
        let b: [f32; 4] = rng.array();
        let r = VecF32::select(mask, VecF32(a), VecF32(b));
        for k in 0..4 {
            assert_eq!(r[k], if mask[k] { a[k] } else { b[k] });
        }
    }
}

#[test]
fn simd_apply_equals_scalar_loop() {
    let mut rng = Rng::new(0x57);
    for _ in 0..CASES {
        let n = rng.usize(200);
        let data: Vec<f32> = (0..n).map(|_| rng.finite()).collect();
        let mut simd_out = vec![0.0f32; data.len()];
        simd_apply::<4>(&data, &mut simd_out, |v| v * v + v, |x| x * x + x);
        let scalar_out: Vec<f32> = data.iter().map(|&x| x * x + x).collect();
        assert_eq!(simd_out, scalar_out);
    }
}

#[test]
fn simd_apply2_equals_scalar_loop() {
    let mut rng = Rng::new(0x58);
    for _ in 0..CASES {
        let n = rng.usize(200);
        let seed_a = rng.finite();
        let seed_b = rng.finite();
        let a: Vec<f32> = (0..n).map(|i| seed_a + i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| seed_b - i as f32).collect();
        let mut out = vec![0.0f32; n];
        simd_apply2::<8>(&a, &b, &mut out, |x, y| x - y, |x, y| x - y);
        for i in 0..n {
            assert_eq!(out[i], a[i] - b[i]);
        }
    }
}

#[test]
fn gather_matches_indexing() {
    let mut rng = Rng::new(0x59);
    for _ in 0..CASES {
        let len = 1 + rng.usize(63);
        let src: Vec<f32> = (0..len).map(|_| rng.finite()).collect();
        let idx: [usize; 4] = std::array::from_fn(|_| rng.usize(len));
        let v = VecF32::<4>::gather(&src, &idx);
        for k in 0..4 {
            assert_eq!(v[k], src[idx[k]]);
        }
    }
}

#[test]
fn load_store_roundtrip_any_offset() {
    let mut rng = Rng::new(0x5A);
    for _ in 0..CASES {
        let len = 8 + rng.usize(56);
        let data: Vec<f32> = (0..len).map(|_| rng.finite()).collect();
        let off = rng.usize(data.len() - 7);
        let v = VecF32::<8>::load(&data, off);
        let mut out = vec![0.0f32; data.len()];
        v.store(&mut out, off);
        assert_eq!(&out[off..off + 8], &data[off..off + 8]);
    }
}
