//! # cl-vec — vectorization engine and vectorizability analysis
//!
//! Section II-E / III-F of the reproduced paper contrasts two compiler
//! strategies on the *same* hardware SIMD units:
//!
//! * **OpenCL implicit vectorization** — the kernel compiler packs `W`
//!   adjacent *workitems* into the lanes of one SIMD instruction. No
//!   dependence analysis is needed: the NDRange contract already says
//!   workitems are independent. ([`analysis::analyze_opencl_kernel`])
//! * **OpenMP loop auto-vectorization** — the compiler must prove a loop
//!   legal to vectorize: countable, single entry/exit, straight-line body,
//!   contiguous access, no loop-carried dependences
//!   ([`analysis::LoopVectorizer`], implementing the rules of the Intel
//!   auto-vectorization guide the paper cites as \[17\]).
//!
//! Both strategies, when they succeed, execute through the same portable
//! lane type [`VecF32`], an array-backed vector that LLVM reliably lowers to
//! SIMD at `opt-level ≥ 2`, so wall-clock experiments exercise real vector
//! units.

pub mod analysis;
pub mod estimate;
pub mod ir;
mod lanes;

pub use analysis::{
    analyze_opencl_kernel, LoopVectorizer, Reason, VectorizationReport, VectorizerPolicy,
};
pub use estimate::{estimate, LoopShape, SpeedupEstimate};
pub use ir::{ArrayId, IndexExpr, Loop, MathFn, Op, Operand, Stmt, Temp, TripCount};
pub use lanes::{simd_apply, simd_apply2, F32x4, F32x8, VecF32};
