//! Vectorization *profitability* estimation — the second half of what an
//! auto-vectorizer does after legality (Section II-E's "programs should
//! satisfy certain conditions to fully take advantage" is about both).
//!
//! Given a legal vectorization and the loop's shape, estimate the realized
//! speedup including the effects the Intel guide \[17\] warns about:
//!
//! * **remainder loops** — trip counts that are not width-multiples run a
//!   scalar tail;
//! * **alignment peeling** — misaligned bases peel up to `W−1` scalar
//!   iterations;
//! * **gathers** — non-contiguous lanes load element-by-element.

use crate::analysis::VectorizationReport;

/// Shape facts about one executed loop instance.
#[derive(Debug, Clone, Copy)]
pub struct LoopShape {
    /// Runtime trip count.
    pub trip_count: u64,
    /// Whether the base pointers are vector-aligned (peeling if not).
    pub aligned: bool,
    /// Fraction of the body's work that is vectorizable arithmetic
    /// (the rest — address math, control — stays scalar-ish). 0..=1.
    pub vector_fraction: f64,
}

impl LoopShape {
    pub fn new(trip_count: u64) -> Self {
        LoopShape {
            trip_count,
            aligned: true,
            vector_fraction: 1.0,
        }
    }

    pub fn misaligned(mut self) -> Self {
        self.aligned = false;
        self
    }

    /// Set the vectorizable fraction. Out-of-range values are clamped into
    /// `0..=1` and NaN is rejected (falls back to fully-scalar `0.0`)
    /// rather than poisoning every downstream cost ratio: shapes come from
    /// measured profiles, where a degenerate denominator can produce
    /// `-0.01`, `1.0000002`, or `0/0` without the caller noticing.
    pub fn with_vector_fraction(mut self, f: f64) -> Self {
        self.vector_fraction = if f.is_nan() { 0.0 } else { f.clamp(0.0, 1.0) };
        self
    }
}

/// Estimated execution profile of a (possibly) vectorized loop instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupEstimate {
    /// Iterations executed in vector form.
    pub vector_iterations: u64,
    /// Iterations executed scalar (peel + remainder, or everything when
    /// the loop did not vectorize).
    pub scalar_iterations: u64,
    /// Estimated speedup over fully-scalar execution.
    pub speedup: f64,
}

/// Estimate the realized speedup of `report` applied to a loop of `shape`.
pub fn estimate(report: &VectorizationReport, shape: LoopShape) -> SpeedupEstimate {
    let n = shape.trip_count;
    if !report.vectorized || n == 0 {
        return SpeedupEstimate {
            vector_iterations: 0,
            scalar_iterations: n,
            speedup: 1.0,
        };
    }
    let w = report.width as u64;
    // Peel to alignment, then main vector body, then remainder.
    let peel = if shape.aligned { 0 } else { (w - 1).min(n) };
    let after_peel = n - peel;
    let vector_iters = after_peel / w * w;
    let remainder = after_peel - vector_iters;
    let scalar_iters = peel + remainder;

    // Per-lane-step cost relative to one scalar iteration.
    let lane_step_cost = if report.uses_gather { 2.0 } else { 1.0 };
    // Amdahl over the vectorizable fraction of the body.
    let f = shape.vector_fraction;
    let vector_body_cost =
        (vector_iters as f64 / w as f64) * lane_step_cost * f + vector_iters as f64 * (1.0 - f);
    let total_cost = vector_body_cost + scalar_iters as f64;
    let speedup = n as f64 / total_cost.max(1e-12);

    SpeedupEstimate {
        vector_iterations: vector_iters,
        scalar_iterations: scalar_iters,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::VectorizationReport;

    fn vec_report(width: usize, gather: bool) -> VectorizationReport {
        VectorizationReport {
            vectorized: true,
            reasons: vec![],
            width,
            uses_gather: gather,
        }
    }

    fn scalar_report() -> VectorizationReport {
        VectorizationReport {
            vectorized: false,
            reasons: vec![crate::Reason::ControlFlow],
            width: 1,
            uses_gather: false,
        }
    }

    #[test]
    fn long_aligned_loops_approach_full_width() {
        let e = estimate(&vec_report(4, false), LoopShape::new(1 << 20));
        assert!(e.speedup > 3.99, "{e:?}");
        assert_eq!(e.scalar_iterations, 0);
    }

    #[test]
    fn refused_loops_are_scalar() {
        let e = estimate(&scalar_report(), LoopShape::new(1000));
        assert_eq!(e.speedup, 1.0);
        assert_eq!(e.scalar_iterations, 1000);
        assert_eq!(e.vector_iterations, 0);
    }

    #[test]
    fn remainder_hurts_short_loops() {
        // Trip 7 at width 4: one vector step + 3 scalar = cost 4 vs 7.
        let e = estimate(&vec_report(4, false), LoopShape::new(7));
        assert_eq!(e.vector_iterations, 4);
        assert_eq!(e.scalar_iterations, 3);
        assert!((e.speedup - 7.0 / 4.0).abs() < 1e-12);
        // Very long loops do not care.
        let long = estimate(&vec_report(4, false), LoopShape::new(4003));
        assert!(long.speedup > 3.9);
    }

    #[test]
    fn peeling_adds_scalar_iterations() {
        let aligned = estimate(&vec_report(4, false), LoopShape::new(64));
        let misaligned = estimate(&vec_report(4, false), LoopShape::new(64).misaligned());
        assert_eq!(aligned.scalar_iterations, 0);
        assert_eq!(misaligned.scalar_iterations, 3 + 1); // 3 peel + 1 remainder
        assert!(misaligned.speedup < aligned.speedup);
    }

    #[test]
    fn gathers_halve_the_lane_benefit() {
        let clean = estimate(&vec_report(4, false), LoopShape::new(4096));
        let gather = estimate(&vec_report(4, true), LoopShape::new(4096));
        assert!(
            (gather.speedup - clean.speedup / 2.0).abs() < 0.01,
            "{gather:?}"
        );
    }

    #[test]
    fn amdahl_caps_partially_vector_bodies() {
        let e = estimate(
            &vec_report(4, false),
            LoopShape::new(1 << 16).with_vector_fraction(0.5),
        );
        // 50% scalar body: speedup = 1 / (0.5/4 + 0.5) = 1.6.
        assert!((e.speedup - 1.6).abs() < 0.01, "{e:?}");
    }

    #[test]
    fn degenerate_vector_fractions_are_sanitized() {
        // Overshoot from float noise clamps to the boundary.
        let hi = LoopShape::new(64).with_vector_fraction(1.0 + 1e-7);
        assert_eq!(hi.vector_fraction, 1.0);
        let lo = LoopShape::new(64).with_vector_fraction(-0.01);
        assert_eq!(lo.vector_fraction, 0.0);
        // NaN (e.g. a 0/0 profile ratio) degrades to fully scalar.
        let nan = LoopShape::new(64).with_vector_fraction(f64::NAN);
        assert_eq!(nan.vector_fraction, 0.0);
        // And the sanitized shapes keep the estimate finite and sane.
        let e = estimate(&vec_report(4, false), nan);
        assert!(e.speedup.is_finite());
        assert!((e.speedup - 1.0).abs() < 1e-9, "{e:?}");
        let e = estimate(&vec_report(4, false), hi);
        assert!(e.speedup.is_finite() && e.speedup > 1.0);
    }

    #[test]
    fn zero_trip_loop_is_neutral() {
        let e = estimate(&vec_report(4, false), LoopShape::new(0));
        assert_eq!(e.speedup, 1.0);
    }

    #[test]
    fn tiny_trip_below_width_stays_scalar() {
        let e = estimate(&vec_report(8, false), LoopShape::new(5));
        assert_eq!(e.vector_iterations, 0);
        assert_eq!(e.scalar_iterations, 5);
        assert!((e.speedup - 1.0).abs() < 1e-12);
    }
}
