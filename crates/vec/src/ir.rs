//! A miniature loop IR — just enough structure to express the
//! vectorization-legality questions of the Intel auto-vectorization guide
//! (the paper's reference \[17\]): countability, control flow, access
//! strides, and cross-iteration dependences.

/// Identifier of an array object referenced by the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Identifier of an iteration-private scalar temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Temp(pub u32);

/// An affine index expression in the loop variable: `stride·i + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexExpr {
    pub stride: i64,
    pub offset: i64,
}

impl IndexExpr {
    /// The identity index `i`.
    pub fn linear() -> Self {
        IndexExpr {
            stride: 1,
            offset: 0,
        }
    }

    /// `i + offset`.
    pub fn shifted(offset: i64) -> Self {
        IndexExpr { stride: 1, offset }
    }

    /// `stride·i`.
    pub fn strided(stride: i64) -> Self {
        IndexExpr { stride, offset: 0 }
    }

    /// A loop-invariant index (`stride == 0`).
    pub fn constant(offset: i64) -> Self {
        IndexExpr { stride: 0, offset }
    }

    /// Evaluate at iteration `i`.
    pub fn at(&self, i: i64) -> i64 {
        self.stride * i + self.offset
    }
}

/// Value operands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    Temp(Temp),
    Const(f64),
    /// The loop induction variable itself (as a value).
    Induction,
}

/// Scalar binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    CmpLt,
}

/// Math intrinsics a vector math library (SVML-style) provides; calls to
/// these do not block vectorization, unlike unknown calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn {
    Sqrt,
    Exp,
    Log,
}

/// Statements of a loop body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = array[index]`
    Load {
        dst: Temp,
        array: ArrayId,
        index: IndexExpr,
    },
    /// `array[index] = src`
    Store {
        array: ArrayId,
        index: IndexExpr,
        src: Operand,
    },
    /// `dst = lhs op rhs`
    BinOp {
        dst: Temp,
        op: Op,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = fn(arg)` with a known math intrinsic.
    MathCall {
        dst: Temp,
        func: MathFn,
        arg: Operand,
    },
    /// `dst = extern_fn(arg)` — an opaque call the compiler cannot analyze.
    OpaqueCall { dst: Temp, arg: Operand },
    /// `acc = acc ⊕ value` — a loop-carried scalar (reduction pattern).
    AccUpdate { op: Op, value: Operand },
    /// Structured branch on a data-dependent condition.
    If {
        cond: Operand,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// Early exit from the loop.
    Break,
}

/// How many times the loop runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCount {
    /// Known at compile time.
    Constant(u64),
    /// Known before the loop starts (runtime `n`) — still countable.
    Runtime,
    /// Exit depends on values computed inside the loop — uncountable.
    DataDependent,
}

/// A candidate loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    pub trip: TripCount,
    pub body: Vec<Stmt>,
}

impl Loop {
    pub fn new(trip: TripCount, body: Vec<Stmt>) -> Self {
        Loop { trip, body }
    }

    /// Visit every statement, including nested `If` bodies.
    pub fn for_each_stmt<'a>(&'a self, mut f: impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                if let Stmt::If {
                    then_body,
                    else_body,
                    ..
                } = s
                {
                    walk(then_body, f);
                    walk(else_body, f);
                }
            }
        }
        walk(&self.body, &mut f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_expr_evaluates() {
        assert_eq!(IndexExpr::linear().at(5), 5);
        assert_eq!(IndexExpr::shifted(-1).at(5), 4);
        assert_eq!(IndexExpr::strided(2).at(5), 10);
        assert_eq!(IndexExpr::constant(7).at(5), 7);
    }

    #[test]
    fn walker_reaches_nested_statements() {
        let l = Loop::new(
            TripCount::Runtime,
            vec![Stmt::If {
                cond: Operand::Const(1.0),
                then_body: vec![Stmt::Break],
                else_body: vec![Stmt::AccUpdate {
                    op: Op::Add,
                    value: Operand::Const(1.0),
                }],
            }],
        );
        let mut count = 0;
        l.for_each_stmt(|_| count += 1);
        assert_eq!(count, 3);
    }
}
