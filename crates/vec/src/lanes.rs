//! Portable SIMD lane type.
//!
//! `VecF32<W>` is a `[f32; W]` newtype whose element-wise operators compile
//! to SIMD at `opt-level ≥ 2` (LLVM auto-vectorizes fixed-size array loops
//! reliably). The study's kernels use it for both the OpenCL implicit
//! vectorization path (lanes = adjacent workitems) and the vectorized OpenMP
//! loops (lanes = adjacent iterations).

use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// A fixed-width vector of `f32` lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(16))]
pub struct VecF32<const W: usize>(pub [f32; W]);

/// SSE-width vector (the paper's machine: SSE 4.2, 4 × f32).
pub type F32x4 = VecF32<4>;
/// AVX-width vector (for the SIMD-width ablation).
pub type F32x8 = VecF32<8>;

impl<const W: usize> VecF32<W> {
    /// All lanes set to `v`.
    #[inline]
    pub fn splat(v: f32) -> Self {
        VecF32([v; W])
    }

    /// All lanes zero.
    #[inline]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Load `W` consecutive elements from `src` starting at `offset`.
    #[inline]
    pub fn load(src: &[f32], offset: usize) -> Self {
        let mut out = [0.0f32; W];
        out.copy_from_slice(&src[offset..offset + W]);
        VecF32(out)
    }

    /// Gather `src[idx[k]]` into lane `k` (the slow path of non-contiguous
    /// access the paper's Section III-F discusses).
    #[inline]
    pub fn gather(src: &[f32], idx: &[usize; W]) -> Self {
        let mut out = [0.0f32; W];
        for k in 0..W {
            out[k] = src[idx[k]];
        }
        VecF32(out)
    }

    /// Store all lanes to `dst` starting at `offset`.
    #[inline]
    pub fn store(self, dst: &mut [f32], offset: usize) {
        dst[offset..offset + W].copy_from_slice(&self.0);
    }

    /// Fused-style multiply-add: `self * a + b` (lowered to FMA when the
    /// target has it; otherwise mul+add — lane semantics are what matter).
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        VecF32(std::array::from_fn(|k| self.0[k] * a.0[k] + b.0[k]))
    }

    /// Lane-wise square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        VecF32(std::array::from_fn(|k| self.0[k].sqrt()))
    }

    /// Lane-wise reciprocal square root.
    #[inline]
    pub fn rsqrt(self) -> Self {
        VecF32(std::array::from_fn(|k| 1.0 / self.0[k].sqrt()))
    }

    /// Lane-wise natural exponential.
    #[inline]
    pub fn exp(self) -> Self {
        VecF32(std::array::from_fn(|k| self.0[k].exp()))
    }

    /// Lane-wise natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        VecF32(std::array::from_fn(|k| self.0[k].ln()))
    }

    /// Lane-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        VecF32(std::array::from_fn(|k| self.0[k].min(o.0[k])))
    }

    /// Lane-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        VecF32(std::array::from_fn(|k| self.0[k].max(o.0[k])))
    }

    /// Lane-wise select: lane `k` is `a[k]` where `mask[k]`, else `b[k]`
    /// (branchless divergence handling, as a predicating vectorizer emits).
    #[inline]
    pub fn select(mask: [bool; W], a: Self, b: Self) -> Self {
        VecF32(std::array::from_fn(
            |k| if mask[k] { a.0[k] } else { b.0[k] },
        ))
    }

    /// Horizontal sum of all lanes.
    #[inline]
    pub fn hsum(self) -> f32 {
        self.0.iter().sum()
    }

    /// Number of lanes.
    pub const fn width() -> usize {
        W
    }
}

macro_rules! lane_op {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const W: usize> $trait for VecF32<W> {
            type Output = Self;
            #[inline]
            fn $method(self, rhs: Self) -> Self {
                VecF32(std::array::from_fn(|k| self.0[k] $op rhs.0[k]))
            }
        }
    };
}

lane_op!(Add, add, +);
lane_op!(Sub, sub, -);
lane_op!(Mul, mul, *);
lane_op!(Div, div, /);

impl<const W: usize> Neg for VecF32<W> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        VecF32(std::array::from_fn(|k| -self.0[k]))
    }
}

impl<const W: usize> Index<usize> for VecF32<W> {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        &self.0[i]
    }
}

impl<const W: usize> IndexMut<usize> for VecF32<W> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.0[i]
    }
}

/// Apply `f` lane-wise over `src`, writing `dst`, in `W`-wide chunks with a
/// scalar remainder loop — the canonical vectorized elementwise map.
pub fn simd_apply<const W: usize>(
    src: &[f32],
    dst: &mut [f32],
    f: impl Fn(VecF32<W>) -> VecF32<W>,
    scalar: impl Fn(f32) -> f32,
) {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    let main = n - n % W;
    let mut i = 0;
    while i < main {
        f(VecF32::load(src, i)).store(dst, i);
        i += W;
    }
    for k in main..n {
        dst[k] = scalar(src[k]);
    }
}

/// Two-input variant of [`simd_apply`].
pub fn simd_apply2<const W: usize>(
    a: &[f32],
    b: &[f32],
    dst: &mut [f32],
    f: impl Fn(VecF32<W>, VecF32<W>) -> VecF32<W>,
    scalar: impl Fn(f32, f32) -> f32,
) {
    assert_eq!(a.len(), dst.len());
    assert_eq!(b.len(), dst.len());
    let n = a.len();
    let main = n - n % W;
    let mut i = 0;
    while i < main {
        f(VecF32::load(a, i), VecF32::load(b, i)).store(dst, i);
        i += W;
    }
    for k in main..n {
        dst[k] = scalar(a[k], b[k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_lane_wise() {
        let a = VecF32([1.0, 2.0, 3.0, 4.0]);
        let b = VecF32([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).0, [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).0, [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).0, [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).0, [10.0, 10.0, 10.0, 10.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F32x4::load(&src, 1);
        assert_eq!(v.0, [1.0, 2.0, 3.0, 4.0]);
        let mut dst = [0.0f32; 6];
        v.store(&mut dst, 2);
        assert_eq!(dst, [0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gather_pulls_scattered_lanes() {
        let src = [10.0, 11.0, 12.0, 13.0, 14.0];
        let v = F32x4::gather(&src, &[4, 0, 2, 2]);
        assert_eq!(v.0, [14.0, 10.0, 12.0, 12.0]);
    }

    #[test]
    fn mul_add_and_hsum() {
        let a = F32x4::splat(2.0);
        let b = VecF32([1.0, 2.0, 3.0, 4.0]);
        let c = F32x4::splat(1.0);
        let r = a.mul_add(b, c);
        assert_eq!(r.0, [3.0, 5.0, 7.0, 9.0]);
        assert_eq!(r.hsum(), 24.0);
    }

    #[test]
    fn math_lanes_match_scalar() {
        let v = VecF32([1.0, 4.0, 9.0, 16.0]);
        assert_eq!(v.sqrt().0, [1.0, 2.0, 3.0, 4.0]);
        for k in 0..4 {
            assert!((v.exp()[k] - v[k].exp()).abs() < v[k].exp() * 1e-6);
            assert!((v.ln()[k] - v[k].ln()).abs() < 1e-6);
        }
    }

    #[test]
    fn select_blends() {
        let a = F32x4::splat(1.0);
        let b = F32x4::splat(2.0);
        let r = F32x4::select([true, false, true, false], a, b);
        assert_eq!(r.0, [1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn min_max() {
        let a = VecF32([1.0, 5.0, 3.0, 8.0]);
        let b = VecF32([2.0, 4.0, 3.0, 7.0]);
        assert_eq!(a.min(b).0, [1.0, 4.0, 3.0, 7.0]);
        assert_eq!(a.max(b).0, [2.0, 5.0, 3.0, 8.0]);
    }

    #[test]
    fn simd_apply_handles_remainder() {
        let src: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 11];
        simd_apply::<4>(&src, &mut dst, |v| v * v, |x| x * x);
        for (i, &d) in dst.iter().enumerate() {
            assert_eq!(d, (i * i) as f32);
        }
    }

    #[test]
    fn simd_apply2_adds() {
        let a: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..9).map(|i| (2 * i) as f32).collect();
        let mut dst = vec![0.0f32; 9];
        simd_apply2::<4>(&a, &b, &mut dst, |x, y| x + y, |x, y| x + y);
        for (i, &d) in dst.iter().enumerate() {
            assert_eq!(d, (3 * i) as f32);
        }
    }

    #[test]
    fn width_is_const() {
        assert_eq!(F32x4::width(), 4);
        assert_eq!(F32x8::width(), 8);
    }
}
