//! Vectorization-legality analysis for the two programming models.
//!
//! [`LoopVectorizer`] answers "would a loop auto-vectorizer accept this
//! OpenMP-style loop?", applying the conditions of the Intel guide (\[17\] in
//! the paper): the loop must be countable, have a single entry and single
//! exit, straight-line control flow, (near-)contiguous memory access, and no
//! loop-carried dependences. [`analyze_opencl_kernel`] answers the same
//! question for the OpenCL strategy, which packs *workitems* into lanes and
//! therefore needs none of the dependence reasoning — the source of the
//! Figure 10/11 asymmetry.

use std::collections::BTreeMap;

use crate::ir::{ArrayId, IndexExpr, Loop, Stmt, TripCount};

/// Why vectorization was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// Trip count depends on data computed in the loop.
    Uncountable,
    /// `break` (second exit) in the body.
    MultipleExits,
    /// Data-dependent branch in the body.
    ControlFlow,
    /// A reference with stride ∉ {0, ±1} (would need gather/scatter).
    NonContiguous(ArrayId),
    /// A cross-iteration dependence through memory on this array.
    LoopCarriedDependence(ArrayId),
    /// A loop-carried scalar (reduction chain) under strict FP semantics.
    LoopCarriedScalar,
    /// A call the compiler cannot see through.
    OpaqueCall,
}

/// Outcome of an analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorizationReport {
    /// Whether the compiler vectorizes the code.
    pub vectorized: bool,
    /// Refusal reasons (empty when `vectorized`).
    pub reasons: Vec<Reason>,
    /// Vector width used when vectorized.
    pub width: usize,
    /// Whether the vectorized form needs gather loads (slower lanes).
    pub uses_gather: bool,
}

impl VectorizationReport {
    fn refused(reasons: Vec<Reason>) -> Self {
        VectorizationReport {
            vectorized: false,
            reasons,
            width: 1,
            uses_gather: false,
        }
    }

    /// Modelled speedup factor over scalar execution: `width` when clean,
    /// halved when gathers are needed, 1 when refused.
    pub fn speedup(&self) -> f64 {
        if !self.vectorized {
            1.0
        } else if self.uses_gather {
            self.width as f64 / 2.0
        } else {
            self.width as f64
        }
    }
}

/// Policy knobs of the modelled compiler.
#[derive(Debug, Clone, Copy)]
pub struct VectorizerPolicy {
    /// Target vector width in f32 lanes (SSE 4.2 ⇒ 4).
    pub width: usize,
    /// Vectorize FP reductions (requires relaxed FP; Intel `-fp-model fast`).
    /// Off by default — the strict-FP behaviour behind Figure 11.
    pub relaxed_fp_reductions: bool,
    /// If-convert simple branches into masked/blended lanes.
    pub if_conversion: bool,
}

impl Default for VectorizerPolicy {
    fn default() -> Self {
        VectorizerPolicy {
            width: 4,
            relaxed_fp_reductions: false,
            if_conversion: false,
        }
    }
}

/// The OpenMP-style loop auto-vectorizer model.
#[derive(Debug, Clone, Default)]
pub struct LoopVectorizer {
    pub policy: VectorizerPolicy,
}

impl LoopVectorizer {
    pub fn new(policy: VectorizerPolicy) -> Self {
        LoopVectorizer { policy }
    }

    /// Apply the legality rules to `l`.
    pub fn analyze(&self, l: &Loop) -> VectorizationReport {
        let mut reasons = Vec::new();

        // Rule 1: countable.
        if l.trip == TripCount::DataDependent {
            reasons.push(Reason::Uncountable);
        }

        // Rules 2-3: single exit, straight-line control flow; plus opaque
        // calls and loop-carried scalars; plus access-pattern collection.
        let mut loads: BTreeMap<ArrayId, Vec<IndexExpr>> = BTreeMap::new();
        let mut stores: BTreeMap<ArrayId, Vec<IndexExpr>> = BTreeMap::new();
        let mut uses_gather = false;
        l.for_each_stmt(|s| match s {
            Stmt::Break => reasons.push(Reason::MultipleExits),
            Stmt::If { .. } => {
                if !self.policy.if_conversion {
                    reasons.push(Reason::ControlFlow);
                }
            }
            Stmt::OpaqueCall { .. } => reasons.push(Reason::OpaqueCall),
            Stmt::AccUpdate { .. } => {
                if !self.policy.relaxed_fp_reductions {
                    reasons.push(Reason::LoopCarriedScalar);
                }
            }
            Stmt::Load { array, index, .. } => loads.entry(*array).or_default().push(*index),
            Stmt::Store { array, index, .. } => stores.entry(*array).or_default().push(*index),
            Stmt::BinOp { .. } | Stmt::MathCall { .. } => {}
        });

        // Rule 4: contiguous access (stride 0 = loop-invariant broadcast,
        // |stride| 1 = unit walk; anything else would need gather/scatter,
        // which this compiler generation refuses for stores and accepts
        // nowhere).
        for (arr, idxs) in loads.iter().chain(stores.iter()) {
            for ix in idxs {
                if ix.stride.unsigned_abs() > 1 {
                    reasons.push(Reason::NonContiguous(*arr));
                }
            }
        }

        // Rule 5: no loop-carried dependences. For each array with at least
        // one store, test every (store, access) pair for a solution
        // `store.at(i) == other.at(j)` with `i ≠ j` within the vector window.
        for (arr, sts) in &stores {
            let mut dependent = false;
            let empty = Vec::new();
            let lds = loads.get(arr).unwrap_or(&empty);
            for st in sts {
                for other in lds.iter().chain(sts.iter()) {
                    if Self::cross_iteration_alias(st, other, self.policy.width as i64) {
                        dependent = true;
                    }
                }
            }
            if dependent {
                reasons.push(Reason::LoopCarriedDependence(*arr));
            }
        }

        reasons.sort_by_key(|r| format!("{r:?}"));
        reasons.dedup();
        if reasons.is_empty() {
            VectorizationReport {
                vectorized: true,
                reasons,
                width: self.policy.width,
                uses_gather,
            }
        } else {
            // Gathers only matter when we vectorize.
            uses_gather = false;
            let _ = uses_gather;
            VectorizationReport::refused(reasons)
        }
    }

    /// Does `a.at(i) == b.at(j)` admit a solution with `0 < |i−j| < window`?
    fn cross_iteration_alias(a: &IndexExpr, b: &IndexExpr, window: i64) -> bool {
        if a == b {
            return false; // same element in the same iteration only
        }
        // Solve a.stride·i + a.offset == b.stride·j + b.offset for small
        // |i−j|. With equal strides s: distance d = (b.offset − a.offset)/s.
        if a.stride == b.stride {
            if a.stride == 0 {
                // Both loop-invariant: same element every iteration ⇒
                // dependence iff they alias at all.
                return a.offset == b.offset;
            }
            let diff = b.offset - a.offset;
            if diff % a.stride != 0 {
                return false;
            }
            let d = diff / a.stride;
            d != 0 && d.abs() < window
        } else {
            // Mixed strides (e.g. a store at `i` and a load at `2i`):
            // conservatively dependent — real compilers give up here too.
            true
        }
    }
}

/// The OpenCL implicit (cross-workitem) vectorizer model.
///
/// The kernel body is the `Loop` body viewed per-workitem; `IndexExpr`
/// strides are in the *global id*. Independence across workitems is
/// guaranteed by the NDRange contract, so dependence analysis is skipped
/// entirely. Only divergent control flow (without if-conversion) and opaque
/// calls refuse; non-contiguous access vectorizes with gathers.
pub fn analyze_opencl_kernel(body: &Loop, policy: VectorizerPolicy) -> VectorizationReport {
    let mut reasons = Vec::new();
    let mut uses_gather = false;
    body.for_each_stmt(|s| match s {
        // Divergent control flow: the Intel OpenCL compiler predicates
        // divergent kernels, and even the default CL compiler if-converts,
        // so `policy.if_conversion` is irrelevant on this path.
        Stmt::If { .. } => {}
        Stmt::OpaqueCall { .. } => reasons.push(Reason::OpaqueCall),
        Stmt::Load { index, .. } | Stmt::Store { index, .. } if index.stride.unsigned_abs() > 1 => {
            uses_gather = true;
        }
        // A loop-carried scalar inside one workitem does not cross lanes:
        // lanes are different workitems.
        _ => {}
    });
    reasons.dedup();
    if reasons.is_empty() {
        VectorizationReport {
            vectorized: true,
            reasons,
            width: policy.width,
            uses_gather,
        }
    } else {
        VectorizationReport::refused(reasons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{MathFn, Op, Operand, Temp};

    fn a(n: u32) -> ArrayId {
        ArrayId(n)
    }

    /// `c[i] = a[i] * b[i]` — the clean elementwise loop.
    fn clean_loop() -> Loop {
        Loop::new(
            TripCount::Runtime,
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::linear(),
                },
                Stmt::Load {
                    dst: Temp(1),
                    array: a(1),
                    index: IndexExpr::linear(),
                },
                Stmt::BinOp {
                    dst: Temp(2),
                    op: Op::Mul,
                    lhs: Operand::Temp(Temp(0)),
                    rhs: Operand::Temp(Temp(1)),
                },
                Stmt::Store {
                    array: a(2),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(2)),
                },
            ],
        )
    }

    #[test]
    fn clean_elementwise_loop_vectorizes() {
        let r = LoopVectorizer::default().analyze(&clean_loop());
        assert!(r.vectorized, "{:?}", r.reasons);
        assert_eq!(r.width, 4);
        assert_eq!(r.speedup(), 4.0);
    }

    #[test]
    fn data_dependent_trip_count_refused() {
        let mut l = clean_loop();
        l.trip = TripCount::DataDependent;
        let r = LoopVectorizer::default().analyze(&l);
        assert!(!r.vectorized);
        assert!(r.reasons.contains(&Reason::Uncountable));
    }

    #[test]
    fn break_refused() {
        let mut l = clean_loop();
        l.body.push(Stmt::Break);
        let r = LoopVectorizer::default().analyze(&l);
        assert!(r.reasons.contains(&Reason::MultipleExits));
    }

    #[test]
    fn branch_refused_without_if_conversion() {
        let mut l = clean_loop();
        l.body.push(Stmt::If {
            cond: Operand::Temp(Temp(2)),
            then_body: vec![],
            else_body: vec![],
        });
        let r = LoopVectorizer::default().analyze(&l);
        assert!(r.reasons.contains(&Reason::ControlFlow));
        // With if-conversion the same loop is accepted.
        let policy = VectorizerPolicy {
            if_conversion: true,
            ..Default::default()
        };
        assert!(LoopVectorizer::new(policy).analyze(&l).vectorized);
    }

    #[test]
    fn strided_access_refused() {
        // The paper's "noncontiguous memory access" factor: a[2i].
        let mut l = clean_loop();
        l.body[0] = Stmt::Load {
            dst: Temp(0),
            array: a(0),
            index: IndexExpr::strided(2),
        };
        let r = LoopVectorizer::default().analyze(&l);
        assert!(r.reasons.contains(&Reason::NonContiguous(a(0))));
    }

    #[test]
    fn backward_dependence_refused() {
        // c[i] = c[i-1] * 2 — the classic loop-carried flow dependence.
        let l = Loop::new(
            TripCount::Runtime,
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::shifted(-1),
                },
                Stmt::BinOp {
                    dst: Temp(1),
                    op: Op::Mul,
                    lhs: Operand::Temp(Temp(0)),
                    rhs: Operand::Const(2.0),
                },
                Stmt::Store {
                    array: a(0),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(1)),
                },
            ],
        );
        let r = LoopVectorizer::default().analyze(&l);
        assert!(r.reasons.contains(&Reason::LoopCarriedDependence(a(0))));
    }

    #[test]
    fn far_dependence_outside_window_allowed() {
        // c[i] = c[i-100]: distance 100 ≥ window 4 — safe to vectorize by 4.
        let l = Loop::new(
            TripCount::Runtime,
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::shifted(-100),
                },
                Stmt::Store {
                    array: a(0),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(0)),
                },
            ],
        );
        let r = LoopVectorizer::default().analyze(&l);
        assert!(r.vectorized, "{:?}", r.reasons);
    }

    #[test]
    fn same_index_load_store_is_not_a_dependence() {
        // c[i] = c[i] + 1 reads and writes the same iteration's element.
        let l = Loop::new(
            TripCount::Runtime,
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::linear(),
                },
                Stmt::BinOp {
                    dst: Temp(1),
                    op: Op::Add,
                    lhs: Operand::Temp(Temp(0)),
                    rhs: Operand::Const(1.0),
                },
                Stmt::Store {
                    array: a(0),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(1)),
                },
            ],
        );
        assert!(LoopVectorizer::default().analyze(&l).vectorized);
    }

    #[test]
    fn reduction_refused_under_strict_fp_but_allowed_relaxed() {
        // The Figure 11 pattern: a loop-carried FMUL chain.
        let l = Loop::new(
            TripCount::Constant(4),
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::linear(),
                },
                Stmt::AccUpdate {
                    op: Op::Mul,
                    value: Operand::Temp(Temp(0)),
                },
            ],
        );
        let strict = LoopVectorizer::default().analyze(&l);
        assert!(strict.reasons.contains(&Reason::LoopCarriedScalar));
        let relaxed = LoopVectorizer::new(VectorizerPolicy {
            relaxed_fp_reductions: true,
            ..Default::default()
        })
        .analyze(&l);
        assert!(relaxed.vectorized);
    }

    #[test]
    fn opaque_call_refused_math_call_allowed() {
        let mut l = clean_loop();
        l.body.push(Stmt::MathCall {
            dst: Temp(5),
            func: MathFn::Sqrt,
            arg: Operand::Temp(Temp(2)),
        });
        assert!(LoopVectorizer::default().analyze(&l).vectorized);
        l.body.push(Stmt::OpaqueCall {
            dst: Temp(6),
            arg: Operand::Temp(Temp(2)),
        });
        let r = LoopVectorizer::default().analyze(&l);
        assert!(r.reasons.contains(&Reason::OpaqueCall));
    }

    #[test]
    fn opencl_vectorizes_the_dependence_bound_kernel() {
        // The Figure 11 asymmetry: the same FMUL chain refused above (as an
        // OpenMP loop) vectorizes as an OpenCL kernel because lanes are
        // workitems, not iterations.
        let kernel_body = Loop::new(
            TripCount::Constant(4),
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::linear(), // contiguous in global id
                },
                Stmt::AccUpdate {
                    op: Op::Mul,
                    value: Operand::Temp(Temp(0)),
                },
            ],
        );
        let r = analyze_opencl_kernel(&kernel_body, VectorizerPolicy::default());
        assert!(r.vectorized);
        assert_eq!(r.width, 4);
    }

    #[test]
    fn opencl_strided_access_uses_gather() {
        let body = Loop::new(
            TripCount::Runtime,
            vec![Stmt::Load {
                dst: Temp(0),
                array: a(0),
                index: IndexExpr::strided(4),
            }],
        );
        let r = analyze_opencl_kernel(&body, VectorizerPolicy::default());
        assert!(r.vectorized);
        assert!(r.uses_gather);
        assert_eq!(r.speedup(), 2.0);
    }

    #[test]
    fn mixed_stride_store_is_conservatively_dependent() {
        // store a[i], load a[2i]: give up like a real compiler.
        let l = Loop::new(
            TripCount::Runtime,
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: a(0),
                    index: IndexExpr::strided(2),
                },
                Stmt::Store {
                    array: a(0),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(0)),
                },
            ],
        );
        let r = LoopVectorizer::default().analyze(&l);
        assert!(!r.vectorized);
        assert!(r.reasons.iter().any(|x| matches!(
            x,
            Reason::LoopCarriedDependence(_) | Reason::NonContiguous(_)
        )));
    }
}
