//! The four static lints over a [`KernelAccessSpec`].
//!
//! 1. **Disjoint writes** — proves no two distinct workitems (and in
//!    particular no two workgroups) write the same global buffer element,
//!    the contract the runtime's dynamic `validate_disjoint_writes`
//!    samples at execution time. A proof here subsumes the dynamic check.
//! 2. **Local races** — within each barrier interval, proves reads and
//!    writes to `__local` memory by distinct workitems never overlap.
//! 3. **Barrier divergence** — flags barriers executed under
//!    workitem-dependent control flow (undefined behavior in OpenCL; a
//!    hang on hardware queues).
//! 4. **Out of bounds** — proves every access index stays inside its
//!    buffer for the analyzed NDRange.

use crate::ir::{Access, AccessKind, Guard, Index, KernelAccessSpec, Target, Var};
use crate::prove::{
    canonicalize, cross_group_disjoint, definite_self_collision, index_interval, injective,
    pair_cross_group_disjoint, pair_disjoint, Canon, PairOutcome,
};

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    DisjointWrites,
    LocalRace,
    BarrierDivergence,
    OutOfBounds,
}

impl LintKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            LintKind::DisjointWrites => "disjoint-writes",
            LintKind::LocalRace => "local-race",
            LintKind::BarrierDivergence => "barrier-divergence",
            LintKind::OutOfBounds => "out-of-bounds",
        }
    }
}

/// How certain a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The property could not be proven; the dynamic fallback should run.
    Warning,
    /// The violation is proven to occur at this geometry.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: LintKind,
    pub severity: Severity,
    pub message: String,
}

/// Per-lint verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for every workitem of this launch.
    Proven,
    /// A violation is certain at this geometry.
    Violation,
    /// Not provable with the available reasoning; needs a dynamic check.
    Unknown,
}

impl Verdict {
    fn from_findings(findings: &[Finding], kind: LintKind) -> Verdict {
        let mine = findings.iter().filter(|f| f.kind == kind);
        let mut verdict = Verdict::Proven;
        for f in mine {
            match f.severity {
                Severity::Error => return Verdict::Violation,
                Severity::Warning => verdict = Verdict::Unknown,
            }
        }
        verdict
    }
}

/// The full analysis result for one kernel at one geometry.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub kernel: String,
    pub disjoint_writes: Verdict,
    pub local_races: Verdict,
    pub barrier_divergence: Verdict,
    pub bounds: Verdict,
    pub findings: Vec<Finding>,
    /// Global write accesses examined.
    pub checked_writes: usize,
    /// All accesses examined (reads, writes, atomics; global and local).
    pub checked_accesses: usize,
}

impl Analysis {
    /// No findings at all: every property proven.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }
}

/// Run all four lints.
pub fn analyze(spec: &KernelAccessSpec) -> Analysis {
    let mut findings = Vec::new();
    if let Err(e) = spec.geometry.validate() {
        findings.push(Finding {
            kind: LintKind::OutOfBounds,
            severity: Severity::Error,
            message: format!("invalid geometry: {e}"),
        });
        return finish(spec, findings, 0, 0);
    }
    let checked_writes = lint_disjoint_writes(spec, &mut findings);
    lint_local_races(spec, &mut findings);
    lint_barrier_divergence(spec, &mut findings);
    let checked_accesses = lint_bounds(spec, &mut findings);
    finish(spec, findings, checked_writes, checked_accesses)
}

fn finish(
    spec: &KernelAccessSpec,
    findings: Vec<Finding>,
    checked_writes: usize,
    checked_accesses: usize,
) -> Analysis {
    Analysis {
        kernel: spec.name.clone(),
        disjoint_writes: Verdict::from_findings(&findings, LintKind::DisjointWrites),
        local_races: Verdict::from_findings(&findings, LintKind::LocalRace),
        barrier_divergence: Verdict::from_findings(&findings, LintKind::BarrierDivergence),
        bounds: Verdict::from_findings(&findings, LintKind::OutOfBounds),
        findings,
        checked_writes,
        checked_accesses,
    }
}

/// Canonicalize an access, or `None` for opaque indices and empty guards.
fn canon_of(access: &Access, spec: &KernelAccessSpec) -> Option<Canon> {
    match &access.index {
        Index::Affine(a) => canonicalize(a, access.guard, &spec.geometry),
        Index::Opaque { .. } => None,
    }
}

/// Like [`canon_of`] but with the group dimensions collapsed: the domain of
/// a single workgroup (for `__local` reasoning).
fn canon_local(access: &Access, spec: &KernelAccessSpec) -> Option<Canon> {
    let mut c = canon_of(access, spec)?;
    c.bounds[3] = 1;
    c.bounds[4] = 1;
    c.bounds[5] = 1;
    Some(c)
}

// ---------------------------------------------------------------- lint 1 --

fn lint_disjoint_writes(spec: &KernelAccessSpec, findings: &mut Vec<Finding>) -> usize {
    let push = |findings: &mut Vec<Finding>, severity, message| {
        findings.push(Finding {
            kind: LintKind::DisjointWrites,
            severity,
            message,
        });
    };
    // (phase, access) list of plain writes per global buffer.
    let mut writes: Vec<Vec<(usize, &Access)>> = vec![Vec::new(); spec.global_buffers.len()];
    for (p, phase) in spec.phases.iter().enumerate() {
        for a in &phase.accesses {
            if let (Target::Global(b), AccessKind::Write) = (a.target, a.kind) {
                writes[b].push((p, a));
            }
        }
    }
    let mut checked = 0;
    for (b, buf_writes) in writes.iter().enumerate() {
        let name = &spec.global_buffers[b].name;
        checked += buf_writes.len();
        for (i, &(pi, ai)) in buf_writes.iter().enumerate() {
            // Self: the index must be injective over all active workitems
            // (same-phase concurrency) — opaque indices can't be proven.
            match canon_of(ai, spec) {
                None if matches!(ai.index, Index::Opaque { .. }) => push(
                    findings,
                    Severity::Warning,
                    format!("`{name}`: non-atomic write through a data-dependent index"),
                ),
                None => {} // empty guard: never executes
                Some(c) => {
                    if let Some(reason) = definite_self_collision(&c) {
                        push(findings, Severity::Error, format!("`{name}`: {reason}"));
                    } else if let Err(reason) = injective(&c) {
                        // Not fully injective; cross-group separation may
                        // still hold (intra-group collisions are what the
                        // dynamic validator tolerates only when ordered —
                        // within one phase they are a race).
                        push(
                            findings,
                            Severity::Warning,
                            format!("`{name}`: write indices not provably distinct: {reason}"),
                        );
                    } else if let Err(reason) = cross_group_disjoint(&c) {
                        push(findings, Severity::Warning, format!("`{name}`: {reason}"));
                    }
                }
            }
            // Pairs.
            for &(pj, aj) in buf_writes.iter().skip(i + 1) {
                if ai.index == aj.index && ai.guard == aj.guard {
                    // The identical access: distinct-item collisions are
                    // exactly the self injectivity case, already handled.
                    continue;
                }
                let (ca, cb) = match (canon_of(ai, spec), canon_of(aj, spec)) {
                    (Some(ca), Some(cb)) => (ca, cb),
                    _ => {
                        if matches!(ai.index, Index::Opaque { .. })
                            || matches!(aj.index, Index::Opaque { .. })
                        {
                            push(
                                findings,
                                Severity::Warning,
                                format!("`{name}`: write pair involves a data-dependent index"),
                            );
                        }
                        continue;
                    }
                };
                let outcome = if pi == pj {
                    pair_disjoint(&ca, &cb)
                } else {
                    // Different phases: the barrier orders intra-group
                    // accesses, so only cross-group overlap is a race.
                    pair_cross_group_disjoint(&ca, &cb)
                };
                match outcome {
                    PairOutcome::Disjoint => {}
                    PairOutcome::Collide(reason) => push(
                        findings,
                        Severity::Error,
                        format!("`{name}`: conflicting writes: {reason}"),
                    ),
                    PairOutcome::Unknown(reason) => push(
                        findings,
                        Severity::Warning,
                        format!("`{name}`: write overlap not ruled out: {reason}"),
                    ),
                }
            }
        }
    }
    checked
}

// ---------------------------------------------------------------- lint 2 --

fn lint_local_races(spec: &KernelAccessSpec, findings: &mut Vec<Finding>) {
    let push = |findings: &mut Vec<Finding>, severity, message| {
        findings.push(Finding {
            kind: LintKind::LocalRace,
            severity,
            message,
        });
    };
    for phase in &spec.phases {
        for (b, _) in spec.local_buffers.iter().enumerate() {
            let accesses: Vec<&Access> = phase
                .accesses
                .iter()
                .filter(|a| a.target == Target::Local(b))
                .collect();
            let name = format!("local {}", spec.local_buffers[b].name);
            for (i, ai) in accesses.iter().enumerate() {
                let writes_i = ai.kind != AccessKind::Read;
                // A write's own injectivity within the group.
                if writes_i && ai.kind == AccessKind::Write {
                    match canon_local(ai, spec) {
                        None if matches!(ai.index, Index::Opaque { .. }) => push(
                            findings,
                            Severity::Warning,
                            format!("`{name}`: non-atomic write through a data-dependent index"),
                        ),
                        None => {}
                        Some(c) => {
                            if let Some(reason) = definite_self_collision(&c) {
                                push(findings, Severity::Error, format!("`{name}`: {reason}"));
                            } else if let Err(reason) = injective(&c) {
                                push(
                                    findings,
                                    Severity::Warning,
                                    format!(
                                        "`{name}`: write indices not provably distinct within \
                                         the workgroup: {reason}"
                                    ),
                                );
                            }
                        }
                    }
                }
                for aj in accesses.iter().skip(i + 1) {
                    let writes_j = aj.kind != AccessKind::Read;
                    if !writes_i && !writes_j {
                        continue; // read/read never races
                    }
                    if ai.kind == AccessKind::AtomicUpdate && aj.kind == AccessKind::AtomicUpdate {
                        continue; // atomic/atomic collisions are serialized
                    }
                    if ai.index == aj.index && ai.guard == aj.guard {
                        // Same element touched by the same workitem only
                        // (collisions across items reduce to the write's
                        // own injectivity, handled above).
                        continue;
                    }
                    let (ca, cb) = match (canon_local(ai, spec), canon_local(aj, spec)) {
                        (Some(ca), Some(cb)) => (ca, cb),
                        _ => {
                            if matches!(ai.index, Index::Opaque { .. })
                                || matches!(aj.index, Index::Opaque { .. })
                            {
                                push(
                                    findings,
                                    Severity::Warning,
                                    format!(
                                        "`{name}`: access pair involves a data-dependent index"
                                    ),
                                );
                            }
                            continue;
                        }
                    };
                    match pair_disjoint(&ca, &cb) {
                        PairOutcome::Disjoint => {}
                        PairOutcome::Collide(reason) => push(
                            findings,
                            Severity::Error,
                            format!(
                                "`{name}`: unsynchronized overlap in one barrier interval: {reason}"
                            ),
                        ),
                        PairOutcome::Unknown(reason) => push(
                            findings,
                            Severity::Warning,
                            format!("`{name}`: possible intra-phase overlap: {reason}"),
                        ),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- lint 3 --

/// The proven-divergent barriers of a spec, as messages. Shared between the
/// divergence lint and the coarsening legality pass (a divergent barrier is
/// undefined behavior outright, so fusing across it is illegal a fortiori).
pub(crate) fn barrier_divergences(spec: &KernelAccessSpec) -> Vec<String> {
    let wg = spec.geometry.wg_size();
    let items = spec.geometry.items();
    spec.barriers
        .iter()
        .enumerate()
        .filter_map(|(i, &guard)| match guard {
            Guard::Always => None,
            Guard::LocalLeader if wg > 1 => Some(format!(
                "barrier {i} runs only on the workgroup leader; the other {} items never reach it",
                wg - 1
            )),
            Guard::LocalLeader => None,
            Guard::LocalLt(b) if b == 0 || b >= wg => None,
            Guard::LocalLt(b) => Some(format!("barrier {i} runs only for local ids < {b} of {wg}")),
            Guard::GlobalLt(n) if n >= items || n % wg == 0 => None,
            Guard::GlobalLt(n) => Some(format!(
                "barrier {i} under `global_id < {n}` splits workgroup {} ({} of {} items reach it)",
                n / wg,
                n % wg,
                wg
            )),
        })
        .collect()
}

fn lint_barrier_divergence(spec: &KernelAccessSpec, findings: &mut Vec<Finding>) {
    for message in barrier_divergences(spec) {
        findings.push(Finding {
            kind: LintKind::BarrierDivergence,
            severity: Severity::Error,
            message,
        });
    }
}

// ---------------------------------------------------------------- lint 4 --

/// Whether the interval computed for this access is attained (affine over
/// an exactly-known box domain) rather than an over-approximation.
fn interval_is_exact(access: &Access, spec: &KernelAccessSpec) -> bool {
    let geom = &spec.geometry;
    match &access.index {
        Index::Opaque { .. } => false,
        // A data-dependent term's extremes may never be attained.
        Index::Affine(a) if a.has_opaque() => false,
        Index::Affine(a) => match access.guard {
            Guard::Always | Guard::LocalLeader => true,
            Guard::GlobalLt(n) => n >= geom.items() || a.as_single(Var::GlobalLinear).is_some(),
            Guard::LocalLt(b) => {
                b >= geom.wg_size()
                    || a.as_single(Var::LocalLinear).is_some()
                    || (geom.local[1] == 1 && geom.local[2] == 1)
            }
        },
    }
}

fn lint_bounds(spec: &KernelAccessSpec, findings: &mut Vec<Finding>) -> usize {
    let mut checked = 0;
    for phase in &spec.phases {
        for a in &phase.accesses {
            checked += 1;
            let (name, len) = match a.target {
                Target::Global(i) => {
                    let b = &spec.global_buffers[i];
                    (b.name.clone(), b.len)
                }
                Target::Local(i) => {
                    let b = &spec.local_buffers[i];
                    (format!("local {}", b.name), b.len)
                }
            };
            let Some((lo, hi)) = index_interval(&a.index, a.guard, &spec.geometry) else {
                continue; // the guard admits no workitems
            };
            if lo >= 0 && hi < len as i128 {
                continue;
            }
            let exact = interval_is_exact(a, spec);
            let what = match a.kind {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
                AccessKind::AtomicUpdate => "atomic update",
            };
            findings.push(Finding {
                kind: LintKind::OutOfBounds,
                severity: if exact {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                message: format!(
                    "`{}`: {what} index range [{lo}, {hi}] {} buffer length {len}",
                    name,
                    if exact { "exceeds" } else { "may exceed" },
                ),
            });
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Affine, Guard, LintGeometry, SpecBuilder, Var};

    fn geom() -> LintGeometry {
        LintGeometry::d1(1024, 64)
    }

    /// The canonical clean kernel: `b[i] = a[i]·a[i]` under `i < n`.
    fn square_spec(n: usize) -> crate::ir::KernelAccessSpec {
        let mut b = SpecBuilder::new("square", geom());
        let a = b.buffer("a", n);
        let out = b.buffer("b", n);
        b.read(a, Affine::of(Var::GlobalLinear), Guard::GlobalLt(n));
        b.write(out, Affine::of(Var::GlobalLinear), Guard::GlobalLt(n));
        b.finish()
    }

    #[test]
    fn clean_kernel_proves_everything() {
        let r = analyze(&square_spec(1000));
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.disjoint_writes, Verdict::Proven);
        assert_eq!(r.bounds, Verdict::Proven);
        assert_eq!(r.checked_writes, 1);
        assert_eq!(r.checked_accesses, 2);
    }

    #[test]
    fn oob_is_detected_with_exact_interval() {
        // Buffer one element too short for the guarded range.
        let mut b = SpecBuilder::new("oob", geom());
        let out = b.buffer("out", 999);
        b.write(out, Affine::of(Var::GlobalLinear), Guard::GlobalLt(1000));
        let r = analyze(&b.finish());
        assert_eq!(r.bounds, Verdict::Violation);
        assert!(
            r.findings[0].message.contains("[0, 999]"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn negative_offset_is_out_of_bounds() {
        let mut b = SpecBuilder::new("neg", geom());
        let out = b.buffer("out", 2048);
        b.read(out, Affine::of(Var::GlobalLinear).plus(-1), Guard::Always);
        let r = analyze(&b.finish());
        assert_eq!(r.bounds, Verdict::Violation);
    }

    #[test]
    fn shared_write_slot_is_a_proven_violation() {
        // Every workitem writes out[group]: distinct items collide — the
        // structural race the dynamic validator misses when values are
        // bit-identical.
        let mut b = SpecBuilder::new("racy", geom());
        let out = b.buffer("out", 16);
        b.write(out, Affine::of(Var::GroupLinear), Guard::Always);
        let r = analyze(&b.finish());
        assert_eq!(r.disjoint_writes, Verdict::Violation);
        assert!(r.has_errors());
    }

    #[test]
    fn leader_guard_makes_group_slot_safe() {
        let mut b = SpecBuilder::new("reduce-out", geom());
        let out = b.buffer("partials", 16);
        b.write(out, Affine::of(Var::GroupLinear), Guard::LocalLeader);
        let r = analyze(&b.finish());
        assert_eq!(r.disjoint_writes, Verdict::Proven);
        assert_eq!(r.bounds, Verdict::Proven);
    }

    #[test]
    fn interleaved_coalesced_writes_prove_disjoint() {
        // vectoradd shape: c[k·i + j] for j = 0..k.
        let k = 4usize;
        let n = 1024 * k;
        let mut b = SpecBuilder::new("vectoradd", geom());
        let c = b.buffer("c", n);
        for j in 0..k {
            b.write(
                c,
                Affine::var(Var::GlobalLinear, k as i64).plus(j as i64),
                Guard::Always,
            );
        }
        let r = analyze(&b.finish());
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.checked_writes, k);
    }

    #[test]
    fn reduction_tree_local_phases_are_race_free() {
        // scratch[l] = x[gid]; then halving tree: read scratch[l + s],
        // write scratch[l], both under l < s, with barriers between.
        let wg = 64usize;
        let mut b = SpecBuilder::new("reduction", geom());
        let x = b.buffer("x", 1024);
        let partials = b.buffer("partials", 16);
        let scratch = b.local("scratch", wg);
        b.read(x, Affine::of(Var::GlobalLinear), Guard::Always);
        b.local_write(scratch, Affine::of(Var::LocalLinear), Guard::Always);
        let mut s = wg / 2;
        while s > 0 {
            b.barrier(Guard::Always);
            b.local_read(
                scratch,
                Affine::of(Var::LocalLinear).plus(s as i64),
                Guard::LocalLt(s),
            );
            b.local_write(scratch, Affine::of(Var::LocalLinear), Guard::LocalLt(s));
            s /= 2;
        }
        b.barrier(Guard::Always);
        b.write(partials, Affine::of(Var::GroupLinear), Guard::LocalLeader);
        let r = analyze(&b.finish());
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.local_races, Verdict::Proven);
        assert_eq!(r.disjoint_writes, Verdict::Proven);
    }

    #[test]
    fn in_place_tree_without_guard_tightening_races() {
        // Reading scratch[l + 1] while writing scratch[l] with every item
        // active: distinct items overlap inside one phase.
        let mut b = SpecBuilder::new("scan-broken", geom());
        let scratch = b.local("scratch", 65);
        b.local_read(scratch, Affine::of(Var::LocalLinear).plus(1), Guard::Always);
        b.local_write(scratch, Affine::of(Var::LocalLinear), Guard::Always);
        let r = analyze(&b.finish());
        assert_ne!(r.local_races, Verdict::Proven, "{:?}", r.findings);
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let mut b = SpecBuilder::new("div", geom());
        b.barrier(Guard::LocalLeader);
        let r = analyze(&b.finish());
        assert_eq!(r.barrier_divergence, Verdict::Violation);
        // A tail guard that splits a workgroup is divergent too.
        let mut b = SpecBuilder::new("div2", geom());
        b.barrier(Guard::GlobalLt(1000)); // 1000 % 64 != 0
        assert_eq!(analyze(&b.finish()).barrier_divergence, Verdict::Violation);
        // Uniform guards are fine.
        let mut b = SpecBuilder::new("uniform", geom());
        b.barrier(Guard::Always);
        b.barrier(Guard::GlobalLt(1024));
        b.barrier(Guard::GlobalLt(640)); // multiple of 64: whole groups
        assert_eq!(analyze(&b.finish()).barrier_divergence, Verdict::Proven);
    }

    #[test]
    fn atomic_histogram_is_exempt_from_disjointness_but_bounds_checked() {
        let bins = 256usize;
        let mut b = SpecBuilder::new("histogram", geom());
        let data = b.buffer("data", 1024);
        let out = b.buffer("bins", bins);
        b.read(data, Affine::of(Var::GlobalLinear), Guard::Always);
        b.atomic(
            out,
            Index::Opaque {
                min: 0,
                max: bins as i64 - 1,
            },
            Guard::Always,
        );
        let r = analyze(&b.finish());
        assert!(r.clean(), "{:?}", r.findings);
        // Shrink the bins buffer: the opaque range now exceeds it.
        let mut b = SpecBuilder::new("histogram-oob", geom());
        let out = b.buffer("bins", bins - 1);
        b.atomic(
            out,
            Index::Opaque {
                min: 0,
                max: bins as i64 - 1,
            },
            Guard::Always,
        );
        let r = analyze(&b.finish());
        assert_eq!(r.bounds, Verdict::Unknown); // conservative range: warning
        assert!(!r.clean());
    }

    #[test]
    fn local_atomic_bins_do_not_race() {
        // histogram256 phase 1: local_hist[input[i] % 256] via atomic_inc.
        // Data-dependent bin, but atomic/atomic collisions are serialized.
        let mut b = SpecBuilder::new("histogram-local", geom());
        let data = b.buffer("data", 1024);
        let hist = b.local("local_hist", 256);
        b.read(data, Affine::of(Var::GlobalLinear), Guard::Always);
        b.local_atomic(hist, Index::Opaque { min: 0, max: 255 }, Guard::Always);
        b.local_atomic(hist, Index::Opaque { min: 0, max: 255 }, Guard::Always);
        b.barrier(Guard::Always);
        b.local_read(hist, Affine::of(Var::LocalLinear), Guard::Always);
        let r = analyze(&b.finish());
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.local_races, Verdict::Proven);
    }

    #[test]
    fn non_atomic_opaque_write_warns() {
        let mut b = SpecBuilder::new("scatter", geom());
        let out = b.buffer("out", 4096);
        b.write(out, Index::Opaque { min: 0, max: 4095 }, Guard::Always);
        let r = analyze(&b.finish());
        assert_eq!(r.disjoint_writes, Verdict::Unknown);
    }

    #[test]
    fn grid_stride_writes_prove_disjoint() {
        // blackscholes shape: pass m writes out[i + m·T], i + m·T < n.
        let t = 1024usize;
        let n = 3000usize;
        let mut b = SpecBuilder::new("blackscholes", geom());
        let out = b.buffer("out", n);
        let mut m = 0;
        while m * t < n {
            b.write(
                out,
                Affine::of(Var::GlobalLinear).plus((m * t) as i64),
                Guard::GlobalLt(n - m * t),
            );
            m += 1;
        }
        let r = analyze(&b.finish());
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.checked_writes, 3);
    }

    #[test]
    fn invalid_geometry_short_circuits() {
        let mut b = SpecBuilder::new("bad", LintGeometry::d1(100, 64));
        b.buffer("x", 100);
        let r = analyze(&b.finish());
        assert_eq!(r.bounds, Verdict::Violation);
    }
}
