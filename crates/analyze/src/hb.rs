//! Happens-before analysis over multi-queue command streams.
//!
//! [`crate::flow`] analyzes ONE in-order stream, where program order totally
//! orders every command pair. This module grows that one layer outward: a
//! context's queues each contribute an in-order stream, and the only order
//! *between* streams comes from synchronization the host performed. The
//! happens-before relation is built from:
//!
//! * **program order** — within each in-order queue, command *i* precedes
//!   command *i+1*;
//! * **blocking commands** — a blocking transfer/map returns only when
//!   complete, so it happens-before every command any queue enqueues later
//!   (host knowledge: the enqueuing thread observed completion);
//! * **`finish(q)`** — orders everything `q` ran so far before every command
//!   enqueued afterwards on any queue;
//! * **markers** — in-queue sync points; on in-order queues they add no
//!   edges beyond program order (recorded so the over-sync report can call
//!   them out as removable).
//!
//! Kernel launches are modeled as **asynchronous** — OpenCL semantics, the
//! shape the ROADMAP's out-of-order scheduler will make real — even though
//! this runtime happens to block. That is exactly what makes the analysis a
//! *certifier*: a stream proven race-free here stays race-free when launches
//! stop blocking.
//!
//! Every cross-queue conflicting same-buffer pair (byte-granular
//! [`classify_pair`] footprints) is classified [`OrderVerdict::ProvenOrdered`]
//! (hb-ordered), [`OrderVerdict::Racy`] (unordered, must-overlap — a
//! violation on some schedule), or [`OrderVerdict::Unknown`] (unordered,
//! may-only overlap). A second, independent **vector-clock** layer
//! ([`vector_clock_check`]) recomputes orderings incrementally — one clock
//! per queue plus a host clock joined at blocking commands — and the two
//! layers must agree on every stream; disagreement is an implementation bug,
//! not a user error.

use std::collections::{HashMap, HashSet};

use crate::flow::{classify_pair, FlowCommand, FlowOp, HazardKind, PairHazard};
use crate::lints::Severity;

/// One record in a context-level multi-queue stream: a command with its
/// observed execution window, or a synchronization point.
#[derive(Debug, Clone)]
pub struct HbRecord {
    /// Owning queue's stable id.
    pub queue: u64,
    /// The command's sequence number within its queue (sync points reuse
    /// the next sequence number without consuming it).
    pub seq: u64,
    pub op: HbOp,
    /// Observed wall-clock start (`0` = unobserved).
    pub start_ns: u64,
    /// Observed wall-clock completion (`0` = unobserved).
    pub end_ns: u64,
    /// The record came from an out-of-order queue: program order contributes
    /// nothing, `waits` carries the ordering instead.
    pub ooo: bool,
    /// Explicit wait-list edges as `(queue, seq)` of the commands this one
    /// waited on (explicit events, auto-inferred hazards, drained commands).
    pub waits: Vec<(u64, u64)>,
}

/// What an [`HbRecord`] records.
#[derive(Debug, Clone)]
pub enum HbOp {
    /// An enqueued command. `blocking` commands synchronize the host at
    /// completion (transfers/maps in this runtime); non-blocking commands
    /// (kernel launches, per OpenCL semantics) do not.
    Command { cmd: FlowCommand, blocking: bool },
    /// `clFinish`: every prior command on this queue happens-before every
    /// later-enqueued command on any queue.
    Finish,
    /// `clEnqueueMarker`: an in-queue sync point.
    Marker,
}

impl HbRecord {
    pub fn command(queue: u64, seq: u64, cmd: FlowCommand, blocking: bool) -> Self {
        HbRecord {
            queue,
            seq,
            op: HbOp::Command { cmd, blocking },
            start_ns: 0,
            end_ns: 0,
            ooo: false,
            waits: Vec::new(),
        }
    }

    /// Attach the observed execution window.
    pub fn observed(mut self, start_ns: u64, end_ns: u64) -> Self {
        self.start_ns = start_ns;
        self.end_ns = end_ns;
        self
    }

    /// Mark the record as coming from an out-of-order queue, carrying its
    /// wait-list edges (which replace program order entirely).
    pub fn ooo_waits(mut self, waits: Vec<(u64, u64)>) -> Self {
        self.ooo = true;
        self.waits = waits;
        self
    }

    pub fn finish(queue: u64) -> Self {
        HbRecord {
            queue,
            seq: 0,
            op: HbOp::Finish,
            start_ns: 0,
            end_ns: 0,
            ooo: false,
            waits: Vec::new(),
        }
    }

    pub fn marker(queue: u64) -> Self {
        HbRecord {
            queue,
            seq: 0,
            op: HbOp::Marker,
            start_ns: 0,
            end_ns: 0,
            ooo: false,
            waits: Vec::new(),
        }
    }
}

/// Three-valued ordering verdict for a cross-queue conflicting pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderVerdict {
    /// A happens-before path orders the pair on every schedule.
    ProvenOrdered,
    /// Unordered and the must sets overlap: a data race on some schedule.
    Racy,
    /// Unordered but only the may sets overlap: cannot prove either way.
    Unknown,
}

impl OrderVerdict {
    pub fn as_str(self) -> &'static str {
        match self {
            OrderVerdict::ProvenOrdered => "proven-ordered",
            OrderVerdict::Racy => "RACY",
            OrderVerdict::Unknown => "unknown",
        }
    }
}

/// A command of the analyzed stream (sync points excluded).
#[derive(Debug, Clone)]
pub struct HbCmd {
    /// Index into the original record slice.
    pub record: usize,
    pub queue: u64,
    pub seq: u64,
    pub op: FlowOp,
    pub label: String,
    pub blocking: bool,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl HbCmd {
    /// Is this a host-side access (map/unmap/raw host touch)?
    pub fn host_side(&self) -> bool {
        matches!(
            self.op,
            FlowOp::Map { .. } | FlowOp::Unmap { .. } | FlowOp::HostAccess { .. }
        )
    }
}

/// A classified cross-queue conflicting pair (`a` enqueued before `b`).
#[derive(Debug, Clone)]
pub struct HbPair {
    /// Command indices into [`HbAnalysis::commands`].
    pub a: usize,
    pub b: usize,
    pub queue_a: u64,
    pub queue_b: u64,
    pub buffer: u64,
    pub buffer_name: String,
    pub kind: HazardKind,
    /// The must sets overlap (the conflict certainly exists).
    pub must: bool,
    pub order: OrderVerdict,
    pub detail: String,
}

/// The cross-queue lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbLintKind {
    /// Two device commands on different queues conflict with no ordering.
    CrossQueueRace,
    /// A host access (map/unmap/host touch) conflicts with another queue's
    /// command with no ordering.
    UnsyncedHostAccess,
    /// A sync point whose removal provably keeps every cross-queue conflict
    /// ordered — the reorder-opportunity set.
    OverSync,
}

impl HbLintKind {
    pub fn as_str(self) -> &'static str {
        match self {
            HbLintKind::CrossQueueRace => "cross-queue-race",
            HbLintKind::UnsyncedHostAccess => "unsynced-host-access",
            HbLintKind::OverSync => "over-sync",
        }
    }
}

#[derive(Debug, Clone)]
pub struct HbFinding {
    pub kind: HbLintKind,
    pub severity: Severity,
    pub message: String,
}

/// A synchronization point of the stream and whether it is removable.
#[derive(Debug, Clone)]
pub struct SyncPoint {
    /// Index into the original record slice.
    pub record: usize,
    pub queue: u64,
    pub desc: String,
    /// Dropping this sync's edges keeps every currently-ordered cross-queue
    /// conflicting pair ordered: the sync is proven removable.
    pub removable: bool,
}

/// Per-queue stream summary with its parallelism bound.
#[derive(Debug, Clone)]
pub struct QueueSummary {
    pub queue: u64,
    pub commands: usize,
    /// Longest dependence chain among this queue's own commands (unit
    /// weights). `commands / critical_path` bounds the speedup an
    /// out-of-order scheduler could extract from this stream alone.
    pub critical_path: usize,
    /// Adjacent program-order pairs proven independent (swap-safe).
    pub reorderable_adjacent: usize,
}

impl QueueSummary {
    pub fn parallelism(&self) -> f64 {
        self.commands as f64 / self.critical_path.max(1) as f64
    }
}

/// Result of [`analyze_hb`].
#[derive(Debug, Clone)]
pub struct HbAnalysis {
    pub commands: Vec<HbCmd>,
    /// Every cross-queue conflicting pair, classified.
    pub pairs: Vec<HbPair>,
    pub findings: Vec<HbFinding>,
    pub sync_points: Vec<SyncPoint>,
    /// Same-queue adjacent command pairs (indices into `commands`) proven
    /// independent — an in-order queue may swap or overlap them.
    pub reorderable: Vec<(usize, usize)>,
    /// Longest dependence chain across the whole context (unit weights).
    pub critical_path: usize,
    pub queues: Vec<QueueSummary>,
}

impl HbAnalysis {
    /// Racy pairs (proven data races on some schedule).
    pub fn races(&self) -> impl Iterator<Item = &HbPair> {
        self.pairs.iter().filter(|p| p.order == OrderVerdict::Racy)
    }

    pub fn has_races(&self) -> bool {
        self.races().next().is_some()
    }

    pub fn count(&self, v: OrderVerdict) -> usize {
        self.pairs.iter().filter(|p| p.order == v).count()
    }

    /// Error-severity findings (races); over-sync and may-only overlaps are
    /// warnings.
    pub fn errors(&self) -> impl Iterator<Item = &HbFinding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Sync points whose removal is proven safe.
    pub fn removable_syncs(&self) -> impl Iterator<Item = &SyncPoint> {
        self.sync_points.iter().filter(|s| s.removable)
    }

    /// Whole-context parallelism bound: total commands over the critical
    /// path (unit weights).
    pub fn parallelism(&self) -> f64 {
        self.commands.len() as f64 / self.critical_path.max(1) as f64
    }
}

/// A sync point's happens-before edges, kept separate per source so the
/// over-sync pass can recompute the closure without one of them.
struct SyncEdges {
    record: usize,
    queue: u64,
    desc: String,
    edges: Vec<(usize, usize)>,
}

/// Word-packed reachability rows.
type BitRow = Vec<u64>;

fn bit_get(row: &BitRow, i: usize) -> bool {
    row[i / 64] >> (i % 64) & 1 == 1
}

fn bit_set(row: &mut BitRow, i: usize) {
    row[i / 64] |= 1 << (i % 64);
}

/// Transitive closure over `n` nodes. Every edge goes forward in index
/// order (enqueue order is a topological order of happens-before), so one
/// reverse sweep suffices: `reach[i] = ∪ {s} ∪ reach[s]` over successors.
fn closure(n: usize, edges: &[(usize, usize)]) -> Vec<BitRow> {
    let words = n.div_ceil(64);
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        succ[a].push(b);
    }
    let mut reach: Vec<BitRow> = vec![vec![0u64; words]; n];
    for i in (0..n).rev() {
        // Split so reach[s] can be read while reach[i] is written.
        let (head, tail) = reach.split_at_mut(i + 1);
        let row = &mut head[i];
        for &s in &succ[i] {
            bit_set(row, s);
            for (w, word) in tail[s - i - 1].iter().enumerate() {
                row[w] |= word;
            }
        }
    }
    reach
}

/// Build the happens-before graph over a context's record stream and
/// classify every cross-queue conflicting pair.
pub fn analyze_hb(records: &[HbRecord]) -> HbAnalysis {
    // Extract commands (in enqueue order) and remember their record index.
    let mut commands: Vec<HbCmd> = Vec::new();
    for (ri, r) in records.iter().enumerate() {
        if let HbOp::Command { cmd, blocking } = &r.op {
            commands.push(HbCmd {
                record: ri,
                queue: r.queue,
                seq: r.seq,
                op: cmd.op.clone(),
                label: cmd.label.clone(),
                blocking: *blocking,
                start_ns: r.start_ns,
                end_ns: r.end_ns,
            });
        }
    }
    let n = commands.len();
    let flow_of = |ci: usize| match &records[commands[ci].record].op {
        HbOp::Command { cmd, .. } => cmd,
        _ => unreachable!("commands index only Command records"),
    };

    // Queues that ever produced an out-of-order record: their commands get
    // no program-order edges — wait lists carry the ordering instead.
    let ooo_queues: HashSet<u64> = records.iter().filter(|r| r.ooo).map(|r| r.queue).collect();

    // Structural edges: program order for consecutive commands of each
    // in-order queue; explicit wait-list edges for out-of-order commands.
    // Both are facts about the stream, not removable synchronization.
    let mut prog_edges: Vec<(usize, usize)> = Vec::new();
    let mut last_on_queue: HashMap<u64, usize> = HashMap::new();
    let mut cmd_by_qs: HashMap<(u64, u64), usize> = HashMap::new();
    for (ci, c) in commands.iter().enumerate() {
        cmd_by_qs.insert((c.queue, c.seq), ci);
    }
    for (ci, c) in commands.iter().enumerate() {
        let rec = &records[c.record];
        if rec.ooo {
            for w in &rec.waits {
                // Forward-only: the closure assumes topological index order.
                // A backward "wait" can only come from a defective scheduler
                // stream; dropping it keeps the analysis conservative.
                if let Some(&dep) = cmd_by_qs.get(w) {
                    if dep < ci {
                        prog_edges.push((dep, ci));
                    }
                }
            }
        } else {
            if let Some(&prev) = last_on_queue.get(&c.queue) {
                prog_edges.push((prev, ci));
            }
            last_on_queue.insert(c.queue, ci);
        }
    }

    // Host-sync edges, grouped by the sync point that created them. A sync
    // source needs one edge to the *first* later command of each other
    // in-order queue — program order carries it the rest of the way. An
    // out-of-order queue has no program order to lean on, so it gets an
    // edge to *every* later command (including the source's own queue).
    let first_after = |record: usize, from: usize| -> Vec<usize> {
        let source_queue = commands[from].queue;
        let mut seen: Vec<u64> = Vec::new();
        let mut targets = Vec::new();
        for (ci, c) in commands.iter().enumerate() {
            if c.record <= record {
                continue;
            }
            if c.queue == source_queue && !ooo_queues.contains(&source_queue) {
                continue;
            }
            if ooo_queues.contains(&c.queue) {
                targets.push(ci);
            } else if !seen.contains(&c.queue) {
                seen.push(c.queue);
                targets.push(ci);
            }
        }
        targets
    };
    let mut syncs: Vec<SyncEdges> = Vec::new();
    let mut cmd_at_record: HashMap<usize, usize> = HashMap::new();
    for (ci, c) in commands.iter().enumerate() {
        cmd_at_record.insert(c.record, ci);
    }
    let mut last_before: HashMap<u64, usize> = HashMap::new(); // queue -> last command idx
    let mut all_before: HashMap<u64, Vec<usize>> = HashMap::new(); // queue -> all command idxs
    for (ri, r) in records.iter().enumerate() {
        match &r.op {
            HbOp::Command { blocking, .. } => {
                let ci = cmd_at_record[&ri];
                if *blocking {
                    let edges: Vec<(usize, usize)> =
                        first_after(ri, ci).into_iter().map(|t| (ci, t)).collect();
                    syncs.push(SyncEdges {
                        record: ri,
                        queue: r.queue,
                        desc: format!(
                            "blocking {} (q{}#{})",
                            commands[ci].label, r.queue, commands[ci].seq
                        ),
                        edges,
                    });
                }
                last_before.insert(r.queue, ci);
                all_before.entry(r.queue).or_default().push(ci);
            }
            HbOp::Finish => {
                // In-order queues: the last command suffices (program order
                // reaches it from every earlier one). Out-of-order queues
                // have no such spine — every command is a source.
                let sources: Vec<usize> = if ooo_queues.contains(&r.queue) {
                    all_before.get(&r.queue).cloned().unwrap_or_default()
                } else {
                    // Finishing an idle queue orders nothing.
                    last_before.get(&r.queue).copied().into_iter().collect()
                };
                let mut edges: Vec<(usize, usize)> = Vec::new();
                for src in sources {
                    edges.extend(first_after(ri, src).into_iter().map(|t| (src, t)));
                }
                syncs.push(SyncEdges {
                    record: ri,
                    queue: r.queue,
                    desc: format!("finish(q{})", r.queue),
                    edges,
                });
            }
            HbOp::Marker => {
                // In-order queues already totally order their commands; a
                // marker contributes no edges (and is thus always removable).
                syncs.push(SyncEdges {
                    record: ri,
                    queue: r.queue,
                    desc: format!("marker(q{})", r.queue),
                    edges: Vec::new(),
                });
            }
        }
    }

    // Full closure with every sync edge in.
    let mut all_edges = prog_edges.clone();
    for s in &syncs {
        all_edges.extend_from_slice(&s.edges);
    }
    let reach = closure(n, &all_edges);
    let ordered = |a: usize, b: usize| bit_get(&reach[a], b) || bit_get(&reach[b], a);

    // Conflicts between every pair (byte-granular footprints). Same-queue
    // conflicts feed the critical path; cross-queue ones get classified.
    let mut conflicts: Vec<(usize, usize, Vec<PairHazard>)> = Vec::new();
    for b in 0..n {
        for a in 0..b {
            let (hazards, _) = classify_pair(flow_of(a), flow_of(b));
            if !hazards.is_empty() {
                conflicts.push((a, b, hazards));
            }
        }
    }

    let mut pairs: Vec<HbPair> = Vec::new();
    for (a, b, hazards) in &conflicts {
        let (a, b) = (*a, *b);
        // Same-queue pairs are ordered by construction on an in-order
        // queue. On an out-of-order queue they are real schedule questions
        // — classifying them is how the analysis certifies the scheduler's
        // auto-inferred reordering.
        if commands[a].queue == commands[b].queue && !ooo_queues.contains(&commands[a].queue) {
            continue;
        }
        for h in hazards {
            let order = if ordered(a, b) {
                OrderVerdict::ProvenOrdered
            } else if h.must {
                OrderVerdict::Racy
            } else {
                OrderVerdict::Unknown
            };
            pairs.push(HbPair {
                a,
                b,
                queue_a: commands[a].queue,
                queue_b: commands[b].queue,
                buffer: h.buffer,
                buffer_name: h.buffer_name.clone(),
                kind: h.kind,
                must: h.must,
                order,
                detail: h.detail.clone(),
            });
        }
    }

    // Over-sync: a sync point is removable iff recomputing the closure
    // without its edges leaves every currently-ordered cross-queue
    // conflicting pair still ordered.
    let ordered_cross: Vec<(usize, usize)> = pairs
        .iter()
        .filter(|p| p.order == OrderVerdict::ProvenOrdered)
        .map(|p| (p.a, p.b))
        .collect();
    let mut sync_points: Vec<SyncPoint> = Vec::new();
    for (si, s) in syncs.iter().enumerate() {
        let removable = if s.edges.is_empty() {
            true
        } else {
            let mut pruned = prog_edges.clone();
            for (sj, other) in syncs.iter().enumerate() {
                if sj != si {
                    pruned.extend_from_slice(&other.edges);
                }
            }
            let r2 = closure(n, &pruned);
            ordered_cross
                .iter()
                .all(|&(a, b)| bit_get(&r2[a], b) || bit_get(&r2[b], a))
        };
        sync_points.push(SyncPoint {
            record: s.record,
            queue: s.queue,
            desc: s.desc.clone(),
            removable,
        });
    }

    // Reorderable adjacent program pairs: consecutive same-queue commands
    // with no hazard between them may swap without changing any dataflow.
    let mut reorderable: Vec<(usize, usize)> = Vec::new();
    for &(a, b) in &prog_edges {
        let conflict = conflicts
            .iter()
            .any(|&(ca, cb, _)| (ca, cb) == (a, b) || (ca, cb) == (b, a));
        // Blocking commands publish to the host; swapping one past its
        // neighbour changes what the host observed, so only certify
        // non-publishing neighbours.
        if !conflict && !commands[a].blocking && !commands[b].blocking {
            reorderable.push((a, b));
        }
    }

    // Critical path: longest chain through the dependence DAG (unit command
    // weights). Racy pairs impose no order, so they contribute no edge.
    let mut dep_succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b, _) in &conflicts {
        let same_in_order =
            commands[*a].queue == commands[*b].queue && !ooo_queues.contains(&commands[*a].queue);
        if same_in_order || ordered(*a, *b) {
            dep_succ[*a].push(*b);
        }
    }
    let depth = |succ: &[Vec<usize>], keep: &dyn Fn(usize) -> bool| -> usize {
        let mut d = vec![0usize; n];
        let mut best = 0;
        for i in 0..n {
            if !keep(i) {
                continue;
            }
            d[i] = d[i].max(1);
            best = best.max(d[i]);
            for &s in &succ[i] {
                if keep(s) {
                    d[s] = d[s].max(d[i] + 1);
                }
            }
        }
        best
    };
    let critical_path = depth(&dep_succ, &|_| true);

    // Per-queue summaries.
    let mut queue_ids: Vec<u64> = commands.iter().map(|c| c.queue).collect();
    queue_ids.sort_unstable();
    queue_ids.dedup();
    let queues: Vec<QueueSummary> = queue_ids
        .iter()
        .map(|&q| {
            let mine = |i: usize| commands[i].queue == q;
            QueueSummary {
                queue: q,
                commands: commands.iter().filter(|c| c.queue == q).count(),
                critical_path: depth(&dep_succ, &mine),
                reorderable_adjacent: reorderable
                    .iter()
                    .filter(|&&(a, _)| commands[a].queue == q)
                    .count(),
            }
        })
        .collect();

    // Findings.
    let mut findings: Vec<HbFinding> = Vec::new();
    for p in &pairs {
        if p.order == OrderVerdict::ProvenOrdered {
            continue;
        }
        let host = commands[p.a].host_side() || commands[p.b].host_side();
        let kind = if host {
            HbLintKind::UnsyncedHostAccess
        } else {
            HbLintKind::CrossQueueRace
        };
        let severity = if p.must {
            Severity::Error
        } else {
            Severity::Warning
        };
        findings.push(HbFinding {
            kind,
            severity,
            message: format!(
                "{} {} between q{}#{} `{}` and q{}#{} `{}` on {}: {} ({})",
                if p.must { "data race" } else { "possible race" },
                p.kind.as_str(),
                p.queue_a,
                commands[p.a].seq,
                commands[p.a].label,
                p.queue_b,
                commands[p.b].seq,
                commands[p.b].label,
                p.buffer_name,
                p.detail,
                if host {
                    "host access unsynchronized across queues"
                } else {
                    "no happens-before path"
                },
            ),
        });
    }
    for s in sync_points.iter().filter(|s| s.removable) {
        findings.push(HbFinding {
            kind: HbLintKind::OverSync,
            severity: Severity::Warning,
            message: format!(
                "over-synchronization: {} is removable — every cross-queue \
                 dependence it orders is ordered without it",
                s.desc
            ),
        });
    }

    HbAnalysis {
        commands,
        pairs,
        findings,
        sync_points,
        reorderable,
        critical_path,
        queues,
    }
}

/// The dynamic layer's verdicts over one observed schedule.
#[derive(Debug, Clone, Default)]
pub struct VcReport {
    /// Conflicting command pairs whose vector clocks are concurrent (a
    /// dynamic race). Indices into [`HbAnalysis::commands`].
    pub races: Vec<(usize, usize)>,
    /// Static/dynamic contradictions: a proven-ordered pair the clocks call
    /// concurrent, or a racy pair the clocks call ordered. Always empty
    /// unless one of the two layers is wrong.
    pub disagreements: Vec<String>,
    /// Proven-ordered pairs whose observed execution windows overlap
    /// (`a.end > b.start`). Meaningful on native devices only — modeled
    /// devices report modeled completion times that extend past wall clock.
    pub linearization_failures: Vec<String>,
}

impl VcReport {
    /// Did the dynamic layer agree with the static verdicts?
    pub fn agrees(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Replay `records` through per-queue vector clocks and check the observed
/// schedule against `analysis`'s static verdicts.
///
/// The clocks are computed by an incremental walk — one clock per queue, a
/// host clock joined at blocking commands and `finish` — sharing nothing
/// with the static closure, so agreement between the layers is a real
/// consistency oracle, not a tautology.
pub fn vector_clock_check(records: &[HbRecord], analysis: &HbAnalysis) -> VcReport {
    // Queue -> clock component, in first-appearance order. In-order queues
    // get one component (their commands chain through the queue clock);
    // every out-of-order command gets its *own* component — two unordered
    // commands of the same OOO queue must compare concurrent, which a
    // shared per-queue counter cannot express.
    let ooo_queues: HashSet<u64> = records.iter().filter(|r| r.ooo).map(|r| r.queue).collect();
    let mut procs: Vec<u64> = Vec::new();
    for r in records {
        if !ooo_queues.contains(&r.queue) && !procs.contains(&r.queue) {
            procs.push(r.queue);
        }
    }
    let n_inorder = procs.len();
    let n_ooo = records
        .iter()
        .filter(|r| r.ooo && matches!(r.op, HbOp::Command { .. }))
        .count();
    let np = n_inorder + n_ooo;
    let pidx = |q: u64| procs.iter().position(|&p| p == q).unwrap();
    let join = |a: &mut Vec<u64>, b: &[u64]| {
        for (x, y) in a.iter_mut().zip(b) {
            *x = (*x).max(*y);
        }
    };

    let mut qclock: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut counter: HashMap<u64, u64> = HashMap::new();
    let mut host: Vec<u64> = vec![0; np];
    let mut vcs: Vec<Vec<u64>> = Vec::with_capacity(analysis.commands.len());
    // (queue, seq) -> vcs index, so wait edges can join their dependency's
    // clock; queue -> all vcs indices, for finish() on an OOO queue.
    let mut vc_by_qs: HashMap<(u64, u64), usize> = HashMap::new();
    let mut queue_cmds: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut next_ooo_comp = n_inorder;
    for r in records {
        match &r.op {
            HbOp::Command { blocking, .. } if r.ooo => {
                // An OOO command's knowledge: the enqueuing host thread plus
                // every dependency in its wait list — and nothing else. No
                // queue clock: program order does not exist here.
                let mut vc = vec![0; np];
                join(&mut vc, &host);
                for w in &r.waits {
                    if let Some(&di) = vc_by_qs.get(w) {
                        let dep = vcs[di].clone();
                        join(&mut vc, &dep);
                    }
                }
                vc[next_ooo_comp] = 1;
                next_ooo_comp += 1;
                if *blocking {
                    // Completion synchronizes the host before the call returns.
                    join(&mut host, &vc);
                }
                vc_by_qs.insert((r.queue, r.seq), vcs.len());
                queue_cmds.entry(r.queue).or_default().push(vcs.len());
                vcs.push(vc);
            }
            HbOp::Command { blocking, .. } => {
                let pi = pidx(r.queue);
                let mut vc = qclock.get(&r.queue).cloned().unwrap_or_else(|| vec![0; np]);
                // The enqueuing host thread's knowledge flows into the
                // command; the command's own tick makes it a unique event.
                join(&mut vc, &host);
                let c = counter.entry(r.queue).or_insert(0);
                *c += 1;
                vc[pi] = *c;
                if *blocking {
                    // Completion synchronizes the host before enqueue returns.
                    join(&mut host, &vc);
                }
                qclock.insert(r.queue, vc.clone());
                vc_by_qs.insert((r.queue, r.seq), vcs.len());
                queue_cmds.entry(r.queue).or_default().push(vcs.len());
                vcs.push(vc);
            }
            HbOp::Finish => {
                if ooo_queues.contains(&r.queue) {
                    // Every command of the queue synchronizes the host — the
                    // OOO queue has no single "last" command to stand in.
                    for i in queue_cmds.get(&r.queue).cloned().unwrap_or_default() {
                        let vc = vcs[i].clone();
                        join(&mut host, &vc);
                    }
                } else if let Some(qc) = qclock.get(&r.queue) {
                    join(&mut host, qc);
                }
            }
            HbOp::Marker => {}
        }
    }

    let leq = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(x, y)| x <= y);
    let mut report = VcReport::default();
    let mut seen: Vec<(usize, usize)> = Vec::new();
    for p in &analysis.pairs {
        let (va, vb) = (&vcs[p.a], &vcs[p.b]);
        let vc_ordered = leq(va, vb) || leq(vb, va);
        if !vc_ordered && !seen.contains(&(p.a, p.b)) {
            seen.push((p.a, p.b));
            report.races.push((p.a, p.b));
        }
        match p.order {
            OrderVerdict::ProvenOrdered if !vc_ordered => {
                report.disagreements.push(format!(
                    "static proven-ordered but clocks concurrent: q{}#{} `{}` vs q{}#{} `{}` on {}",
                    p.queue_a,
                    analysis.commands[p.a].seq,
                    analysis.commands[p.a].label,
                    p.queue_b,
                    analysis.commands[p.b].seq,
                    analysis.commands[p.b].label,
                    p.buffer_name,
                ));
            }
            OrderVerdict::Racy if vc_ordered => {
                report.disagreements.push(format!(
                    "static racy but clocks ordered: q{}#{} `{}` vs q{}#{} `{}` on {}",
                    p.queue_a,
                    analysis.commands[p.a].seq,
                    analysis.commands[p.a].label,
                    p.queue_b,
                    analysis.commands[p.b].seq,
                    analysis.commands[p.b].label,
                    p.buffer_name,
                ));
            }
            _ => {}
        }
        // Proven edges must linearize in the observed schedule: the earlier
        // command's completion precedes the later one's start.
        if p.order == OrderVerdict::ProvenOrdered {
            let (ca, cb) = (&analysis.commands[p.a], &analysis.commands[p.b]);
            if ca.end_ns > 0 && cb.start_ns > 0 && ca.end_ns > cb.start_ns {
                report.linearization_failures.push(format!(
                    "proven edge q{}#{} `{}` -> q{}#{} `{}` overlapped: \
                     end {} > start {}",
                    p.queue_a,
                    ca.seq,
                    ca.label,
                    p.queue_b,
                    cb.seq,
                    cb.label,
                    ca.end_ns,
                    cb.start_ns,
                ));
            }
        }
    }
    report
}

/// Enqueue-time gate: would appending `cmd` (asynchronously) to `queue`
/// introduce a *proven* cross-queue race with the stream so far? Returns a
/// message per racy pair the new command participates in; existing races
/// between earlier commands are not re-reported.
pub fn incremental_race_check(
    records: &[HbRecord],
    queue: u64,
    seq: u64,
    cmd: &FlowCommand,
) -> Vec<String> {
    let mut all: Vec<HbRecord> = records.to_vec();
    all.push(HbRecord::command(queue, seq, cmd.clone(), false));
    let analysis = analyze_hb(&all);
    let last = analysis.commands.len() - 1;
    analysis
        .pairs
        .iter()
        .filter(|p| p.b == last && p.order == OrderVerdict::Racy)
        .map(|p| {
            format!(
                "[cross-queue-race] {} with q{}#{} `{}` on {}: {}",
                p.kind.as_str(),
                p.queue_a,
                analysis.commands[p.a].seq,
                analysis.commands[p.a].label,
                p.buffer_name,
                p.detail,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{BufUse, FlagClass};

    fn writer(buffer: u64, name: &str, lo: i128, end: i128) -> FlowCommand {
        let u = BufUse::new(
            buffer,
            name,
            FlagClass::ReadWrite,
            (lo as usize, end as usize),
        )
        .writes(lo, end);
        FlowCommand::new(
            FlowOp::Launch {
                kernel: format!("write_{name}"),
                has_spec: true,
            },
            format!("write_{name}"),
            vec![u],
        )
    }

    fn reader(buffer: u64, name: &str, lo: i128, end: i128) -> FlowCommand {
        let u = BufUse::new(
            buffer,
            name,
            FlagClass::ReadWrite,
            (lo as usize, end as usize),
        )
        .reads(lo, end);
        FlowCommand::new(
            FlowOp::Launch {
                kernel: format!("read_{name}"),
                has_spec: true,
            },
            format!("read_{name}"),
            vec![u],
        )
    }

    #[test]
    fn finish_orders_cross_queue_raw() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            HbRecord::finish(1),
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert_eq!(a.pairs.len(), 1);
        assert_eq!(a.pairs[0].order, OrderVerdict::ProvenOrdered);
        assert_eq!(a.pairs[0].kind, HazardKind::Raw);
        assert!(!a.has_races());
        // The finish is load-bearing: not removable.
        assert!(!a.sync_points[0].removable);
        let vc = vector_clock_check(&records, &a);
        assert!(vc.agrees(), "{:?}", vc.disagreements);
        assert!(vc.races.is_empty());
    }

    #[test]
    fn missing_sync_is_a_proven_race_on_both_layers() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert_eq!(a.pairs.len(), 1);
        assert_eq!(a.pairs[0].order, OrderVerdict::Racy);
        assert_eq!(a.errors().count(), 1);
        assert_eq!(a.findings[0].kind, HbLintKind::CrossQueueRace);
        let vc = vector_clock_check(&records, &a);
        assert!(vc.agrees(), "{:?}", vc.disagreements);
        assert_eq!(vc.races, vec![(0, 1)]);
    }

    #[test]
    fn wrong_queue_finish_does_not_order() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            HbRecord::finish(2), // queue 2 is idle: orders nothing
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert!(a.has_races());
        let vc = vector_clock_check(&records, &a);
        assert!(vc.agrees());
        assert_eq!(vc.races.len(), 1);
    }

    #[test]
    fn marker_does_not_order_cross_queue() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            HbRecord::marker(1),
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert!(a.has_races());
        assert!(a.sync_points[0].removable); // markers order nothing
    }

    #[test]
    fn blocking_transfer_orders_later_commands_on_other_queues() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), true), // blocking write
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert_eq!(a.pairs[0].order, OrderVerdict::ProvenOrdered);
        // Its host edge carries the only ordering: not removable.
        assert!(!a.sync_points[0].removable);
        let vc = vector_clock_check(&records, &a);
        assert!(vc.agrees());
    }

    #[test]
    fn disjoint_footprints_do_not_conflict() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 32), false),
            HbRecord::command(2, 0, writer(7, "a", 32, 64), false),
        ];
        let a = analyze_hb(&records);
        assert!(a.pairs.is_empty());
        assert!(!a.has_races());
    }

    #[test]
    fn redundant_finish_is_removable() {
        // finish(1) already orders the pair; finish(1) again adds nothing.
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            HbRecord::finish(1),
            HbRecord::finish(1),
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert!(!a.has_races());
        // Either finish alone suffices, so each is individually removable.
        assert!(a.sync_points.iter().all(|s| s.removable));
        assert!(a.findings.iter().any(|f| f.kind == HbLintKind::OverSync));
    }

    #[test]
    fn fig9_chain_has_nonempty_reorder_set() {
        // Producer queue: write a, write b (blocking), combine(a,b -> c),
        // finish; consumer queue: read c. The blocking writes' host edges
        // are redundant (program order carries their conflicts), and the
        // two writes touch disjoint buffers: both reorder signals fire.
        let combine = {
            let ua = BufUse::new(1, "a", FlagClass::ReadWrite, (0, 64)).reads(0, 64);
            let ub = BufUse::new(2, "b", FlagClass::ReadWrite, (0, 64)).reads(0, 64);
            let uc = BufUse::new(3, "c", FlagClass::ReadWrite, (0, 64)).writes(0, 64);
            FlowCommand::new(
                FlowOp::Launch {
                    kernel: "combine".into(),
                    has_spec: true,
                },
                "combine",
                vec![ua, ub, uc],
            )
        };
        let records = vec![
            HbRecord::command(1, 0, writer(1, "a", 0, 64), true),
            HbRecord::command(1, 1, writer(2, "b", 0, 64), true),
            HbRecord::command(1, 2, combine, false),
            HbRecord::finish(1),
            HbRecord::command(2, 0, reader(3, "c", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert!(!a.has_races());
        // Both blocking writes are removable syncs; the finish is not.
        assert!(a.removable_syncs().count() >= 2);
        assert!(!a.sync_points.last().unwrap().removable);
        // write a / write b are adjacent, disjoint — but blocking, so the
        // certifier refuses the swap; the reorder set is the removable
        // syncs themselves (make them async, then swap).
        assert_eq!(a.critical_path, 3); // write -> combine -> read
        assert!(a.parallelism() > 1.0);
        let vc = vector_clock_check(&records, &a);
        assert!(vc.agrees());
    }

    #[test]
    fn adjacent_disjoint_async_commands_are_reorderable() {
        let records = vec![
            HbRecord::command(1, 0, writer(1, "a", 0, 64), false),
            HbRecord::command(1, 1, writer(2, "b", 0, 64), false),
            HbRecord::command(1, 2, reader(2, "b", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        // (write a, write b) are disjoint — swap-safe; (write b, read b)
        // carry a RAW — pinned.
        assert_eq!(a.reorderable, vec![(0, 1)]);
        assert_eq!(a.queues[0].reorderable_adjacent, 1);
    }

    #[test]
    fn may_only_overlap_is_unknown_not_racy() {
        let mut u = BufUse::new(7, "a", FlagClass::ReadWrite, (0, 64));
        u = u.may_writes(0, 64);
        let maybe_writer = FlowCommand::new(
            FlowOp::Launch {
                kernel: "maybe".into(),
                has_spec: true,
            },
            "maybe",
            vec![u],
        );
        let records = vec![
            HbRecord::command(1, 0, maybe_writer, false),
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        assert_eq!(a.pairs[0].order, OrderVerdict::Unknown);
        assert!(!a.has_races());
        // Unknown still warns.
        assert!(a.findings.iter().any(|f| f.severity == Severity::Warning));
    }

    #[test]
    fn host_map_race_is_the_host_lint() {
        let map_cmd = {
            let u = BufUse::new(7, "a", FlagClass::ReadWrite, (0, 64)).reads(0, 64);
            FlowCommand::new(
                FlowOp::Map {
                    id: 1,
                    writable: false,
                },
                "map#1 (ro)",
                vec![u],
            )
        };
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            HbRecord::command(2, 0, map_cmd, true),
        ];
        let a = analyze_hb(&records);
        assert!(a.has_races());
        assert!(a
            .findings
            .iter()
            .any(|f| f.kind == HbLintKind::UnsyncedHostAccess));
    }

    #[test]
    fn incremental_gate_flags_only_the_new_command() {
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), false),
            // Pre-existing race between q1 and q2 on buffer 9.
            HbRecord::command(1, 1, writer(9, "x", 0, 8), false),
            HbRecord::command(2, 0, writer(9, "x", 0, 8), false),
        ];
        let clean = reader(8, "other", 0, 64);
        assert!(incremental_race_check(&records, 3, 0, &clean).is_empty());
        let racy = reader(7, "a", 0, 64);
        let msgs = incremental_race_check(&records, 3, 0, &racy);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("cross-queue-race"), "{msgs:?}");
    }

    #[test]
    fn linearization_failure_is_reported() {
        // Static proves the order, but the observed windows overlap — the
        // runtime would have broken its own blocking contract.
        let records = vec![
            HbRecord::command(1, 0, writer(7, "a", 0, 64), true).observed(100, 300),
            HbRecord::command(2, 0, reader(7, "a", 0, 64), false).observed(200, 400),
        ];
        let a = analyze_hb(&records);
        let vc = vector_clock_check(&records, &a);
        assert!(vc.agrees()); // clocks still agree with the static verdict
        assert_eq!(vc.linearization_failures.len(), 1);
    }

    #[test]
    fn per_queue_parallelism_bounds() {
        // q1: two independent writers (cp 1 of 2); q2: chain of 2 (cp 2).
        let records = vec![
            HbRecord::command(1, 0, writer(1, "a", 0, 64), false),
            HbRecord::command(1, 1, writer(2, "b", 0, 64), false),
            HbRecord::command(2, 0, writer(3, "c", 0, 64), false),
            HbRecord::command(2, 1, reader(3, "c", 0, 64), false),
        ];
        let a = analyze_hb(&records);
        let q1 = a.queues.iter().find(|q| q.queue == 1).unwrap();
        let q2 = a.queues.iter().find(|q| q.queue == 2).unwrap();
        assert_eq!(q1.critical_path, 1);
        assert!((q1.parallelism() - 2.0).abs() < 1e-9);
        assert_eq!(q2.critical_path, 2);
        assert!((q2.parallelism() - 1.0).abs() < 1e-9);
    }
}
