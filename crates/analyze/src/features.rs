//! Architecture-independent static kernel features.
//!
//! The static half of the ROADMAP-4 autotuner, following the template of
//! "Characterizing Optimizations to Memory Access Patterns using
//! Architecture-Independent Program Features": everything here is derived
//! from the [`KernelAccessSpec`] alone — no hardware counters, no
//! execution, no per-machine constants. The record is serializable (plain
//! JSON) so downstream cost models can train or validate against it.
//!
//! The per-argument **lane class** describes how consecutive lanes
//! (workitems adjacent in `lx`, the runtime's SIMD dimension) of one access
//! walk memory — the property that decides whether the implicit vectorizer
//! emits a vector load, a strided load, or a gather:
//!
//! * `UnitStride` — adjacent lanes touch adjacent elements (`|∂idx/∂lx| = 1`);
//! * `Broadcast` — all lanes of a group touch the same element;
//! * `Strided(s)` — adjacent lanes are `s` elements apart;
//! * `Gather` — the address is data-dependent (opaque) per lane;
//! * `Divergent` — a lane-masking guard (`LocalLt`/`LocalLeader`) disables
//!   part of the vector, forcing predication or scalarization.

use crate::footprint::{contiguous, launch_footprint};
use crate::ir::{Guard, Index, KernelAccessSpec, Target};
use crate::prove::canonicalize;

/// Assumed element width for byte-granular features. The study's kernels
/// are uniformly `float`/`int` (4-byte) workloads.
pub const ELEM_BYTES: u128 = 4;

/// How consecutive lanes of one access walk memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneClass {
    UnitStride,
    Broadcast,
    Strided(i64),
    Gather,
    Divergent,
}

impl LaneClass {
    /// Rank for worst-of aggregation (higher = costlier for the lane unit).
    fn rank(self) -> u8 {
        match self {
            LaneClass::UnitStride => 0,
            LaneClass::Broadcast => 1,
            LaneClass::Strided(_) => 2,
            LaneClass::Gather => 3,
            LaneClass::Divergent => 4,
        }
    }

    /// Histogram bucket for the entropy computation (stride magnitudes
    /// collapse into one symbol).
    fn bucket(self) -> usize {
        self.rank() as usize
    }

    pub fn as_str(&self) -> String {
        match self {
            LaneClass::UnitStride => "unit-stride".into(),
            LaneClass::Broadcast => "broadcast".into(),
            LaneClass::Strided(s) => format!("strided({s})"),
            LaneClass::Gather => "gather".into(),
            LaneClass::Divergent => "divergent".into(),
        }
    }
}

/// One global buffer's worst-case lane behaviour across all its accesses.
#[derive(Debug, Clone)]
pub struct ArgLane {
    pub buffer: String,
    pub class: LaneClass,
    /// Accesses to this buffer (reads + writes + atomics).
    pub accesses: usize,
}

/// The serializable architecture-independent feature record of one kernel
/// at one launch geometry.
#[derive(Debug, Clone)]
pub struct KernelFeatures {
    pub kernel: String,
    pub items: usize,
    pub wg_size: usize,
    pub n_groups: usize,
    /// Distinct elements the launch may touch, across all global buffers.
    pub footprint_elems: u128,
    /// `footprint_elems · ELEM_BYTES`.
    pub footprint_bytes: u128,
    /// Per-buffer worst-case lane classification.
    pub lanes: Vec<ArgLane>,
    /// Shannon entropy (bits) of the lane-class distribution over all
    /// global accesses: 0 for a kernel whose accesses all walk memory the
    /// same way, higher the more mixed the pattern.
    pub access_entropy_bits: f64,
    pub barrier_count: usize,
    /// Fraction of accesses (global and local) executed unconditionally.
    pub branch_uniformity: f64,
    /// Arithmetic-to-memory-operation ratio, supplied by the caller from
    /// the kernel's execution profile (the one fact the spec cannot carry).
    pub arith_mem_ratio: f64,
}

impl KernelFeatures {
    /// Serialize as a single JSON object (hand-rolled: the analysis crate
    /// stays dependency-free).
    pub fn to_json(&self) -> String {
        let lanes: Vec<String> = self
            .lanes
            .iter()
            .map(|l| {
                format!(
                    "{{\"buffer\":\"{}\",\"class\":\"{}\",\"accesses\":{}}}",
                    l.buffer,
                    l.class.as_str(),
                    l.accesses
                )
            })
            .collect();
        format!(
            "{{\"kernel\":\"{}\",\"items\":{},\"wg_size\":{},\"n_groups\":{},\
             \"footprint_elems\":{},\"footprint_bytes\":{},\"lanes\":[{}],\
             \"access_entropy_bits\":{:.4},\"barrier_count\":{},\
             \"branch_uniformity\":{:.4},\"arith_mem_ratio\":{:.4}}}",
            self.kernel,
            self.items,
            self.wg_size,
            self.n_groups,
            self.footprint_elems,
            self.footprint_bytes,
            lanes.join(","),
            self.access_entropy_bits,
            self.barrier_count,
            self.branch_uniformity,
            self.arith_mem_ratio
        )
    }
}

/// Classify how consecutive lanes of one access walk memory.
pub fn lane_class(index: &Index, guard: Guard, spec: &KernelAccessSpec) -> LaneClass {
    match guard {
        Guard::LocalLt(b) if b < spec.geometry.wg_size() => return LaneClass::Divergent,
        Guard::LocalLeader if spec.geometry.wg_size() > 1 => return LaneClass::Divergent,
        _ => {}
    }
    let a = match index {
        Index::Opaque { .. } => return LaneClass::Gather,
        Index::Affine(a) if a.has_opaque() => return LaneClass::Gather,
        Index::Affine(a) => a,
    };
    // Lane stride is the canonical lx coefficient; classify it against the
    // same contiguity machinery the footprint must-sets use, so a
    // unit-stride verdict here is exactly the certified-contiguous case.
    let Some(c) = canonicalize(a, Guard::Always, &spec.geometry) else {
        return LaneClass::Gather;
    };
    match c.coefs[0] {
        0 => LaneClass::Broadcast,
        s if s.abs() == 1 && contiguous(&c) => LaneClass::UnitStride,
        s if s.abs() == 1 => LaneClass::Strided(1),
        s => LaneClass::Strided(s.clamp(i64::MIN as i128, i64::MAX as i128) as i64),
    }
}

/// Extract the feature record of `spec`. `arith_mem_ratio` comes from the
/// kernel's execution profile (`perf_model::KernelProfile`); pass 1.0 when
/// unknown.
pub fn features(spec: &KernelAccessSpec, arith_mem_ratio: f64) -> KernelFeatures {
    let geom = &spec.geometry;
    let fp = launch_footprint(spec);
    let footprint_elems: u128 = fp
        .buffers
        .iter()
        .map(|b| b.may_read.union(&b.may_write).covered())
        .sum();

    let mut lanes: Vec<ArgLane> = spec
        .global_buffers
        .iter()
        .map(|b| ArgLane {
            buffer: b.name.clone(),
            class: LaneClass::UnitStride,
            accesses: 0,
        })
        .collect();
    let mut histogram = [0usize; 5];
    let mut total_accesses = 0usize;
    let mut uniform_accesses = 0usize;
    for phase in &spec.phases {
        for acc in &phase.accesses {
            total_accesses += 1;
            if acc.guard == Guard::Always {
                uniform_accesses += 1;
            }
            let Target::Global(b) = acc.target else {
                continue;
            };
            let class = lane_class(&acc.index, acc.guard, spec);
            histogram[class.bucket()] += 1;
            let lane = &mut lanes[b];
            lane.accesses += 1;
            if class.rank() > lane.class.rank() {
                lane.class = class;
            }
        }
    }
    // Buffers the kernel never touches get no lane row.
    lanes.retain(|l| l.accesses > 0);

    let global_accesses: usize = histogram.iter().sum();
    let access_entropy_bits = if global_accesses == 0 {
        0.0
    } else {
        histogram
            .iter()
            .filter(|&&n| n > 0)
            .map(|&n| {
                let p = n as f64 / global_accesses as f64;
                -p * p.log2()
            })
            .sum::<f64>()
            // A single occupied bucket sums to -0.0; normalize the sign.
            .max(0.0)
    };

    KernelFeatures {
        kernel: spec.name.clone(),
        items: geom.items(),
        wg_size: geom.wg_size(),
        n_groups: geom.n_groups(),
        footprint_elems,
        footprint_bytes: footprint_elems * ELEM_BYTES,
        lanes,
        access_entropy_bits,
        barrier_count: spec.barriers.len(),
        branch_uniformity: if total_accesses == 0 {
            1.0
        } else {
            uniform_accesses as f64 / total_accesses as f64
        },
        arith_mem_ratio: if arith_mem_ratio.is_finite() && arith_mem_ratio >= 0.0 {
            arith_mem_ratio
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Affine, Guard, Index, LintGeometry, SpecBuilder, Var};

    fn geom() -> LintGeometry {
        LintGeometry::d1(1024, 64)
    }

    #[test]
    fn streaming_kernel_is_unit_stride_zero_entropy() {
        let mut b = SpecBuilder::new("square", geom());
        let inp = b.buffer("in", 1024);
        let out = b.buffer("out", 1024);
        b.read(inp, Affine::of(Var::GlobalLinear), Guard::Always);
        b.write(out, Affine::of(Var::GlobalLinear), Guard::Always);
        let f = features(&b.finish(), 2.0);
        assert_eq!(f.lanes.len(), 2);
        assert!(f.lanes.iter().all(|l| l.class == LaneClass::UnitStride));
        assert_eq!(f.access_entropy_bits, 0.0);
        assert_eq!(f.footprint_elems, 2048);
        assert_eq!(f.footprint_bytes, 8192);
        assert_eq!(f.branch_uniformity, 1.0);
        assert_eq!(f.arith_mem_ratio, 2.0);
    }

    #[test]
    fn lane_classes_cover_the_spectrum() {
        let mut b = SpecBuilder::new("mixed", geom());
        let s = b.buffer("strided", 8192);
        let br = b.buffer("bcast", 64);
        let ga = b.buffer("table", 256);
        b.read(s, Affine::var(Var::GlobalLinear, 4), Guard::Always);
        b.read(br, Affine::of(Var::GroupLinear), Guard::Always);
        b.read(ga, Index::Opaque { min: 0, max: 255 }, Guard::Always);
        let spec = b.finish();
        let f = features(&spec, 1.0);
        let class = |name: &str| f.lanes.iter().find(|l| l.buffer == name).unwrap().class;
        assert_eq!(class("strided"), LaneClass::Strided(4));
        assert_eq!(class("bcast"), LaneClass::Broadcast);
        assert_eq!(class("table"), LaneClass::Gather);
        // Three distinct classes, uniformly distributed: log2(3) bits.
        assert!((f.access_entropy_bits - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn masked_lanes_classify_divergent_and_lower_uniformity() {
        let mut b = SpecBuilder::new("reduce-tail", geom());
        let out = b.buffer("out", 16);
        b.write(out, Affine::of(Var::GroupLinear), Guard::LocalLeader);
        let f = features(&b.finish(), 1.0);
        assert_eq!(f.lanes[0].class, LaneClass::Divergent);
        assert_eq!(f.branch_uniformity, 0.0);
    }

    #[test]
    fn indirect_affine_reads_are_gathers() {
        let mut b = SpecBuilder::new("indirect", geom());
        let t = b.buffer("table", 2048);
        b.read(
            t,
            Affine::constant(0).plus_opaque(0, 1023, 1),
            Guard::Always,
        );
        let f = features(&b.finish(), 1.0);
        assert_eq!(f.lanes[0].class, LaneClass::Gather);
    }

    #[test]
    fn json_roundtrips_structurally() {
        let mut b = SpecBuilder::new("j", geom());
        let out = b.buffer("out", 1024);
        b.write(out, Affine::of(Var::GlobalLinear), Guard::Always);
        let j = features(&b.finish(), 1.5).to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kernel\":\"j\""));
        assert!(j.contains("\"arith_mem_ratio\":1.5000"));
        assert!(j.contains("unit-stride"));
    }
}
