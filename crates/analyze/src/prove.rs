//! Arithmetic provers over affine access expressions.
//!
//! Everything reduces to a canonical form: an affine expression over the
//! six bounded coordinate variables `[lx, ly, lz, gx, gy, gz]` (local id
//! and group id per dimension), obtained by substituting
//! `global(d) = group(d)·L(d) + local(d)` and expanding the linearized ids.
//! On that form the provers decide:
//!
//! - **injectivity** (no two distinct workitems produce the same index) via
//!   the mixed-radix/superincreasing test on sorted coefficients;
//! - **cross-group separability** (items in different workgroups never
//!   share an index) by splitting into local and group parts and comparing
//!   the local span against the minimum gap between group values;
//! - **pairwise disjointness** of two different accesses via interval
//!   separation and GCD residue reasoning;
//! - **index ranges** for bounds checking, via interval arithmetic.
//!
//! All arithmetic runs in `i128` so geometry-sized coefficients cannot
//! overflow.

use crate::ir::{Affine, Guard, Index, LintGeometry, Var};

/// Canonical affine form over the six bounded variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canon {
    /// Coefficients for `[lx, ly, lz, gx, gy, gz]`.
    pub coefs: [i128; 6],
    pub offset: i128,
    /// Domain size of each variable under the access's guard (a bound of 1
    /// pins the variable to 0).
    pub bounds: [u64; 6],
    /// Accumulated `(lo, hi)` contribution of [`Var::Opaque`] terms: the
    /// data-dependent part of the expression lies somewhere in this range,
    /// independently per workitem. `(0, 0)` when the expression has no
    /// varying opaque part (degenerate `min == max` terms fold into the
    /// offset).
    pub opaque: (i128, i128),
}

impl Canon {
    /// Whether the expression carries a varying data-dependent term.
    pub fn has_opaque(&self) -> bool {
        self.opaque.0 != self.opaque.1
    }
}

/// Variable domain sizes under `guard`, or `None` if the guard admits no
/// workitems at all (the access never executes).
pub fn guard_bounds(guard: Guard, g: &LintGeometry) -> Option<[u64; 6]> {
    let full = [
        g.local[0] as u64,
        g.local[1] as u64,
        g.local[2] as u64,
        g.groups(0) as u64,
        g.groups(1) as u64,
        g.groups(2) as u64,
    ];
    match guard {
        Guard::Always => Some(full),
        Guard::LocalLeader => Some([1, 1, 1, full[3], full[4], full[5]]),
        Guard::LocalLt(0) | Guard::GlobalLt(0) => None,
        Guard::LocalLt(b) => {
            let mut bounds = full;
            if g.local[1] == 1 && g.local[2] == 1 {
                bounds[0] = full[0].min(b as u64);
            }
            // Multi-dimensional local shapes keep the full (conservative,
            // still sound: a superset domain only weakens proofs).
            Some(bounds)
        }
        Guard::GlobalLt(_) => Some(full), // tightened case-by-case below
    }
}

/// Expand an [`Affine`] over workitem ids into the canonical bounded form.
pub fn canonicalize(a: &Affine, guard: Guard, g: &LintGeometry) -> Option<Canon> {
    let bounds = guard_bounds(guard, g)?;
    let mut coefs = [0i128; 6];
    let l = [g.local[0] as i128, g.local[1] as i128, g.local[2] as i128];
    let gx = g.global[0] as i128;
    let gy = g.global[1] as i128;
    let grp = [
        g.groups(0) as i128,
        g.groups(1) as i128,
        g.groups(2) as i128,
    ];
    let mut offset = a.offset as i128;
    let mut opaque = (0i128, 0i128);
    for &(var, c) in &a.terms {
        let c = c as i128;
        match var {
            Var::Opaque { min, max } => {
                if min == max {
                    offset += c * min as i128;
                } else {
                    let (p, q) = (c * min as i128, c * max as i128);
                    opaque.0 += p.min(q);
                    opaque.1 += p.max(q);
                }
            }
            Var::Local(d) => coefs[d as usize] += c,
            Var::Group(d) => coefs[3 + d as usize] += c,
            Var::Global(d) => {
                let d = d as usize;
                coefs[d] += c;
                coefs[3 + d] += c * l[d];
            }
            Var::LocalLinear => {
                coefs[0] += c;
                coefs[1] += c * l[0];
                coefs[2] += c * l[0] * l[1];
            }
            Var::GroupLinear => {
                coefs[3] += c;
                coefs[4] += c * grp[0];
                coefs[5] += c * grp[0] * grp[1];
            }
            Var::GlobalLinear => {
                // global_linear = global(0) + global(1)·GX + global(2)·GX·GY
                for (d, scale) in [(0, 1), (1, gx), (2, gx * gy)] {
                    coefs[d] += c * scale;
                    coefs[3 + d] += c * scale * l[d];
                }
            }
        }
    }
    Some(Canon {
        coefs,
        offset,
        bounds,
        opaque,
    })
}

impl Canon {
    /// `(min, max)` of the expression over its domain (including the range
    /// any data-dependent terms may contribute).
    pub fn interval(&self) -> (i128, i128) {
        let mut lo = self.offset + self.opaque.0;
        let mut hi = self.offset + self.opaque.1;
        for i in 0..6 {
            let span = self.coefs[i] * (self.bounds[i] as i128 - 1);
            if span >= 0 {
                hi += span;
            } else {
                lo += span;
            }
        }
        (lo, hi)
    }

    /// The local-id part `(coef, bound)` pairs with effective extent.
    fn part(&self, range: std::ops::Range<usize>) -> Vec<(i128, u64)> {
        range
            .filter(|&i| self.bounds[i] > 1)
            .map(|i| (self.coefs[i], self.bounds[i]))
            .collect()
    }

    /// Width of the value set of the local-id part: `Σ |c|·(b−1)`.
    pub fn local_span(&self) -> i128 {
        self.part(0..3)
            .iter()
            .map(|&(c, b)| c.abs() * (b as i128 - 1))
            .sum()
    }

    /// GCD of all coefficients over non-degenerate variables; 0 when the
    /// expression is constant over its domain. A varying opaque term can
    /// shift values into any residue class, so it degrades the GCD to 1
    /// (no residue argument applies, and the expression is not constant).
    pub fn coef_gcd(&self) -> i128 {
        if self.has_opaque() {
            return 1;
        }
        let mut g = 0i128;
        for i in 0..6 {
            if self.bounds[i] > 1 {
                g = gcd(g, self.coefs[i].abs());
            }
        }
        g
    }
}

pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Mixed-radix (superincreasing) injectivity test over `(coef, bound)`
/// pairs. Returns `Err` with a human-readable reason when the test cannot
/// certify injectivity.
fn injective_pairs(mut pairs: Vec<(i128, u64)>) -> Result<(), String> {
    if pairs.iter().any(|&(c, _)| c == 0) {
        return Err("a varying coordinate does not influence the index".into());
    }
    pairs.sort_by_key(|&(c, _)| c.abs());
    let mut span = 0i128; // Σ |c_j|·(b_j−1) over already-accepted terms
    for &(c, b) in &pairs {
        if c.abs() <= span {
            return Err(format!(
                "stride {} can be cancelled by smaller-stride terms spanning {}",
                c.abs(),
                span
            ));
        }
        span += c.abs() * (b as i128 - 1);
    }
    Ok(())
}

/// Prove the access index is injective over all active workitems: no two
/// distinct items (in any groups) ever produce the same index.
pub fn injective(c: &Canon) -> Result<(), String> {
    if c.has_opaque() {
        return Err("index carries a data-dependent (opaque) term".into());
    }
    injective_pairs(c.part(0..6))
}

/// A definite (not merely unproven) collision: some varying coordinate has
/// coefficient zero, so two workitems differing only there share an index.
/// A data-dependent term makes the collision merely possible, not certain.
pub fn definite_self_collision(c: &Canon) -> Option<String> {
    const NAMES: [&str; 6] = ["lx", "ly", "lz", "gx", "gy", "gz"];
    if c.has_opaque() {
        return None;
    }
    (0..6)
        .find(|&i| c.bounds[i] > 1 && c.coefs[i] == 0)
        .map(|i| {
            format!(
                "index ignores coordinate {} (domain size {}): distinct workitems write the same element",
                NAMES[i], c.bounds[i]
            )
        })
}

/// Minimum nonzero value of `|Σ c_i·δ_i|` over `|δ_i| < b_i`, valid when
/// the pairs pass the superincreasing test; `None` when they don't.
fn min_gap(mut pairs: Vec<(i128, u64)>) -> Option<i128> {
    if pairs.is_empty() {
        return None; // constant: no two distinct values at all
    }
    injective_pairs(pairs.clone()).ok()?;
    pairs.sort_by_key(|&(c, _)| c.abs());
    let mut span = 0i128;
    let mut gap = i128::MAX;
    for &(c, b) in &pairs {
        gap = gap.min(c.abs() - span);
        span += c.abs() * (b as i128 - 1);
    }
    Some(gap)
}

/// Prove workitems in different groups never share an index for this
/// access: either fully injective, or separable (group part injective and
/// the local span smaller than any gap between group values).
pub fn cross_group_disjoint(c: &Canon) -> Result<(), String> {
    if c.part(3..6).is_empty() {
        // Only one group is active: trivially disjoint across groups.
        return Ok(());
    }
    if c.has_opaque() {
        return Err("a data-dependent term may reach into any group's range".into());
    }
    if injective(c).is_ok() {
        return Ok(());
    }
    injective_pairs(c.part(3..6)).map_err(|e| format!("group part not injective: {e}"))?;
    let gap = min_gap(c.part(3..6)).expect("injective group part has a gap");
    let span = c.local_span();
    if span < gap {
        Ok(())
    } else {
        Err(format!(
            "local span {span} reaches into the next group's range (gap {gap})"
        ))
    }
}

/// Outcome of a pairwise disjointness query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairOutcome {
    /// The two accesses can never touch the same element.
    Disjoint,
    /// Overlap cannot be ruled out with the available reasoning.
    Unknown(String),
    /// The accesses definitely collide across distinct workitems.
    Collide(String),
}

/// Decide whether accesses `a` and `b` (canonicalized, same buffer) can
/// ever target the same element from *different* workitems.
pub fn pair_disjoint(a: &Canon, b: &Canon) -> PairOutcome {
    // Interval separation.
    let (alo, ahi) = a.interval();
    let (blo, bhi) = b.interval();
    if ahi < blo || bhi < alo {
        return PairOutcome::Disjoint;
    }
    // GCD residue classes: every value of `a` is ≡ offset_a (mod da).
    let (da, db) = (a.coef_gcd(), b.coef_gcd());
    if da == 0 && db == 0 {
        // Both constant over their domains.
        return if a.offset == b.offset {
            PairOutcome::Collide(format!("both accesses always target element {}", a.offset))
        } else {
            PairOutcome::Disjoint
        };
    }
    let g = gcd(da, db);
    if g > 1 && (a.offset - b.offset).rem_euclid(g) != 0 {
        return PairOutcome::Disjoint;
    }
    PairOutcome::Unknown(format!(
        "ranges [{alo}, {ahi}] and [{blo}, {bhi}] overlap and residues agree (mod {g})"
    ))
}

/// Decide whether `a` and `b` can target the same element from workitems in
/// *different groups*. Weaker requirement than [`pair_disjoint`]; used for
/// accesses in different barrier phases, where intra-group ordering is
/// already serialized by the barrier.
pub fn pair_cross_group_disjoint(a: &Canon, b: &Canon) -> PairOutcome {
    match pair_disjoint(a, b) {
        PairOutcome::Disjoint => return PairOutcome::Disjoint,
        PairOutcome::Collide(r) => return PairOutcome::Collide(r),
        PairOutcome::Unknown(_) => {}
    }
    // Same group mapping: if both accesses partition the buffer by group
    // identically, overlap can only happen within a group.
    if a.coefs[3..] == b.coefs[3..] && a.bounds[3..] == b.bounds[3..] {
        if a.part(3..6).is_empty() {
            return PairOutcome::Disjoint; // single active group
        }
        if let Some(gap) = min_gap(a.part(3..6)) {
            // Extent of the group-independent part (local ids + offset) of
            // both accesses together.
            let (a_lo, a_hi) = local_extent(a);
            let (b_lo, b_hi) = local_extent(b);
            let extent = a_hi.max(b_hi) - a_lo.min(b_lo);
            if extent < gap {
                return PairOutcome::Disjoint;
            }
        }
    }
    PairOutcome::Unknown("no cross-group separation argument applies".into())
}

/// `(min, max)` of the local part plus offset (and any data-dependent
/// contribution, which is likewise group-independent in range).
fn local_extent(c: &Canon) -> (i128, i128) {
    let mut lo = c.offset + c.opaque.0;
    let mut hi = c.offset + c.opaque.1;
    for i in 0..3 {
        let span = c.coefs[i] * (c.bounds[i] as i128 - 1);
        if span >= 0 {
            hi += span;
        } else {
            lo += span;
        }
    }
    (lo, hi)
}

/// A *definite* overlap between two accesses' element sets from workitems
/// in different workgroups: both have the same coefficient structure over
/// the same domain, with a single varying group term of stride `cg`, and
/// their offsets differ by an in-range multiple `m·cg` — so group `g`'s set
/// for one access is exactly group `g + m`'s set for the other. Returns `m`
/// (nonzero) when proven.
///
/// Sound only when both canonical domains are *exact* (guards fully encoded
/// in the bounds, i.e. `Always` / `LocalLeader`): callers must check the
/// guards before treating the result as a proven violation.
pub fn definite_cross_group_shift(a: &Canon, b: &Canon) -> Option<i128> {
    if a.has_opaque() || b.has_opaque() {
        return None;
    }
    if a.coefs != b.coefs || a.bounds != b.bounds {
        return None;
    }
    let group = a.part(3..6);
    let [(cg, ng)] = group.as_slice() else {
        return None;
    };
    if *cg == 0 {
        return None;
    }
    let d = b.offset - a.offset;
    if d == 0 || d % cg != 0 {
        return None;
    }
    let m = d / cg;
    (m.unsigned_abs() < *ng as u128).then_some(m)
}

/// `(min, max)` element index an access can touch, or `None` when the
/// guard admits no workitems. Guard-aware: single-variable expressions over
/// the guarded id use the tightened range.
pub fn index_interval(index: &Index, guard: Guard, g: &LintGeometry) -> Option<(i128, i128)> {
    match index {
        Index::Opaque { min, max } => {
            guard_bounds(guard, g)?;
            Some((*min as i128, *max as i128))
        }
        Index::Affine(a) => {
            // `idx = c·global_linear + off` under `global_linear < n`:
            // the guard caps the variable directly.
            if let (Guard::GlobalLt(n), Some((c, off))) = (guard, a.as_single(Var::GlobalLinear)) {
                let m = (g.items() as i128).min(n as i128);
                if m == 0 {
                    return None;
                }
                let (c, off) = (c as i128, off as i128);
                let end = c * (m - 1) + off;
                return Some((off.min(end), off.max(end)));
            }
            if let (Guard::LocalLt(n), Some((c, off))) = (guard, a.as_single(Var::LocalLinear)) {
                let m = (g.wg_size() as i128).min(n as i128);
                if m == 0 {
                    return None;
                }
                let (c, off) = (c as i128, off as i128);
                let end = c * (m - 1) + off;
                return Some((off.min(end), off.max(end)));
            }
            canonicalize(a, guard, g).map(|c| c.interval())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Affine, Guard, LintGeometry, Var};

    fn canon(a: &Affine, guard: Guard, g: &LintGeometry) -> Canon {
        canonicalize(a, guard, g).expect("non-empty guard")
    }

    #[test]
    fn linear_global_index_is_injective() {
        let g = LintGeometry::d1(1 << 20, 256);
        let c = canon(&Affine::of(Var::GlobalLinear), Guard::Always, &g);
        assert!(injective(&c).is_ok());
        assert_eq!(c.interval(), (0, (1 << 20) - 1));
    }

    #[test]
    fn strided_coalesced_index_is_injective() {
        // c[k·i + j] for k = 4, j = 3.
        let g = LintGeometry::d1(1 << 10, 64);
        let c = canon(
            &Affine::var(Var::GlobalLinear, 4).plus(3),
            Guard::Always,
            &g,
        );
        assert!(injective(&c).is_ok());
    }

    #[test]
    fn group_only_index_collides_within_group_but_separates_groups() {
        let g = LintGeometry::d1(1024, 64);
        let a = Affine::of(Var::GroupLinear);
        let full = canon(&a, Guard::Always, &g);
        assert!(injective(&full).is_err());
        assert!(definite_self_collision(&full).is_some());
        // Restricted to the group leader, it becomes injective.
        let leader = canon(&a, Guard::LocalLeader, &g);
        assert!(injective(&leader).is_ok());
        assert!(cross_group_disjoint(&leader).is_ok());
    }

    #[test]
    fn row_major_2d_is_injective() {
        // C[gy·W + gx] with W = global x size.
        let g = LintGeometry::d2(64, 48, 16, 16);
        let idx = Affine::var(Var::Global(1), 64).plus_var(Var::Global(0), 1);
        let c = canon(&idx, Guard::Always, &g);
        assert!(injective(&c).is_ok());
        assert_eq!(c.interval(), (0, 64 * 48 - 1));
    }

    #[test]
    fn overlapping_rows_are_not_injective() {
        // C[gy·W + gx] with W smaller than the x extent: rows overlap.
        let g = LintGeometry::d2(64, 48, 16, 16);
        let idx = Affine::var(Var::Global(1), 32).plus_var(Var::Global(0), 1);
        let c = canon(&idx, Guard::Always, &g);
        assert!(injective(&c).is_err());
    }

    #[test]
    fn cross_group_separation_needs_gap() {
        let g = LintGeometry::d1(256, 64);
        // Each group writes a 64-wide block at 64·group + local: separable.
        let block = Affine::var(Var::GroupLinear, 64).plus_var(Var::LocalLinear, 1);
        assert!(cross_group_disjoint(&canon(&block, Guard::Always, &g)).is_ok());
        // 32-wide stride with 64 locals: local span crosses into the next
        // group's block.
        let overlap = Affine::var(Var::GroupLinear, 32).plus_var(Var::LocalLinear, 1);
        assert!(cross_group_disjoint(&canon(&overlap, Guard::Always, &g)).is_err());
    }

    #[test]
    fn residue_classes_separate_interleaved_writes() {
        let g = LintGeometry::d1(1024, 64);
        let even = canon(&Affine::var(Var::GlobalLinear, 2), Guard::Always, &g);
        let odd = canon(
            &Affine::var(Var::GlobalLinear, 2).plus(1),
            Guard::Always,
            &g,
        );
        assert_eq!(pair_disjoint(&even, &odd), PairOutcome::Disjoint);
        // Same residue: unknown.
        let also_even = canon(&Affine::var(Var::GlobalLinear, 4), Guard::Always, &g);
        assert!(matches!(
            pair_disjoint(&even, &also_even),
            PairOutcome::Unknown(_)
        ));
    }

    #[test]
    fn interval_separation_detects_block_split() {
        let g = LintGeometry::d1(256, 64);
        let lo = canon(&Affine::of(Var::GlobalLinear), Guard::Always, &g);
        let hi = canon(&Affine::of(Var::GlobalLinear).plus(256), Guard::Always, &g);
        assert_eq!(pair_disjoint(&lo, &hi), PairOutcome::Disjoint);
    }

    #[test]
    fn constant_conflicts_are_definite() {
        let g = LintGeometry::d1(256, 64);
        let a = canon(&Affine::constant(5), Guard::Always, &g);
        let b = canon(&Affine::constant(5), Guard::Always, &g);
        assert!(matches!(pair_disjoint(&a, &b), PairOutcome::Collide(_)));
        let c = canon(&Affine::constant(6), Guard::Always, &g);
        assert_eq!(pair_disjoint(&a, &c), PairOutcome::Disjoint);
    }

    #[test]
    fn guarded_tail_tightens_the_interval() {
        // out[i] under `i < n` with padded global size.
        let g = LintGeometry::d1(1024, 64);
        let (lo, hi) = index_interval(
            &Affine::of(Var::GlobalLinear).into(),
            Guard::GlobalLt(1000),
            &g,
        )
        .unwrap();
        assert_eq!((lo, hi), (0, 999));
        // Unguarded, the interval covers the padding too.
        let (_, hi_full) =
            index_interval(&Affine::of(Var::GlobalLinear).into(), Guard::Always, &g).unwrap();
        assert_eq!(hi_full, 1023);
    }

    #[test]
    fn empty_guards_never_execute() {
        let g = LintGeometry::d1(64, 64);
        assert!(index_interval(
            &Affine::of(Var::GlobalLinear).into(),
            Guard::GlobalLt(0),
            &g
        )
        .is_none());
        assert!(guard_bounds(Guard::LocalLt(0), &g).is_none());
    }

    #[test]
    fn grid_stride_phases_separate_by_interval() {
        // Grid-stride: pass m writes out[i + m·T] guarded i + m·T < n.
        let t = 1 << 12;
        let n: usize = 10_000;
        let g = LintGeometry::d1(t, 256);
        let pass = |m: usize| {
            canonicalize(
                &Affine::of(Var::GlobalLinear).plus((m * t) as i64),
                Guard::GlobalLt(n.saturating_sub(m * t)),
                &g,
            )
        };
        let p0 = pass(0).unwrap();
        let p1 = pass(1).unwrap();
        assert_eq!(pair_disjoint(&p0, &p1), PairOutcome::Disjoint);
        assert!(pass(3).is_none(), "pass beyond n never executes");
    }

    #[test]
    fn cross_group_pair_with_shared_group_mapping() {
        let g = LintGeometry::d1(256, 64);
        // Two writes into per-group blocks of 130: block·group + local and
        // block·group + 64 + local. Intra-group they may be ordered by a
        // barrier; across groups the gap argument separates them.
        let a = canon(
            &Affine::var(Var::GroupLinear, 130).plus_var(Var::LocalLinear, 1),
            Guard::Always,
            &g,
        );
        let b = canon(
            &Affine::var(Var::GroupLinear, 130)
                .plus_var(Var::LocalLinear, 1)
                .plus(64),
            Guard::Always,
            &g,
        );
        assert_eq!(pair_cross_group_disjoint(&a, &b), PairOutcome::Disjoint);
        assert!(matches!(pair_disjoint(&a, &b), PairOutcome::Unknown(_)));
    }

    #[test]
    fn opaque_terms_widen_intervals_and_break_proofs() {
        let g = LintGeometry::d1(1024, 64);
        // out[i + t] with t ∈ [0, 7] data-dependent.
        let a = Affine::of(Var::GlobalLinear).plus_opaque(0, 7, 1);
        let c = canon(&a, Guard::Always, &g);
        assert!(c.has_opaque());
        assert_eq!(c.interval(), (0, 1023 + 7));
        assert!(injective(&c).is_err());
        assert!(cross_group_disjoint(&c).is_err());
        assert!(definite_self_collision(&c).is_none());
        assert_eq!(c.coef_gcd(), 1);
        // A degenerate range folds into the offset.
        let fixed = canon(
            &Affine::of(Var::GlobalLinear).plus_opaque(5, 5, 2),
            Guard::Always,
            &g,
        );
        assert!(!fixed.has_opaque());
        assert_eq!(fixed.offset, 10);
        assert!(injective(&fixed).is_ok());
    }

    #[test]
    fn independent_opaque_terms_do_not_cancel() {
        // t1 − t2 with t1, t2 ∈ [0, 9]: range [−9, 9], not 0.
        let g = LintGeometry::d1(64, 64);
        let a = Affine::constant(100)
            .plus_opaque(0, 9, 1)
            .plus_opaque(0, 9, -1);
        let c = canon(&a, Guard::Always, &g);
        assert_eq!(c.opaque, (-9, 9));
        assert_eq!(c.interval(), (91, 109));
    }

    #[test]
    fn opaque_interval_separation_still_proves_disjoint() {
        let g = LintGeometry::d1(256, 64);
        // Scatter into [0, 299] vs a plain write at [512, 767]: separated.
        let scatter = canon(
            &Affine::constant(0).plus_opaque(0, 299, 1),
            Guard::Always,
            &g,
        );
        let block = canon(&Affine::of(Var::GlobalLinear).plus(512), Guard::Always, &g);
        assert_eq!(pair_disjoint(&scatter, &block), PairOutcome::Disjoint);
        // Overlapping ranges stay unknown, never a definite collision.
        let near = canon(&Affine::of(Var::GlobalLinear), Guard::Always, &g);
        assert!(matches!(
            pair_disjoint(&scatter, &near),
            PairOutcome::Unknown(_)
        ));
    }

    #[test]
    fn shifted_neighbor_access_is_a_definite_cross_group_overlap() {
        let g = LintGeometry::d1(256, 64);
        // write out[gid], read out[gid + 64]: group g+1 reads group g's set.
        let w = canon(&Affine::of(Var::GlobalLinear), Guard::Always, &g);
        let r = canon(&Affine::of(Var::GlobalLinear).plus(64), Guard::Always, &g);
        assert_eq!(definite_cross_group_shift(&w, &r), Some(1));
        assert_eq!(definite_cross_group_shift(&r, &w), Some(-1));
        // A shift beyond the grid never collides.
        let far = canon(
            &Affine::of(Var::GlobalLinear).plus(64 * 4),
            Guard::Always,
            &g,
        );
        assert_eq!(definite_cross_group_shift(&w, &far), None);
        // A shift that is not a group-stride multiple is outside this
        // argument's reach (it may still overlap — just not provably-so
        // here; pair reasoning reports Unknown for it).
        let sub = canon(&Affine::of(Var::GlobalLinear).plus(3), Guard::Always, &g);
        assert_eq!(definite_cross_group_shift(&w, &sub), None);
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(-4, 6), 2);
    }
}
