//! Thread-coarsening legality prover and static cost model.
//!
//! The native backend coarsens a kernel by fusing `K` consecutive
//! workgroups into one dispatch chunk: one worker runs the `K` groups
//! back-to-back (each with its own fresh local memory and barrier scope),
//! amortizing per-chunk dispatch overhead the way classic thread-coarsening
//! amortizes per-thread scheduling cost. Fusion changes *when* groups run
//! relative to each other, so it is observable exactly when the kernel has
//! a cross-group dependence — a read or write in one group touching an
//! element another group writes. This pass proves the absence of such
//! dependences from the kernel's [`KernelAccessSpec`] and emits one of:
//!
//! * [`CoarsenVerdict::Proven`] — no cross-group dependence exists; fusing
//!   any `K ≤ k_max` is bit-exact. Legality is independent of `K` (fusion
//!   only reorders whole groups), so `k_max` is simply the group count.
//! * [`CoarsenVerdict::Illegal`] — a cross-group dependence *definitely*
//!   exists (e.g. a neighbor-shift access or an all-groups-write-the-same-
//!   element pattern). The runtime refuses a forced coarsening request.
//! * [`CoarsenVerdict::Unknown`] — neither provable nor refutable with the
//!   available affine reasoning (opaque indices, mixed guards). The
//!   runtime falls back to uncoarsened dispatch.
//!
//! Soundness note on the *definite* checks: [`definite_cross_group_shift`]
//! and the group-blind write check compare canonical domains, which encode
//! `Always`/`LocalLeader` guards exactly but over-approximate
//! `GlobalLt`/`LocalLt`. Both checks therefore only fire when every
//! involved guard is exact; otherwise the pair degrades to `Unknown`.

use crate::features::KernelFeatures;
use crate::from_ir::lift_loop;
use crate::ir::{AccessKind, Guard, Index, KernelAccessSpec, LintGeometry, Target};
use crate::lints::barrier_divergences;
use crate::prove::{
    canonicalize, cross_group_disjoint, definite_cross_group_shift, pair_cross_group_disjoint,
    Canon, PairOutcome,
};

/// Legality verdict for fusing workgroups of one kernel at one geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoarsenVerdict {
    /// Coarsening by any factor up to `k_max` is proven bit-exact.
    Proven { k_max: usize },
    /// A cross-group dependence definitely exists; coarsening changes
    /// observable behaviour (or the kernel is racy to begin with).
    Illegal { reason: String },
    /// Legality could not be decided; the runtime must not coarsen.
    Unknown { reason: String },
}

impl CoarsenVerdict {
    pub fn is_proven(&self) -> bool {
        matches!(self, CoarsenVerdict::Proven { .. })
    }

    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            CoarsenVerdict::Proven { k_max } => format!("Proven(K≤{k_max})"),
            CoarsenVerdict::Illegal { .. } => "Illegal".into(),
            CoarsenVerdict::Unknown { .. } => "Unknown".into(),
        }
    }

    pub fn reason(&self) -> &str {
        match self {
            CoarsenVerdict::Proven { .. } => "",
            CoarsenVerdict::Illegal { reason } | CoarsenVerdict::Unknown { reason } => reason,
        }
    }
}

/// How an entire kernel's guards behave under fusion, for the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardClass {
    /// Every access and barrier runs unconditionally.
    Uniform,
    /// Only `GlobalLt` tails beyond unconditional accesses — the classic
    /// `if (i < n)` boundary guard, benign under whole-group fusion.
    Tail,
    /// Lane-masking guards (`LocalLt`/`LocalLeader`) are present; fused
    /// groups still diverge exactly as unfused ones do.
    Divergent,
}

impl GuardClass {
    pub fn as_str(self) -> &'static str {
        match self {
            GuardClass::Uniform => "uniform",
            GuardClass::Tail => "tail",
            GuardClass::Divergent => "divergent",
        }
    }
}

/// Full result of the coarsening analysis of one kernel.
#[derive(Debug, Clone)]
pub struct CoarsenAnalysis {
    pub kernel: String,
    pub verdict: CoarsenVerdict,
    pub guards: GuardClass,
    /// Global writes individually proven cross-group disjoint.
    pub checked_writes: usize,
    /// Cross-group access pairs examined for RAW/WAR/WAW dependences.
    pub checked_pairs: usize,
    pub notes: Vec<String>,
}

/// A guard whose canonical domain is exact (see module docs): the definite
/// (Illegal-producing) provers are only sound over such guards.
fn guard_exact(g: Guard) -> bool {
    matches!(g, Guard::Always | Guard::LocalLeader)
}

fn classify_guards(spec: &KernelAccessSpec) -> GuardClass {
    let mut class = GuardClass::Uniform;
    let guards = spec
        .phases
        .iter()
        .flat_map(|p| p.accesses.iter().map(|a| a.guard))
        .chain(spec.barriers.iter().copied());
    for g in guards {
        match g {
            Guard::Always => {}
            Guard::GlobalLt(_) => {
                if class == GuardClass::Uniform {
                    class = GuardClass::Tail;
                }
            }
            Guard::LocalLt(_) | Guard::LocalLeader => return GuardClass::Divergent,
        }
    }
    class
}

/// A write whose canonical group part is blind to the group id: every group
/// writes the *same* nonempty element set, a definite cross-group WAW.
fn group_blind_write(c: &Canon) -> bool {
    if c.has_opaque() {
        return false;
    }
    let group_dims: Vec<usize> = (3..6).filter(|&i| c.bounds[i] > 1).collect();
    !group_dims.is_empty() && group_dims.iter().all(|&i| c.coefs[i] == 0)
}

/// Prove (or refute) coarsening legality of `spec` at its geometry.
pub fn analyze_coarsen(spec: &KernelAccessSpec) -> CoarsenAnalysis {
    let geom = &spec.geometry;
    let n_groups = geom.n_groups();
    let guards = classify_guards(spec);
    let mut notes = Vec::new();
    let mut checked_writes = 0usize;
    let mut checked_pairs = 0usize;
    let mut unknown: Option<String> = None;
    let record_unknown = |u: &mut Option<String>, reason: String| {
        if u.is_none() {
            *u = Some(reason);
        }
    };

    // Divergent barriers deadlock (or desynchronize) a workgroup with or
    // without fusion; fused dispatch must refuse them outright.
    let divergences = barrier_divergences(spec);
    if let Some(d) = divergences.first() {
        return CoarsenAnalysis {
            kernel: spec.name.clone(),
            verdict: CoarsenVerdict::Illegal {
                reason: format!("barrier not workgroup-uniform: {d}"),
            },
            guards,
            checked_writes,
            checked_pairs,
            notes,
        };
    }

    // Gather every global access with its canonical form (when one exists).
    struct Acc<'a> {
        buf: usize,
        kind: AccessKind,
        index: &'a Index,
        guard: Guard,
        canon: Option<Canon>,
    }
    let mut accs: Vec<Acc<'_>> = Vec::new();
    for phase in &spec.phases {
        for a in &phase.accesses {
            let Target::Global(buf) = a.target else {
                // Local memory is per-group and re-allocated per fused
                // group; it cannot carry a cross-group dependence.
                continue;
            };
            let canon = match &a.index {
                Index::Opaque { .. } => None,
                Index::Affine(af) => canonicalize(af, a.guard, geom),
            };
            accs.push(Acc {
                buf,
                kind: a.kind,
                index: &a.index,
                guard: a.guard,
                canon,
            });
        }
    }

    // Per-write proof: each non-atomic global write must be cross-group
    // disjoint (atomics serialize collisions and tolerate group reorder).
    for a in accs.iter().filter(|a| a.kind == AccessKind::Write) {
        checked_writes += 1;
        let buf = &spec.global_buffers[a.buf].name;
        match &a.canon {
            None => record_unknown(
                &mut unknown,
                format!("write to `{buf}` has a data-dependent index"),
            ),
            Some(c) => {
                if n_groups > 1 && guard_exact(a.guard) && group_blind_write(c) {
                    return CoarsenAnalysis {
                        kernel: spec.name.clone(),
                        verdict: CoarsenVerdict::Illegal {
                            reason: format!(
                                "every group writes the same `{buf}` elements (group-blind write)"
                            ),
                        },
                        guards,
                        checked_writes,
                        checked_pairs,
                        notes,
                    };
                }
                if let Err(e) = cross_group_disjoint(c) {
                    record_unknown(&mut unknown, format!("write to `{buf}`: {e}"));
                }
            }
        }
    }

    // Pairwise cross-group dependences: any (write, access) pair on the
    // same buffer can order-couple two groups. Identical (index, guard)
    // pairs are covered by the per-write proof above (group g's element set
    // is the same on both sides), and atomic-atomic pairs are
    // order-tolerant by construction.
    for (i, a) in accs.iter().enumerate() {
        for b in accs.iter().skip(i + 1) {
            if a.buf != b.buf {
                continue;
            }
            let a_writes = a.kind != AccessKind::Read;
            let b_writes = b.kind != AccessKind::Read;
            if !a_writes && !b_writes {
                continue;
            }
            if a.kind == AccessKind::AtomicUpdate && b.kind == AccessKind::AtomicUpdate {
                continue;
            }
            if a.index == b.index && a.guard == b.guard {
                continue;
            }
            checked_pairs += 1;
            let buf = &spec.global_buffers[a.buf].name;
            let (Some(ca), Some(cb)) = (&a.canon, &b.canon) else {
                record_unknown(
                    &mut unknown,
                    format!("dependence on `{buf}` involves a data-dependent index"),
                );
                continue;
            };
            match pair_cross_group_disjoint(ca, cb) {
                PairOutcome::Disjoint => {}
                PairOutcome::Collide(r) => {
                    return CoarsenAnalysis {
                        kernel: spec.name.clone(),
                        verdict: CoarsenVerdict::Illegal {
                            reason: format!("cross-group dependence on `{buf}`: {r}"),
                        },
                        guards,
                        checked_writes,
                        checked_pairs,
                        notes,
                    };
                }
                PairOutcome::Unknown(r) => {
                    if guard_exact(a.guard) && guard_exact(b.guard) {
                        if let Some(m) = definite_cross_group_shift(ca, cb) {
                            return CoarsenAnalysis {
                                kernel: spec.name.clone(),
                                verdict: CoarsenVerdict::Illegal {
                                    reason: format!(
                                        "access pair on `{buf}` reaches {m} group(s) over: \
                                         a definite cross-group dependence"
                                    ),
                                },
                                guards,
                                checked_writes,
                                checked_pairs,
                                notes,
                            };
                        }
                    }
                    record_unknown(&mut unknown, format!("dependence on `{buf}`: {r}"));
                }
            }
        }
    }

    let verdict = match unknown {
        Some(reason) => CoarsenVerdict::Unknown { reason },
        None => CoarsenVerdict::Proven {
            k_max: n_groups.max(1),
        },
    };
    if n_groups <= 1 {
        notes.push("single-group launch: coarsening is vacuous".into());
    }
    CoarsenAnalysis {
        kernel: spec.name.clone(),
        verdict,
        guards,
        checked_writes,
        checked_pairs,
        notes,
    }
}

/// Lift a `cl_vec` loop IR (the par-for twins) into an access spec and run
/// the coarsening analysis on it. Lifting caveats are appended to
/// [`CoarsenAnalysis::notes`].
pub fn analyze_coarsen_loop(
    name: &str,
    l: &cl_vec::Loop,
    arrays: &[(String, usize)],
    geometry: LintGeometry,
) -> CoarsenAnalysis {
    let (spec, lift_notes) = lift_loop(name, l, arrays, geometry);
    let mut analysis = analyze_coarsen(&spec);
    analysis.notes.extend(lift_notes);
    analysis
}

/// The coarsening decision the runtime attaches to an enqueue plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarsenPlan {
    /// Groups fused per dispatch chunk (1 = no coarsening).
    pub factor: usize,
    /// Static prediction of dispatch-path speedup from fusing `factor`
    /// groups, from the architecture-independent cost model.
    pub predicted_speedup: f64,
}

impl CoarsenPlan {
    pub const NONE: CoarsenPlan = CoarsenPlan {
        factor: 1,
        predicted_speedup: 1.0,
    };
}

/// Per-chunk dispatch overhead in workitem-units: the cost model's single
/// constant, calibrated against the PR 3 profiling timestamps by the
/// `cl-coarsen` harness (queue submit + worker wakeup ≈ this many simple
/// workitem executions).
pub const DISPATCH_OVERHEAD_ITEMS: f64 = 64.0;

/// Hard cap on the coarsening factor: beyond this, chunks get coarse
/// enough to hurt load balance with no measurable dispatch savings left.
pub const MAX_FACTOR: usize = 64;

/// Relative per-item cost weight of a kernel from its static features:
/// heavier items shrink the dispatch-overhead fraction and with it the
/// gain from fusing.
fn item_weight(f: &KernelFeatures) -> f64 {
    let lane = f
        .lanes
        .iter()
        .map(|l| match l.class {
            crate::features::LaneClass::UnitStride | crate::features::LaneClass::Broadcast => 1.0,
            crate::features::LaneClass::Strided(_) => 1.5,
            crate::features::LaneClass::Divergent => 2.0,
            crate::features::LaneClass::Gather => 3.0,
        })
        .fold(1.0f64, f64::max);
    lane * (1.0 + f.arith_mem_ratio).max(1.0)
}

/// Pick a coarsening factor for a `Proven` kernel and predict its speedup.
///
/// Factor: enough groups per chunk to amortize dispatch, but never fewer
/// than `4 · workers` chunks total (load balance), never above
/// [`MAX_FACTOR`] or the proven `k_max`. Predicted speedup is the ratio of
/// per-group cost with and without amortized overhead:
/// `(wg·w + D) / (wg·w + D/K)` with `D` = [`DISPATCH_OVERHEAD_ITEMS`].
pub fn choose_factor(
    analysis: &CoarsenAnalysis,
    features: &KernelFeatures,
    workers: usize,
) -> CoarsenPlan {
    let CoarsenVerdict::Proven { k_max } = analysis.verdict else {
        return CoarsenPlan::NONE;
    };
    let n_groups = features.n_groups.max(1);
    let balance = (n_groups / (4 * workers.max(1))).max(1);
    let factor = k_max.min(MAX_FACTOR).min(balance).max(1);
    if factor <= 1 {
        return CoarsenPlan::NONE;
    }
    let w = item_weight(features);
    let group_cost = features.wg_size.max(1) as f64 * w;
    let d = DISPATCH_OVERHEAD_ITEMS;
    let predicted_speedup = (group_cost + d) / (group_cost + d / factor as f64);
    CoarsenPlan {
        factor,
        predicted_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::features;
    use crate::ir::{Affine, SpecBuilder, Var};

    fn geom() -> LintGeometry {
        LintGeometry::d1(16 * 1024, 64)
    }

    fn streaming_spec() -> KernelAccessSpec {
        let mut b = SpecBuilder::new("square", geom());
        let inp = b.buffer("in", 16 * 1024);
        let out = b.buffer("out", 16 * 1024);
        b.read(inp, Affine::of(Var::GlobalLinear), Guard::Always);
        b.write(out, Affine::of(Var::GlobalLinear), Guard::Always);
        b.finish()
    }

    #[test]
    fn streaming_kernel_is_proven_to_full_depth() {
        let a = analyze_coarsen(&streaming_spec());
        assert_eq!(a.verdict, CoarsenVerdict::Proven { k_max: 256 });
        assert_eq!(a.guards, GuardClass::Uniform);
        assert_eq!(a.checked_writes, 1);
    }

    #[test]
    fn reduction_shape_is_proven_with_divergent_guards() {
        // Tree reduction: strided local phases, leader writes out[group].
        let g = LintGeometry::d1(4096, 256);
        let mut b = SpecBuilder::new("reduction", g);
        let inp = b.buffer("in", 4096);
        let out = b.buffer("out", 16);
        let scratch = b.local("scratch", 256);
        b.read(inp, Affine::of(Var::GlobalLinear), Guard::Always);
        b.local_write(scratch, Affine::of(Var::LocalLinear), Guard::Always);
        b.barrier(Guard::Always);
        b.local_read(scratch, Affine::of(Var::LocalLinear), Guard::LocalLt(128));
        b.local_write(scratch, Affine::of(Var::LocalLinear), Guard::LocalLt(128));
        b.write(out, Affine::of(Var::GroupLinear), Guard::LocalLeader);
        let a = analyze_coarsen(&b.finish());
        assert_eq!(a.verdict, CoarsenVerdict::Proven { k_max: 16 });
        assert_eq!(a.guards, GuardClass::Divergent);
    }

    #[test]
    fn neighbor_shift_read_is_definitely_illegal() {
        // out[gid] = f(out[gid + wg]): group g reads group g+1's writes.
        let mut b = SpecBuilder::new("neighbor-shift", geom());
        let out = b.buffer("out", 16 * 1024 + 64);
        b.read(out, Affine::of(Var::GlobalLinear).plus(64), Guard::Always);
        b.write(out, Affine::of(Var::GlobalLinear), Guard::Always);
        let a = analyze_coarsen(&b.finish());
        assert!(
            matches!(&a.verdict, CoarsenVerdict::Illegal { reason } if reason.contains("group")),
            "verdict: {:?}",
            a.verdict
        );
    }

    #[test]
    fn group_blind_write_is_definitely_illegal() {
        // out[lx]: every group writes elements 0..64.
        let mut b = SpecBuilder::new("all-write", geom());
        let out = b.buffer("out", 64);
        b.write(out, Affine::of(Var::LocalLinear), Guard::Always);
        let a = analyze_coarsen(&b.finish());
        assert!(
            matches!(&a.verdict, CoarsenVerdict::Illegal { reason } if reason.contains("group-blind")),
            "verdict: {:?}",
            a.verdict
        );
    }

    #[test]
    fn opaque_scatter_is_unknown_not_illegal() {
        let mut b = SpecBuilder::new("scatter", geom());
        let out = b.buffer("out", 16 * 1024);
        b.write(
            out,
            Index::Opaque {
                min: 0,
                max: 16 * 1024 - 1,
            },
            Guard::Always,
        );
        let a = analyze_coarsen(&b.finish());
        assert!(matches!(a.verdict, CoarsenVerdict::Unknown { .. }));
    }

    #[test]
    fn atomic_histogram_is_proven() {
        // Atomic bin updates collide across groups by design; collisions
        // serialize, so group order is unobservable.
        let mut b = SpecBuilder::new("histogram", geom());
        let inp = b.buffer("in", 16 * 1024);
        let bins = b.buffer("bins", 256);
        b.read(inp, Affine::of(Var::GlobalLinear), Guard::Always);
        b.atomic(bins, Index::Opaque { min: 0, max: 255 }, Guard::Always);
        let a = analyze_coarsen(&b.finish());
        assert!(a.verdict.is_proven(), "verdict: {:?}", a.verdict);
    }

    #[test]
    fn tail_guard_defeats_the_definite_shift_prover() {
        // Same shifted pair but under a GlobalLt tail guard: the canonical
        // domain over-approximates, so the verdict must degrade to Unknown
        // rather than claim a definite dependence.
        let mut b = SpecBuilder::new("tail-shift", geom());
        let out = b.buffer("out", 16 * 1024 + 64);
        b.read(
            out,
            Affine::of(Var::GlobalLinear).plus(64),
            Guard::GlobalLt(16 * 1024 - 100),
        );
        b.write(
            out,
            Affine::of(Var::GlobalLinear),
            Guard::GlobalLt(16 * 1024 - 100),
        );
        let a = analyze_coarsen(&b.finish());
        assert!(
            matches!(a.verdict, CoarsenVerdict::Unknown { .. }),
            "verdict: {:?}",
            a.verdict
        );
    }

    #[test]
    fn single_group_launch_is_vacuously_proven() {
        let g = LintGeometry::d1(64, 64);
        let mut b = SpecBuilder::new("one-group", g);
        let out = b.buffer("out", 64);
        b.write(out, Affine::of(Var::LocalLinear), Guard::Always);
        let a = analyze_coarsen(&b.finish());
        assert_eq!(a.verdict, CoarsenVerdict::Proven { k_max: 1 });
        assert!(a.notes.iter().any(|n| n.contains("vacuous")));
    }

    #[test]
    fn choose_factor_amortizes_without_starving_workers() {
        let spec = streaming_spec();
        let a = analyze_coarsen(&spec);
        let f = features(&spec, 1.0);
        let plan = choose_factor(&a, &f, 2);
        // 256 groups / (4·2) = 32 chunks → factor 32.
        assert_eq!(plan.factor, 32);
        assert!(plan.predicted_speedup > 1.0);
        // More workers → smaller factor to keep chunks per worker.
        let wide = choose_factor(&a, &f, 64);
        assert_eq!(wide.factor, 1);
        assert_eq!(wide.predicted_speedup, 1.0);
    }

    #[test]
    fn choose_factor_refuses_non_proven_kernels() {
        let mut b = SpecBuilder::new("scatter", geom());
        let out = b.buffer("out", 16 * 1024);
        b.write(
            out,
            Index::Opaque {
                min: 0,
                max: 16 * 1024 - 1,
            },
            Guard::Always,
        );
        let spec = b.finish();
        let a = analyze_coarsen(&spec);
        let f = features(&spec, 1.0);
        assert_eq!(choose_factor(&a, &f, 2), CoarsenPlan::NONE);
    }

    #[test]
    fn loop_ir_twin_gets_a_verdict() {
        use cl_vec::{ArrayId, IndexExpr, Loop, Op, Operand, Stmt, Temp, TripCount};
        // c[i] = a[i] * b[i] — the elementwise par-for twin.
        let l = Loop::new(
            TripCount::Constant(1024),
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: ArrayId(0),
                    index: IndexExpr::linear(),
                },
                Stmt::Load {
                    dst: Temp(1),
                    array: ArrayId(1),
                    index: IndexExpr::linear(),
                },
                Stmt::BinOp {
                    dst: Temp(2),
                    op: Op::Mul,
                    lhs: Operand::Temp(Temp(0)),
                    rhs: Operand::Temp(Temp(1)),
                },
                Stmt::Store {
                    array: ArrayId(2),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(2)),
                },
            ],
        );
        let arrays = vec![
            ("a".to_string(), 1024),
            ("b".to_string(), 1024),
            ("c".to_string(), 1024),
        ];
        let a = analyze_coarsen_loop("twin", &l, &arrays, LintGeometry::d1(1024, 64));
        assert_eq!(a.kernel, "twin");
        assert_eq!(a.verdict, CoarsenVerdict::Proven { k_max: 16 });

        // The same twin with a cross-iteration shifted store is refused.
        let bad = Loop::new(
            TripCount::Constant(1024),
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: ArrayId(0),
                    index: IndexExpr::shifted(64),
                },
                Stmt::Store {
                    array: ArrayId(0),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(0)),
                },
            ],
        );
        let arrays = vec![("a".to_string(), 1024 + 64)];
        let b = analyze_coarsen_loop("twin-shift", &bad, &arrays, LintGeometry::d1(1024, 64));
        assert!(
            matches!(b.verdict, CoarsenVerdict::Illegal { .. }),
            "verdict: {:?}",
            b.verdict
        );
    }
}
