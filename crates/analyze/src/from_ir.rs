//! Lifting `cl_vec` loop IR into the access IR.
//!
//! `cl_vec::ir::Loop` describes one scalar loop with single-induction
//! affine indices (`stride·i + offset`) — the form the vectorizer analyzes.
//! The runtime's program-built kernels execute such a loop with one
//! iteration per workitem, so the induction variable *is* the global
//! linear id. This module performs that lift, producing a
//! [`KernelAccessSpec`] the four lints understand.

use cl_vec::{Loop, Stmt};

use crate::ir::{Affine, Guard, KernelAccessSpec, LintGeometry, SpecBuilder, Var};

/// Lift a `cl_vec` loop into an access spec.
///
/// `arrays` names each `ArrayId` in order and gives its element length.
/// Accesses nested under data-dependent `If` branches are included with
/// their full (unconditional) domain — a superset, which keeps race proofs
/// sound — and reported in the returned notes.
pub fn lift_loop(
    name: &str,
    l: &Loop,
    arrays: &[(String, usize)],
    geometry: LintGeometry,
) -> (KernelAccessSpec, Vec<String>) {
    let mut b = SpecBuilder::new(name, geometry);
    let bufs: Vec<_> = arrays
        .iter()
        .map(|(n, len)| b.buffer(n.clone(), *len))
        .collect();
    let mut notes = Vec::new();
    if l.trip == cl_vec::TripCount::DataDependent {
        notes.push("trip count is data-dependent: analyzed at the full NDRange".into());
    }
    let mut depth = 0usize;
    walk(&l.body, &mut b, &bufs, &mut depth, &mut notes);
    (b.finish(), notes)
}

fn walk(
    stmts: &[Stmt],
    b: &mut SpecBuilder,
    bufs: &[crate::ir::GlobalBuf],
    depth: &mut usize,
    notes: &mut Vec<String>,
) {
    for s in stmts {
        match s {
            Stmt::Load { array, index, .. } => {
                note_if_branched(*depth, notes, "load");
                b.read(
                    bufs[array.0 as usize],
                    Affine::from_index_expr(*index, Var::GlobalLinear),
                    Guard::Always,
                );
            }
            Stmt::Store { array, index, .. } => {
                note_if_branched(*depth, notes, "store");
                b.write(
                    bufs[array.0 as usize],
                    Affine::from_index_expr(*index, Var::GlobalLinear),
                    Guard::Always,
                );
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                *depth += 1;
                walk(then_body, b, bufs, depth, notes);
                walk(else_body, b, bufs, depth, notes);
                *depth -= 1;
            }
            Stmt::Break => {
                notes.push("early exit: later iterations may not run (superset domain)".into())
            }
            Stmt::BinOp { .. }
            | Stmt::MathCall { .. }
            | Stmt::OpaqueCall { .. }
            | Stmt::AccUpdate { .. } => {}
        }
    }
}

fn note_if_branched(depth: usize, notes: &mut Vec<String>, what: &str) {
    if depth > 0 {
        notes.push(format!(
            "{what} under a data-dependent branch: treated as unconditional"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{analyze, Verdict};
    use cl_vec::{ArrayId, IndexExpr, Operand, Temp, TripCount};

    #[test]
    fn streaming_loop_lifts_to_a_clean_spec() {
        // out[i] = in[i] (the copy microbenchmark shape).
        let n = 4096;
        let l = Loop::new(
            TripCount::Runtime,
            vec![
                Stmt::Load {
                    dst: Temp(0),
                    array: ArrayId(0),
                    index: IndexExpr::linear(),
                },
                Stmt::Store {
                    array: ArrayId(1),
                    index: IndexExpr::linear(),
                    src: Operand::Temp(Temp(0)),
                },
            ],
        );
        let (spec, notes) = lift_loop(
            "copy",
            &l,
            &[("in".into(), n), ("out".into(), n)],
            LintGeometry::d1(n, 256),
        );
        assert!(notes.is_empty());
        let r = analyze(&spec);
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.disjoint_writes, Verdict::Proven);
    }

    #[test]
    fn strided_store_with_short_buffer_is_flagged() {
        // out[2i + 1] with out only n long: indices reach 2n - 1.
        let n = 1024;
        let l = Loop::new(
            TripCount::Runtime,
            vec![Stmt::Store {
                array: ArrayId(0),
                index: IndexExpr {
                    stride: 2,
                    offset: 1,
                },
                src: Operand::Const(0.0),
            }],
        );
        let (spec, _) = lift_loop(
            "strided",
            &l,
            &[("out".into(), n)],
            LintGeometry::d1(n, 256),
        );
        let r = analyze(&spec);
        assert_eq!(r.bounds, Verdict::Violation);
        // The write itself is injective, so disjointness still proves.
        assert_eq!(r.disjoint_writes, Verdict::Proven);
    }

    #[test]
    fn branched_store_is_noted_but_analyzed() {
        let n = 512;
        let l = Loop::new(
            TripCount::Runtime,
            vec![Stmt::If {
                cond: Operand::Temp(Temp(0)),
                then_body: vec![Stmt::Store {
                    array: ArrayId(0),
                    index: IndexExpr::linear(),
                    src: Operand::Const(1.0),
                }],
                else_body: vec![],
            }],
        );
        let (spec, notes) = lift_loop("masked", &l, &[("out".into(), n)], LintGeometry::d1(n, 64));
        assert_eq!(notes.len(), 1);
        assert!(analyze(&spec).clean());
    }
}
