//! The per-workitem kernel access IR.
//!
//! A [`KernelAccessSpec`] describes, symbolically, every global- and
//! local-memory access a kernel performs as an affine function of the
//! workitem coordinates, segmented into barrier-separated phases. It lifts
//! the single-loop affine index machinery of `cl_vec::ir::IndexExpr`
//! (`stride·i + offset` over one induction variable) to the NDRange domain:
//! multi-term affine expressions over the six workitem id variables, with
//! execution guards and barrier structure.
//!
//! Specs are pure data: building one allocates no buffers and runs no
//! kernel, so the lints can sweep every registry kernel cheaply.

use cl_vec::IndexExpr;

/// A workitem id variable an index may depend on.
///
/// Dimension-indexed variables take `d ∈ {0, 1, 2}`. The linearized forms
/// match the runtime's `global_linear`/`local_linear`/`group_linear`
/// (x fastest): `global_linear = gx + gy·GX + gz·GX·GY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// `get_global_id(d)`
    Global(u8),
    /// `get_local_id(d)`
    Local(u8),
    /// `get_group_id(d)`
    Group(u8),
    /// Flattened global id.
    GlobalLinear,
    /// Flattened local id within the workgroup.
    LocalLinear,
    /// Flattened workgroup id.
    GroupLinear,
    /// A data-dependent value known only to lie in `[min, max]` (inclusive)
    /// — e.g. an index loaded from another buffer (`out[perm[i]]`). Each
    /// `Opaque` term stands for an *independent* unknown: two workitems (or
    /// two terms of one expression) may see arbitrary, unrelated values in
    /// the range. Interval reasoning stays sound by adding the scaled span;
    /// every proof that needs injectivity, residues, or exact coverage
    /// conservatively bails.
    Opaque { min: i64, max: i64 },
}

/// A multi-term affine index expression: `Σ coef·var + offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Affine {
    pub terms: Vec<(Var, i64)>,
    pub offset: i64,
}

impl Affine {
    /// The constant expression `offset`.
    pub fn constant(offset: i64) -> Self {
        Affine {
            terms: Vec::new(),
            offset,
        }
    }

    /// `coef · var`.
    pub fn var(var: Var, coef: i64) -> Self {
        Affine {
            terms: vec![(var, coef)],
            offset: 0,
        }
    }

    /// `var` with coefficient 1.
    pub fn of(var: Var) -> Self {
        Affine::var(var, 1)
    }

    /// Add a constant.
    pub fn plus(mut self, c: i64) -> Self {
        self.offset += c;
        self
    }

    /// Add another term, merging coefficients of repeated variables.
    pub fn plus_var(mut self, var: Var, coef: i64) -> Self {
        if let Some(t) = self.terms.iter_mut().find(|(v, _)| *v == var) {
            t.1 += coef;
        } else {
            self.terms.push((var, coef));
        }
        self.terms.retain(|(_, c)| *c != 0);
        self
    }

    /// Add `coef · t` where `t` is a fresh data-dependent value in
    /// `[min, max]`. Unlike [`Affine::plus_var`], repeated opaque terms are
    /// *not* merged: each stands for an independent unknown, so folding
    /// `t₁ − t₂` into `0·t` would understate the range.
    pub fn plus_opaque(mut self, min: i64, max: i64, coef: i64) -> Self {
        debug_assert!(min <= max, "opaque range [{min}, {max}] is inverted");
        if coef != 0 {
            self.terms.push((Var::Opaque { min, max }, coef));
        }
        self
    }

    /// Whether any term is data-dependent ([`Var::Opaque`]).
    pub fn has_opaque(&self) -> bool {
        self.terms
            .iter()
            .any(|(v, _)| matches!(v, Var::Opaque { .. }))
    }

    /// Lift a `cl_vec` single-induction index to this IR, with the loop
    /// induction variable standing for `var` (usually [`Var::GlobalLinear`]:
    /// the canonical "one loop iteration per workitem" mapping).
    pub fn from_index_expr(ix: IndexExpr, var: Var) -> Self {
        if ix.stride == 0 {
            Affine::constant(ix.offset)
        } else {
            Affine::var(var, ix.stride).plus(ix.offset)
        }
    }

    /// If the expression uses at most the single variable `var`, return
    /// `(coef, offset)` (`coef` = 0 for constants).
    pub fn as_single(&self, var: Var) -> Option<(i64, i64)> {
        match self.terms.as_slice() {
            [] => Some((0, self.offset)),
            [(v, c)] if *v == var => Some((*c, self.offset)),
            _ => None,
        }
    }
}

/// An index expression: affine in the workitem ids, or data-dependent with
/// a known conservative range (e.g. a histogram bin computed from input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Index {
    Affine(Affine),
    /// Data-dependent index known only to lie in `[min, max]` (inclusive).
    Opaque {
        min: i64,
        max: i64,
    },
}

impl From<Affine> for Index {
    fn from(a: Affine) -> Self {
        Index::Affine(a)
    }
}

/// What kind of memory operation an access performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    /// A read-modify-write through an atomic; exempt from the
    /// disjoint-write contract (collisions are serialized) but still
    /// bounds-checked.
    AtomicUpdate,
}

/// Which memory space, and which buffer within it, an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Index into [`KernelAccessSpec::global_buffers`].
    Global(usize),
    /// Index into [`KernelAccessSpec::local_buffers`].
    Local(usize),
}

/// The execution guard under which an access (or barrier) runs.
///
/// Guards restrict the set of active workitems; the provers use them to
/// tighten domains, and the divergence lint uses them to decide whether a
/// barrier is workgroup-uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Every workitem executes.
    Always,
    /// Only the workitem with `local_linear == 0` (e.g. the final
    /// per-group result store of a reduction).
    LocalLeader,
    /// Only workitems with `local_linear < bound` (tree-reduction phases).
    LocalLt(usize),
    /// Only workitems with `global_linear < bound` (`if (i < n)` tails).
    GlobalLt(usize),
}

/// One symbolic memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    pub target: Target,
    pub kind: AccessKind,
    pub index: Index,
    pub guard: Guard,
}

/// A barrier-free interval of a kernel: every access in a phase may execute
/// concurrently across workitems with no intervening synchronization.
#[derive(Debug, Clone, Default)]
pub struct Phase {
    pub accesses: Vec<Access>,
}

/// A named buffer with its element length for the analyzed launch.
#[derive(Debug, Clone)]
pub struct BufferSpec {
    pub name: String,
    pub len: usize,
}

/// The launch geometry a spec is analyzed against.
///
/// Self-contained (depends only on this crate) so the analysis sits below
/// the runtime in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintGeometry {
    pub global: [usize; 3],
    pub local: [usize; 3],
}

impl LintGeometry {
    /// A 1-D launch. `local` must divide `global`.
    pub fn d1(global: usize, local: usize) -> Self {
        LintGeometry {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// A 2-D launch.
    pub fn d2(gx: usize, gy: usize, lx: usize, ly: usize) -> Self {
        LintGeometry {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
        }
    }

    /// Check the geometry is well-formed: nonzero sizes, local divides
    /// global in every dimension.
    pub fn validate(&self) -> Result<(), String> {
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(format!("dimension {d}: zero size"));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(format!(
                    "dimension {d}: local {} does not divide global {}",
                    self.local[d], self.global[d]
                ));
            }
        }
        Ok(())
    }

    /// Workgroups along dimension `d`.
    pub fn groups(&self, d: usize) -> usize {
        self.global[d] / self.local[d]
    }

    /// Total workitems.
    pub fn items(&self) -> usize {
        self.global.iter().product()
    }

    /// Workitems per group.
    pub fn wg_size(&self) -> usize {
        self.local.iter().product()
    }

    /// Total workgroups.
    pub fn n_groups(&self) -> usize {
        (0..3).map(|d| self.groups(d)).product()
    }
}

/// The complete symbolic access description of one kernel at one geometry.
#[derive(Debug, Clone)]
pub struct KernelAccessSpec {
    pub name: String,
    pub geometry: LintGeometry,
    pub global_buffers: Vec<BufferSpec>,
    pub local_buffers: Vec<BufferSpec>,
    /// Barrier-separated intervals, in program order. `phases.len()` is
    /// always `barriers.len() + 1`.
    pub phases: Vec<Phase>,
    /// The guard each barrier executes under; barrier `i` separates
    /// `phases[i]` from `phases[i + 1]`.
    pub barriers: Vec<Guard>,
}

/// Handle to a declared global buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalBuf(pub usize);

/// Handle to a declared local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalBuf(pub usize);

/// Fluent builder for [`KernelAccessSpec`].
pub struct SpecBuilder {
    spec: KernelAccessSpec,
}

impl SpecBuilder {
    pub fn new(name: impl Into<String>, geometry: LintGeometry) -> Self {
        SpecBuilder {
            spec: KernelAccessSpec {
                name: name.into(),
                geometry,
                global_buffers: Vec::new(),
                local_buffers: Vec::new(),
                phases: vec![Phase::default()],
                barriers: Vec::new(),
            },
        }
    }

    /// Declare a global buffer of `len` elements.
    pub fn buffer(&mut self, name: impl Into<String>, len: usize) -> GlobalBuf {
        self.spec.global_buffers.push(BufferSpec {
            name: name.into(),
            len,
        });
        GlobalBuf(self.spec.global_buffers.len() - 1)
    }

    /// Declare a local (per-workgroup) buffer of `len` elements.
    pub fn local(&mut self, name: impl Into<String>, len: usize) -> LocalBuf {
        self.spec.local_buffers.push(BufferSpec {
            name: name.into(),
            len,
        });
        LocalBuf(self.spec.local_buffers.len() - 1)
    }

    fn push(&mut self, access: Access) -> &mut Self {
        self.spec
            .phases
            .last_mut()
            .expect("at least one phase")
            .accesses
            .push(access);
        self
    }

    pub fn read(&mut self, buf: GlobalBuf, index: impl Into<Index>, guard: Guard) -> &mut Self {
        self.push(Access {
            target: Target::Global(buf.0),
            kind: AccessKind::Read,
            index: index.into(),
            guard,
        })
    }

    pub fn write(&mut self, buf: GlobalBuf, index: impl Into<Index>, guard: Guard) -> &mut Self {
        self.push(Access {
            target: Target::Global(buf.0),
            kind: AccessKind::Write,
            index: index.into(),
            guard,
        })
    }

    pub fn atomic(&mut self, buf: GlobalBuf, index: impl Into<Index>, guard: Guard) -> &mut Self {
        self.push(Access {
            target: Target::Global(buf.0),
            kind: AccessKind::AtomicUpdate,
            index: index.into(),
            guard,
        })
    }

    pub fn local_read(
        &mut self,
        buf: LocalBuf,
        index: impl Into<Index>,
        guard: Guard,
    ) -> &mut Self {
        self.push(Access {
            target: Target::Local(buf.0),
            kind: AccessKind::Read,
            index: index.into(),
            guard,
        })
    }

    pub fn local_write(
        &mut self,
        buf: LocalBuf,
        index: impl Into<Index>,
        guard: Guard,
    ) -> &mut Self {
        self.push(Access {
            target: Target::Local(buf.0),
            kind: AccessKind::Write,
            index: index.into(),
            guard,
        })
    }

    /// A read-modify-write through a local atomic (`atomic_inc` on
    /// `__local` memory): exempt from race pairing against other atomics,
    /// still bounds-checked.
    pub fn local_atomic(
        &mut self,
        buf: LocalBuf,
        index: impl Into<Index>,
        guard: Guard,
    ) -> &mut Self {
        self.push(Access {
            target: Target::Local(buf.0),
            kind: AccessKind::AtomicUpdate,
            index: index.into(),
            guard,
        })
    }

    /// End the current phase with a `barrier(CLK_*_MEM_FENCE)` executed
    /// under `guard` (a guard other than [`Guard::Always`] is what the
    /// divergence lint looks for).
    pub fn barrier(&mut self, guard: Guard) -> &mut Self {
        self.spec.barriers.push(guard);
        self.spec.phases.push(Phase::default());
        self
    }

    pub fn finish(self) -> KernelAccessSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_builder_merges_terms() {
        let a = Affine::of(Var::GlobalLinear)
            .plus_var(Var::GlobalLinear, 3)
            .plus(7);
        assert_eq!(a.terms, vec![(Var::GlobalLinear, 4)]);
        assert_eq!(a.offset, 7);
        assert_eq!(a.as_single(Var::GlobalLinear), Some((4, 7)));
        assert_eq!(a.as_single(Var::LocalLinear), None);
    }

    #[test]
    fn zero_coefficients_vanish() {
        let a = Affine::var(Var::Local(0), 2).plus_var(Var::Local(0), -2);
        assert!(a.terms.is_empty());
        assert_eq!(a.as_single(Var::Group(0)), Some((0, 0)));
    }

    #[test]
    fn opaque_terms_stay_separate_and_defeat_as_single() {
        let a = Affine::of(Var::GlobalLinear)
            .plus_opaque(0, 9, 1)
            .plus_opaque(0, 9, 1);
        assert!(a.has_opaque());
        assert_eq!(a.terms.len(), 3, "independent unknowns never merge");
        assert_eq!(a.as_single(Var::GlobalLinear), None);
        // Zero-coefficient opaque terms vanish at construction.
        let b = Affine::of(Var::GlobalLinear).plus_opaque(0, 9, 0);
        assert!(!b.has_opaque());
    }

    #[test]
    fn index_expr_lift_matches_at() {
        let ix = IndexExpr {
            stride: 4,
            offset: 3,
        };
        let a = Affine::from_index_expr(ix, Var::GlobalLinear);
        assert_eq!(a.as_single(Var::GlobalLinear), Some((4, 3)));
        // The lifted form evaluates like the original at any point.
        assert_eq!(ix.at(11), 4 * 11 + 3);
    }

    #[test]
    fn geometry_validation() {
        assert!(LintGeometry::d1(1024, 64).validate().is_ok());
        assert!(LintGeometry::d1(100, 64).validate().is_err());
        assert!(LintGeometry::d2(8, 6, 4, 3).validate().is_ok());
        let g = LintGeometry::d2(8, 6, 4, 3);
        assert_eq!(g.n_groups(), 2 * 2);
        assert_eq!(g.items(), 48);
        assert_eq!(g.wg_size(), 12);
    }

    #[test]
    fn builder_tracks_phases_and_barriers() {
        let geom = LintGeometry::d1(64, 8);
        let mut b = SpecBuilder::new("k", geom);
        let x = b.buffer("x", 64);
        let s = b.local("scratch", 8);
        b.read(x, Affine::of(Var::GlobalLinear), Guard::Always);
        b.local_write(s, Affine::of(Var::LocalLinear), Guard::Always);
        b.barrier(Guard::Always);
        b.write(x, Affine::of(Var::GroupLinear), Guard::LocalLeader);
        let spec = b.finish();
        assert_eq!(spec.phases.len(), 2);
        assert_eq!(spec.barriers.len(), 1);
        assert_eq!(spec.phases[0].accesses.len(), 2);
        assert_eq!(spec.phases[1].accesses.len(), 1);
    }
}
