//! # cl-analyze — static analysis of kernel memory access patterns
//!
//! OpenCL's memory model hands the programmer a contract: workitems in
//! different workgroups must never write the same global buffer element,
//! `__local` accesses must be separated by barriers, barriers must be
//! workgroup-uniform, and every index must stay in bounds. The runtime's
//! dynamic validator (`ocl_rt::validate_disjoint_writes`) checks the first
//! property by executing the kernel once per workgroup and diffing buffer
//! bytes — O(groups × buffer) work that also misses writes of
//! bit-identical values.
//!
//! This crate checks the same contracts *statically*. Kernels describe
//! their memory behavior as a [`KernelAccessSpec`]: per-workitem affine
//! index expressions (`Σ coef·id + offset` over the global/local/group
//! ids), with execution guards, segmented into barrier phases — a lift of
//! the single-induction affine machinery in `cl_vec::ir` to the NDRange
//! domain (see [`from_ir`]). Four lints run over a spec:
//!
//! 1. [`lints::analyze`] proves **disjoint writes** with mixed-radix
//!    injectivity, interval separation, and GCD residue reasoning;
//! 2. detects **local-memory races** within barrier intervals;
//! 3. flags **barrier divergence** under non-uniform guards;
//! 4. proves **in-bounds** access via guard-aware interval arithmetic.
//!
//! Verdicts are three-valued ([`Verdict`]): `Proven` lets the runtime skip
//! the dynamic validator, `Violation` rejects the launch outright, and
//! `Unknown` falls back to the dynamic check.
//!
//! Beyond single launches, [`footprint`] compresses a spec into per-buffer
//! read/write interval sets over its concrete NDRange, and [`flow`] lifts
//! those footprints to whole *command streams*: a dependence DAG
//! (RAW/WAR/WAW/independent, three-valued) plus five inter-command lints
//! (flag-contract, use-while-mapped, read-before-write, redundant
//! transfer, unsynchronized host access) — the static core of `cl-flow`.
//!
//! [`hb`] grows the flow layer from one stream to many: a happens-before
//! graph over every queue of a context (program order + sync edges from
//! finish/blocking transfers/markers), cross-queue race classification,
//! an over-synchronization certifier (the reorder-opportunity set with
//! critical-path parallelism bounds), and a dynamic vector-clock layer
//! that must agree with the static verdicts — the static core of
//! `cl-race`.

pub mod coarsen;
pub mod features;
pub mod flow;
pub mod footprint;
pub mod from_ir;
pub mod hb;
pub mod ir;
pub mod lints;
pub mod prove;

pub use coarsen::{
    analyze_coarsen, analyze_coarsen_loop, choose_factor, CoarsenAnalysis, CoarsenPlan,
    CoarsenVerdict, GuardClass,
};
pub use features::{features, ArgLane, KernelFeatures, LaneClass};
pub use flow::{
    analyze_flow, classify_pair, BufUse, DepEdge, FlagClass, FlowAnalysis, FlowCommand,
    FlowFinding, FlowLintKind, FlowOp, HazardKind, PairHazard,
};
pub use footprint::{launch_footprint, BufferFootprint, IntervalSet, LaunchFootprint};
pub use from_ir::lift_loop;
pub use hb::{
    analyze_hb, incremental_race_check, vector_clock_check, HbAnalysis, HbCmd, HbFinding,
    HbLintKind, HbOp, HbPair, HbRecord, OrderVerdict, QueueSummary, SyncPoint, VcReport,
};
pub use ir::{
    Access, AccessKind, Affine, BufferSpec, Guard, Index, KernelAccessSpec, LintGeometry, Phase,
    SpecBuilder, Target, Var,
};
pub use lints::{analyze, Analysis, Finding, LintKind, Severity, Verdict};
