//! Per-launch footprint summaries: per-buffer read/write interval sets.
//!
//! A [`LaunchFootprint`] compresses a [`KernelAccessSpec`] at its concrete
//! NDRange into, per global buffer, four element interval sets:
//!
//! * **may_read / may_write** — over-approximations: every element the
//!   kernel could possibly touch (from [`crate::prove::index_interval`],
//!   guard-aware). Sound for proving two commands *independent*.
//! * **must_read / must_write** — under-approximations: elements *every*
//!   execution of the launch definitely touches. Sound for proving a
//!   dependence (RAW/WAW) or a redundant transfer *certain*.
//!
//! The must sets require the access's value set to be *provably the whole
//! integer interval* between its min and max — certified with the same
//! mixed-radix reasoning the injectivity prover uses, inverted: instead of
//! demanding each stride exceed the span of smaller terms (no collisions),
//! contiguity demands each stride be *bridgeable* by that span (no holes).

use crate::ir::{AccessKind, Guard, Index, KernelAccessSpec, LintGeometry, Target, Var};
use crate::prove::{canonicalize, index_interval, Canon};

/// A set of disjoint, sorted, half-open `[lo, end)` intervals over `i128`.
///
/// The flow analyzer uses these for byte ranges within a buffer region; the
/// footprint summary uses them for element ranges. All operations keep the
/// canonical form (sorted, disjoint, non-adjacent, non-empty runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    runs: Vec<(i128, i128)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// The single interval `[lo, end)` (empty if `lo >= end`).
    pub fn of(lo: i128, end: i128) -> Self {
        let mut s = IntervalSet::new();
        s.insert(lo, end);
        s
    }

    /// Add `[lo, end)`, merging overlapping and adjacent runs.
    pub fn insert(&mut self, lo: i128, end: i128) {
        if lo >= end {
            return;
        }
        self.runs.push((lo, end));
        self.normalize();
    }

    fn normalize(&mut self) {
        self.runs.sort_unstable();
        let mut merged: Vec<(i128, i128)> = Vec::with_capacity(self.runs.len());
        for &(lo, end) in &self.runs {
            match merged.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((lo, end)),
            }
        }
        self.runs = merged;
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        out.runs.extend_from_slice(&other.runs);
        out.normalize();
        out
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = IntervalSet::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (alo, aend) = self.runs[i];
            let (blo, bend) = other.runs[j];
            let lo = alo.max(blo);
            let end = aend.min(bend);
            if lo < end {
                out.runs.push((lo, end));
            }
            if aend <= bend {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = IntervalSet::new();
        for &(run_lo, end) in &self.runs {
            let mut lo = run_lo;
            for &(blo, bend) in &other.runs {
                if bend <= lo || blo >= end {
                    continue;
                }
                if blo > lo {
                    out.runs.push((lo, blo));
                }
                lo = lo.max(bend);
                if lo >= end {
                    break;
                }
            }
            if lo < end {
                out.runs.push((lo, end));
            }
        }
        out
    }

    /// Whether the two sets share any point.
    pub fn overlaps(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (alo, aend) = self.runs[i];
            let (blo, bend) = other.runs[j];
            if alo.max(blo) < aend.min(bend) {
                return true;
            }
            if aend <= bend {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Whether every point of `other` is in `self`.
    pub fn covers(&self, other: &IntervalSet) -> bool {
        other.subtract(self).is_empty()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of points covered.
    pub fn covered(&self) -> u128 {
        self.runs.iter().map(|&(lo, end)| (end - lo) as u128).sum()
    }

    /// `(min, one-past-max)` over all runs, or `None` if empty.
    pub fn bounds(&self) -> Option<(i128, i128)> {
        match (self.runs.first(), self.runs.last()) {
            (Some(&(lo, _)), Some(&(_, end))) => Some((lo, end)),
            _ => None,
        }
    }

    /// The canonical runs, sorted and disjoint.
    pub fn runs(&self) -> &[(i128, i128)] {
        &self.runs
    }

    /// Affinely map every run: `[lo, end)` → `[lo·scale + offset,
    /// end·scale + offset)` — e.g. element intervals to byte intervals.
    /// `scale` must be positive (order-preserving).
    pub fn scaled(&self, scale: i128, offset: i128) -> IntervalSet {
        assert!(scale > 0, "scale must be positive");
        IntervalSet {
            runs: self
                .runs
                .iter()
                .map(|&(lo, end)| (lo * scale + offset, end * scale + offset))
                .collect(),
        }
    }
}

impl std::fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "∅");
        }
        for (i, (lo, end)) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "[{lo}, {end})")?;
        }
        Ok(())
    }
}

/// Element-granular footprint of one global buffer under one launch.
#[derive(Debug, Clone)]
pub struct BufferFootprint {
    /// Index into the spec's `global_buffers`.
    pub buffer: usize,
    /// The spec's buffer name (matched against arg bindings by recorders).
    pub name: String,
    /// Declared element length.
    pub len: usize,
    /// Elements the launch may read (over-approximation).
    pub may_read: IntervalSet,
    /// Elements the launch may write (over-approximation).
    pub may_write: IntervalSet,
    /// Elements every run of the launch definitely reads.
    pub must_read: IntervalSet,
    /// Elements every run of the launch definitely writes.
    pub must_write: IntervalSet,
    /// Whether any access is an atomic read-modify-write (atomics
    /// contribute to both may sets and never to the must sets).
    pub atomic: bool,
}

/// The per-buffer footprints of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchFootprint {
    pub kernel: String,
    pub buffers: Vec<BufferFootprint>,
}

impl LaunchFootprint {
    /// The footprint of the buffer the spec names `name`, if declared.
    pub fn buffer(&self, name: &str) -> Option<&BufferFootprint> {
        self.buffers.iter().find(|b| b.name == name)
    }
}

/// Summarize a spec's global-memory behaviour into per-buffer interval
/// sets over its concrete geometry.
pub fn launch_footprint(spec: &KernelAccessSpec) -> LaunchFootprint {
    let mut buffers: Vec<BufferFootprint> = spec
        .global_buffers
        .iter()
        .enumerate()
        .map(|(i, b)| BufferFootprint {
            buffer: i,
            name: b.name.clone(),
            len: b.len,
            may_read: IntervalSet::new(),
            may_write: IntervalSet::new(),
            must_read: IntervalSet::new(),
            must_write: IntervalSet::new(),
            atomic: false,
        })
        .collect();
    for phase in &spec.phases {
        for acc in &phase.accesses {
            let Target::Global(b) = acc.target else {
                continue;
            };
            // An empty guard means the access never executes: both sets stay
            // empty.
            let may = index_interval(&acc.index, acc.guard, &spec.geometry)
                .map(|(lo, hi)| IntervalSet::of(lo, hi + 1))
                .unwrap_or_default();
            let must = must_interval(&acc.index, acc.guard, &spec.geometry)
                .map(|(lo, hi)| IntervalSet::of(lo, hi + 1))
                .unwrap_or_default();
            let fp = &mut buffers[b];
            match acc.kind {
                AccessKind::Read => {
                    fp.may_read = fp.may_read.union(&may);
                    fp.must_read = fp.must_read.union(&must);
                }
                AccessKind::Write => {
                    fp.may_write = fp.may_write.union(&may);
                    fp.must_write = fp.must_write.union(&must);
                }
                AccessKind::AtomicUpdate => {
                    fp.atomic = true;
                    fp.may_read = fp.may_read.union(&may);
                    fp.may_write = fp.may_write.union(&may);
                }
            }
        }
    }
    LaunchFootprint {
        kernel: spec.name.clone(),
        buffers,
    }
}

/// `(min, max)` of an access's value set when that set is provably the
/// *full* integer interval and the access *definitely executes*, so every
/// element in the interval is touched on every run. `None` whenever either
/// half cannot be certified (opaque indices, guards we cannot tighten,
/// strides that leave holes).
fn must_interval(index: &Index, guard: Guard, g: &LintGeometry) -> Option<(i128, i128)> {
    let Index::Affine(a) = index else {
        return None;
    };
    match guard {
        // Always: every workitem executes. LocalLeader: exactly one item
        // per group executes, unconditionally — canonicalize pins the local
        // ids to a single value, so contiguity over the group part decides.
        Guard::Always | Guard::LocalLeader => {
            let c = canonicalize(a, guard, g)?;
            contiguous(&c).then(|| c.interval())
        }
        Guard::GlobalLt(n) => {
            let (coef, off) = a.as_single(Var::GlobalLinear)?;
            single_var_must(coef, off, (g.items() as i128).min(n as i128))
        }
        Guard::LocalLt(n) => {
            // Same index range in every group: LocalLt admits the first
            // `min(wg, n)` lanes of each group, all of which execute.
            let (coef, off) = a.as_single(Var::LocalLinear)?;
            single_var_must(coef, off, (g.wg_size() as i128).min(n as i128))
        }
    }
}

/// Single-variable case under a tightened guard: `±1·v + off` over
/// `v ∈ [0, m)` covers its interval exactly; constants cover their point.
fn single_var_must(coef: i64, off: i64, m: i128) -> Option<(i128, i128)> {
    if m <= 0 {
        return None;
    }
    let off = off as i128;
    if coef == 0 {
        return Some((off, off));
    }
    if coef.abs() != 1 {
        return None; // stride > 1 leaves holes
    }
    let end = coef as i128 * (m - 1) + off;
    Some((off.min(end), off.max(end)))
}

/// Mixed-radix contiguity test: over the sorted absolute coefficients of
/// the non-degenerate variables, each stride must be bridgeable by the
/// value span of the smaller terms (`|c| ≤ 1 + Σ |c_j|·(b_j−1)`). Then the
/// value set is exactly the integer interval between min and max — the
/// inverse of the superincreasing injectivity condition. A data-dependent
/// term can leave holes anywhere, so it forfeits the certificate.
///
/// Also the unit-stride certificate of the lane classifier
/// ([`crate::features`]), hence `pub(crate)`.
pub(crate) fn contiguous(c: &Canon) -> bool {
    if c.has_opaque() {
        return false;
    }
    let mut pairs: Vec<(i128, u64)> = (0..6)
        .filter(|&i| c.bounds[i] > 1 && c.coefs[i] != 0)
        .map(|i| (c.coefs[i].abs(), c.bounds[i]))
        .collect();
    pairs.sort_unstable();
    let mut span = 0i128;
    for (coef, b) in pairs {
        if coef > span + 1 {
            return false;
        }
        span += coef * (b as i128 - 1);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Affine, SpecBuilder};

    #[test]
    fn interval_set_ops_keep_canonical_form() {
        let mut a = IntervalSet::new();
        a.insert(10, 20);
        a.insert(0, 5);
        a.insert(5, 10); // adjacent: merges with both neighbours
        assert_eq!(a.runs(), &[(0, 20)]);
        assert_eq!(a.covered(), 20);

        let b = IntervalSet::of(15, 30).union(&IntervalSet::of(40, 50));
        assert_eq!(a.intersect(&b).runs(), &[(15, 20)]);
        assert!(a.overlaps(&b));
        assert_eq!(a.subtract(&b).runs(), &[(0, 15)]);
        assert_eq!(b.subtract(&a).runs(), &[(20, 30), (40, 50)]);
        assert!(IntervalSet::of(0, 100).covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(b.bounds(), Some((15, 50)));
        assert!(IntervalSet::of(5, 5).is_empty());
    }

    #[test]
    fn scaling_maps_elements_to_bytes() {
        let elems = IntervalSet::of(0, 10).union(&IntervalSet::of(20, 30));
        let bytes = elems.scaled(4, 64);
        assert_eq!(bytes.runs(), &[(64, 104), (144, 184)]);
    }

    #[test]
    fn unit_stride_guarded_kernel_has_exact_must_sets() {
        // square at n = 1000, padded geometry: in/out touched exactly [0, n).
        let geom = LintGeometry::d1(1024, 256);
        let mut b = SpecBuilder::new("square", geom);
        let inp = b.buffer("in", 1000);
        let out = b.buffer("out", 1000);
        b.read(inp, Affine::of(Var::GlobalLinear), Guard::GlobalLt(1000));
        b.write(out, Affine::of(Var::GlobalLinear), Guard::GlobalLt(1000));
        let fp = launch_footprint(&b.finish());
        let input = fp.buffer("in").unwrap();
        let out = fp.buffer("out").unwrap();
        assert_eq!(input.may_read.runs(), &[(0, 1000)]);
        assert_eq!(input.must_read.runs(), &[(0, 1000)]);
        assert!(input.may_write.is_empty());
        assert_eq!(out.must_write.runs(), &[(0, 1000)]);
        assert_eq!(out.may_write, out.must_write);
    }

    #[test]
    fn strided_writes_have_no_must_set() {
        let geom = LintGeometry::d1(8, 4);
        let mut b = SpecBuilder::new("strided", geom);
        let out = b.buffer("out", 16);
        b.write(out, Affine::var(Var::GlobalLinear, 2), Guard::Always);
        let fp = launch_footprint(&b.finish());
        let o = fp.buffer("out").unwrap();
        assert_eq!(o.may_write.runs(), &[(0, 15)]); // hull [0, 14] inclusive
        assert!(o.must_write.is_empty(), "stride 2 leaves holes");
    }

    #[test]
    fn leader_guarded_group_writes_are_contiguous_musts() {
        // reduce's partial store: partials[group] under LocalLeader.
        let geom = LintGeometry::d1(1024, 64);
        let mut b = SpecBuilder::new("partials", geom);
        let p = b.buffer("partials", 16);
        b.write(p, Affine::of(Var::GroupLinear), Guard::LocalLeader);
        let fp = launch_footprint(&b.finish());
        let p = fp.buffer("partials").unwrap();
        assert_eq!(p.must_write.runs(), &[(0, 16)]);
        assert_eq!(p.may_write, p.must_write);
    }

    #[test]
    fn opaque_and_atomic_accesses_stay_may_only() {
        let geom = LintGeometry::d1(128, 64);
        let mut b = SpecBuilder::new("hist", geom);
        let bins = b.buffer("bins", 256);
        b.atomic(bins, Index::Opaque { min: 0, max: 255 }, Guard::Always);
        let fp = launch_footprint(&b.finish());
        let bins = fp.buffer("bins").unwrap();
        assert!(bins.atomic);
        assert_eq!(bins.may_read.runs(), &[(0, 256)]);
        assert_eq!(bins.may_write.runs(), &[(0, 256)]);
        assert!(bins.must_write.is_empty());
        assert!(bins.must_read.is_empty());
    }

    #[test]
    fn indirect_affine_index_gets_a_conservative_may_footprint() {
        // out[base + perm[i]] with perm values in [0, 99]: the may set is
        // the whole reachable window, the must set empty (no exempt()
        // needed for indirect kernels any more).
        let geom = LintGeometry::d1(128, 64);
        let mut b = SpecBuilder::new("indirect", geom);
        let out = b.buffer("out", 200);
        b.write(
            out,
            Affine::constant(100).plus_opaque(0, 99, 1),
            Guard::Always,
        );
        let fp = launch_footprint(&b.finish());
        let o = fp.buffer("out").unwrap();
        assert_eq!(o.may_write.runs(), &[(100, 200)]);
        assert!(o.must_write.is_empty(), "opaque writes are may-only");
    }

    #[test]
    fn empty_guard_contributes_nothing() {
        let geom = LintGeometry::d1(64, 64);
        let mut b = SpecBuilder::new("dead", geom);
        let out = b.buffer("out", 64);
        b.write(out, Affine::of(Var::GlobalLinear), Guard::GlobalLt(0));
        let fp = launch_footprint(&b.finish());
        let o = fp.buffer("out").unwrap();
        assert!(o.may_write.is_empty());
        assert!(o.must_write.is_empty());
    }

    #[test]
    fn row_major_2d_store_is_a_full_must_cover() {
        // C[gy·W + gx] over the whole grid: coefficients (1, W) with bounds
        // (W, H) are contiguous, so the must set is the whole matrix.
        let geom = LintGeometry::d2(32, 16, 8, 8);
        let mut b = SpecBuilder::new("mm", geom);
        let c = b.buffer("C", 32 * 16);
        b.write(
            c,
            Affine::var(Var::Global(1), 32).plus_var(Var::Global(0), 1),
            Guard::Always,
        );
        let fp = launch_footprint(&b.finish());
        assert_eq!(fp.buffer("C").unwrap().must_write.runs(), &[(0, 512)]);
    }
}
