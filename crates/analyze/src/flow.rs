//! Command-stream dataflow analysis — the static core of `cl-flow`.
//!
//! Consumes a recorded sequence of queue commands (kernel launches with
//! arg→buffer bindings, read/write/copy/fill transfers, map/unmap pairs,
//! raw host accesses) and:
//!
//! 1. builds a **command DAG**: every ordered pair of commands touching the
//!    same buffer is classified as RAW / WAR / WAW / independent, with the
//!    same three-valued verdicts as the per-launch lints — `Proven` when
//!    the must sets overlap (the dependence certainly exists), `Unknown`
//!    when only the may sets do, independent when not even those touch;
//! 2. runs five **inter-command lints** over the stream: flag-contract
//!    violations, use-while-mapped, read-before-write, redundant transfer
//!    (the "paying Figure 7/8 cost for nothing" hint), and unsynchronized
//!    host access.
//!
//! All ranges are **byte** intervals within a buffer's backing region, so
//! sub-buffer windows of one allocation interact correctly. The model is
//! runtime-independent: `ocl_rt`'s recording shim lowers its live command
//! stream into [`FlowCommand`]s, and tests can construct streams directly.

use std::collections::HashMap;

use crate::footprint::IntervalSet;
use crate::lints::{Severity, Verdict};

/// How a buffer was allocated, as far as kernels are concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagClass {
    /// Kernels may read, never write (`CL_MEM_READ_ONLY`).
    ReadOnly,
    /// Kernels may write, never read (`CL_MEM_WRITE_ONLY`).
    WriteOnly,
    /// No kernel-side restriction.
    ReadWrite,
}

impl FlagClass {
    pub fn as_str(self) -> &'static str {
        match self {
            FlagClass::ReadOnly => "READ_ONLY",
            FlagClass::WriteOnly => "WRITE_ONLY",
            FlagClass::ReadWrite => "READ_WRITE",
        }
    }
}

/// One command's use of one buffer: byte interval sets within the buffer's
/// backing region, plus the allocation facts the lints need.
#[derive(Debug, Clone)]
pub struct BufUse {
    /// Stable buffer identity (allocation id, not address — addresses can
    /// be reused after free).
    pub buffer: u64,
    /// Human-readable name for findings (spec buffer name or `mem#id`).
    pub name: String,
    /// Kernel-side access contract of the allocation.
    pub flags: FlagClass,
    /// Whether the allocation was initialized at creation
    /// (`COPY_HOST_PTR`) — seeds the read-before-write defined set.
    pub preinit: bool,
    /// This use's visible window within the region: `[lo, end)` bytes.
    pub span: (usize, usize),
    /// Bytes the command may read (over-approximation).
    pub may_read: IntervalSet,
    /// Bytes the command definitely reads on every execution.
    pub must_read: IntervalSet,
    /// Bytes the command may write (over-approximation).
    pub may_write: IntervalSet,
    /// Bytes the command definitely writes on every execution.
    pub must_write: IntervalSet,
    /// Whether any access is an atomic read-modify-write.
    pub atomic: bool,
}

impl BufUse {
    pub fn new(
        buffer: u64,
        name: impl Into<String>,
        flags: FlagClass,
        span: (usize, usize),
    ) -> Self {
        BufUse {
            buffer,
            name: name.into(),
            flags,
            preinit: false,
            span,
            may_read: IntervalSet::new(),
            must_read: IntervalSet::new(),
            may_write: IntervalSet::new(),
            must_write: IntervalSet::new(),
            atomic: false,
        }
    }

    /// Mark the allocation host-initialized.
    pub fn preinit(mut self, yes: bool) -> Self {
        self.preinit = yes;
        self
    }

    /// Record a definite read of `[lo, end)` (contributes to both may and
    /// must sets).
    pub fn reads(mut self, lo: i128, end: i128) -> Self {
        self.may_read.insert(lo, end);
        self.must_read.insert(lo, end);
        self
    }

    /// Record a possible read of `[lo, end)` (may set only).
    pub fn may_reads(mut self, lo: i128, end: i128) -> Self {
        self.may_read.insert(lo, end);
        self
    }

    /// Record a definite write of `[lo, end)`.
    pub fn writes(mut self, lo: i128, end: i128) -> Self {
        self.may_write.insert(lo, end);
        self.must_write.insert(lo, end);
        self
    }

    /// Record a possible write of `[lo, end)` (may set only).
    pub fn may_writes(mut self, lo: i128, end: i128) -> Self {
        self.may_write.insert(lo, end);
        self
    }

    /// All bytes this use touches in any way.
    pub fn touched(&self) -> IntervalSet {
        self.may_read.union(&self.may_write)
    }
}

/// The kind of a recorded command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowOp {
    /// Kernel enqueue. `has_spec` records whether the footprint came from a
    /// `KernelAccessSpec` (exact intervals) or falls back to the binding's
    /// whole window (conservative).
    Launch { kernel: String, has_spec: bool },
    /// Host→device write.
    WriteBuffer,
    /// Device→host read.
    ReadBuffer,
    /// Device→device copy (first use is the source, second the target).
    CopyBuffer,
    /// Pattern fill.
    FillBuffer,
    /// Map: the host gains a view of the range. The command's use carries
    /// `may_read` over the mapped range (mapping exposes current bytes);
    /// for read-intent maps that read is a `must`.
    Map { id: u64, writable: bool },
    /// Unmap: host writes through a writable mapping become visible here,
    /// so the command's use carries the write sets for writable maps.
    Unmap { id: u64 },
    /// A raw host access. `via_map: None` means the host touched device
    /// memory outside any mapping — always a synchronization violation.
    HostAccess { write: bool, via_map: Option<u64> },
}

impl FlowOp {
    pub fn describe(&self) -> String {
        match self {
            FlowOp::Launch { kernel, .. } => format!("launch {kernel}"),
            FlowOp::WriteBuffer => "write-buffer".into(),
            FlowOp::ReadBuffer => "read-buffer".into(),
            FlowOp::CopyBuffer => "copy-buffer".into(),
            FlowOp::FillBuffer => "fill-buffer".into(),
            FlowOp::Map { id, writable } => {
                format!("map#{id} ({})", if *writable { "rw" } else { "ro" })
            }
            FlowOp::Unmap { id } => format!("unmap#{id}"),
            FlowOp::HostAccess { write, via_map } => format!(
                "host-{}{}",
                if *write { "write" } else { "read" },
                match via_map {
                    Some(id) => format!(" via map#{id}"),
                    None => " (unmapped)".into(),
                }
            ),
        }
    }
}

/// One recorded queue command.
#[derive(Debug, Clone)]
pub struct FlowCommand {
    pub op: FlowOp,
    /// Display label (kernel name, transfer description).
    pub label: String,
    pub uses: Vec<BufUse>,
}

impl FlowCommand {
    pub fn new(op: FlowOp, label: impl Into<String>, uses: Vec<BufUse>) -> Self {
        FlowCommand {
            op,
            label: label.into(),
            uses,
        }
    }
}

/// Hazard classification for an ordered command pair on one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Read-after-write: the later command consumes what the earlier wrote.
    Raw,
    /// Write-after-read: the later command overwrites what the earlier read.
    War,
    /// Write-after-write: both write overlapping bytes.
    Waw,
}

impl HazardKind {
    pub fn as_str(self) -> &'static str {
        match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        }
    }
}

/// A dependence edge in the command DAG.
#[derive(Debug, Clone)]
pub struct DepEdge {
    /// Index of the earlier command.
    pub from: usize,
    /// Index of the later command.
    pub to: usize,
    pub buffer: u64,
    pub buffer_name: String,
    pub kind: HazardKind,
    /// `Proven`: the must sets overlap — the dependence certainly exists.
    /// `Unknown`: only the may sets overlap. (`Violation` is unused here;
    /// an edge is a fact, not a defect.)
    pub verdict: Verdict,
    pub detail: String,
}

/// The five inter-command lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowLintKind {
    /// Kernel writes a READ_ONLY buffer or reads a WRITE_ONLY one.
    FlagContract,
    /// A launch or transfer overlaps a live map range.
    UseWhileMapped,
    /// A command consumes bytes no prior command defined.
    ReadBeforeWrite,
    /// A transfer fully overwritten before any read — pure Figure 7/8 cost.
    RedundantTransfer,
    /// Host touches device memory outside a valid live mapping.
    HostSync,
}

impl FlowLintKind {
    pub const ALL: [FlowLintKind; 5] = [
        FlowLintKind::FlagContract,
        FlowLintKind::UseWhileMapped,
        FlowLintKind::ReadBeforeWrite,
        FlowLintKind::RedundantTransfer,
        FlowLintKind::HostSync,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            FlowLintKind::FlagContract => "flag-contract",
            FlowLintKind::UseWhileMapped => "use-while-mapped",
            FlowLintKind::ReadBeforeWrite => "read-before-write",
            FlowLintKind::RedundantTransfer => "redundant-transfer",
            FlowLintKind::HostSync => "unsynchronized-host-access",
        }
    }
}

/// One lint finding, anchored to a command index in the stream.
#[derive(Debug, Clone)]
pub struct FlowFinding {
    pub kind: FlowLintKind,
    pub severity: Severity,
    /// Index of the offending command.
    pub command: usize,
    pub message: String,
}

/// The result of analyzing one command stream.
#[derive(Debug, Clone)]
pub struct FlowAnalysis {
    /// Number of commands analyzed.
    pub commands: usize,
    /// All dependence edges, ordered by `(to, from)` discovery order.
    pub edges: Vec<DepEdge>,
    /// Ordered pairs sharing a buffer with provably disjoint footprints.
    pub independent_pairs: usize,
    pub findings: Vec<FlowFinding>,
}

impl FlowAnalysis {
    /// Verdict for one lint: `Proven` (clean), `Unknown` (warnings only),
    /// or `Violation` (at least one error).
    pub fn verdict(&self, kind: FlowLintKind) -> Verdict {
        let mut v = Verdict::Proven;
        for f in self.findings.iter().filter(|f| f.kind == kind) {
            match f.severity {
                Severity::Error => return Verdict::Violation,
                Severity::Warning => v = Verdict::Unknown,
            }
        }
        v
    }

    /// No findings at all.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// At least one `Severity::Error` finding.
    pub fn has_violations(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Edges between two specific commands.
    pub fn edges_between(&self, from: usize, to: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges
            .iter()
            .filter(move |e| e.from == from && e.to == to)
    }
}

/// Analyze a recorded command stream: build the dependence DAG and run the
/// five inter-command lints.
pub fn analyze_flow(commands: &[FlowCommand]) -> FlowAnalysis {
    let (edges, independent_pairs) = build_edges(commands);
    let mut findings = Vec::new();
    lint_flag_contract(commands, &mut findings);
    lint_map_lifecycle(commands, &mut findings);
    lint_read_before_write(commands, &mut findings);
    lint_redundant_transfer(commands, &mut findings);
    findings.sort_by_key(|f| f.command);
    FlowAnalysis {
        commands: commands.len(),
        edges,
        independent_pairs,
        findings,
    }
}

fn range_str(s: &IntervalSet) -> String {
    format!("{s}")
}

/// One hazard between an ordered command pair on one shared buffer —
/// the pair-local core of [`DepEdge`], reused by the multi-queue
/// happens-before analysis ([`crate::hb`]).
#[derive(Debug, Clone)]
pub struct PairHazard {
    pub kind: HazardKind,
    pub buffer: u64,
    pub buffer_name: String,
    /// The must sets overlap: the hazard certainly exists on every
    /// execution (`false`: only the may sets overlap).
    pub must: bool,
    pub detail: String,
}

/// Classify every RAW/WAR/WAW hazard between an `earlier` and a `later`
/// command. Also returns whether the two commands touch any common buffer
/// at all (shared buffer but provably disjoint footprints ⇒ `(vec![],
/// true)` — the "independent pair" case).
pub fn classify_pair(earlier: &FlowCommand, later: &FlowCommand) -> (Vec<PairHazard>, bool) {
    let mut hazards = Vec::new();
    let mut touches = false;
    for ue in &earlier.uses {
        for ul in later.uses.iter().filter(|u| u.buffer == ue.buffer) {
            touches = true;
            for (kind, e_may, e_must, l_may, l_must) in [
                (
                    HazardKind::Raw,
                    &ue.may_write,
                    &ue.must_write,
                    &ul.may_read,
                    &ul.must_read,
                ),
                (
                    HazardKind::War,
                    &ue.may_read,
                    &ue.must_read,
                    &ul.may_write,
                    &ul.must_write,
                ),
                (
                    HazardKind::Waw,
                    &ue.may_write,
                    &ue.must_write,
                    &ul.may_write,
                    &ul.must_write,
                ),
            ] {
                let (must, detail) = if e_must.overlaps(l_must) {
                    (
                        true,
                        format!("must-overlap {}", range_str(&e_must.intersect(l_must))),
                    )
                } else if e_may.overlaps(l_may) {
                    (
                        false,
                        format!("may-overlap {}", range_str(&e_may.intersect(l_may))),
                    )
                } else {
                    continue;
                };
                hazards.push(PairHazard {
                    kind,
                    buffer: ue.buffer,
                    buffer_name: ue.name.clone(),
                    must,
                    detail,
                });
            }
        }
    }
    (hazards, touches)
}

fn build_edges(commands: &[FlowCommand]) -> (Vec<DepEdge>, usize) {
    let mut edges = Vec::new();
    let mut independent = 0usize;
    for (j, later) in commands.iter().enumerate() {
        for (i, earlier) in commands.iter().enumerate().take(j) {
            let (hazards, touches) = classify_pair(earlier, later);
            if touches && hazards.is_empty() {
                independent += 1;
            }
            edges.extend(hazards.into_iter().map(|h| DepEdge {
                from: i,
                to: j,
                buffer: h.buffer,
                buffer_name: h.buffer_name,
                kind: h.kind,
                verdict: if h.must {
                    Verdict::Proven
                } else {
                    Verdict::Unknown
                },
                detail: h.detail,
            }));
        }
    }
    (edges, independent)
}

fn lint_flag_contract(commands: &[FlowCommand], findings: &mut Vec<FlowFinding>) {
    for (i, c) in commands.iter().enumerate() {
        let FlowOp::Launch { kernel, .. } = &c.op else {
            continue;
        };
        for u in &c.uses {
            if u.flags == FlagClass::ReadOnly && !u.may_write.is_empty() {
                let definite = !u.must_write.is_empty();
                findings.push(FlowFinding {
                    kind: FlowLintKind::FlagContract,
                    severity: if definite {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                    command: i,
                    message: format!(
                        "kernel `{kernel}` {} READ_ONLY buffer `{}` (bytes {})",
                        if definite {
                            "definitely writes"
                        } else {
                            "may write"
                        },
                        u.name,
                        range_str(&u.may_write),
                    ),
                });
            }
            if u.flags == FlagClass::WriteOnly && !u.may_read.is_empty() {
                let definite = !u.must_read.is_empty();
                findings.push(FlowFinding {
                    kind: FlowLintKind::FlagContract,
                    severity: if definite {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                    command: i,
                    message: format!(
                        "kernel `{kernel}` {} WRITE_ONLY buffer `{}` (bytes {})",
                        if definite {
                            "definitely reads"
                        } else {
                            "may read"
                        },
                        u.name,
                        range_str(&u.may_read),
                    ),
                });
            }
        }
    }
}

struct LiveMap {
    buffer: u64,
    name: String,
    range: IntervalSet,
    writable: bool,
}

/// Combined walk for use-while-mapped and unsynchronized-host-access: both
/// need the live-map table.
fn lint_map_lifecycle(commands: &[FlowCommand], findings: &mut Vec<FlowFinding>) {
    let mut live: HashMap<u64, LiveMap> = HashMap::new();
    for (i, c) in commands.iter().enumerate() {
        match &c.op {
            FlowOp::Map { id, writable } => {
                if let Some(u) = c.uses.first() {
                    let mut range = u.touched();
                    if range.is_empty() {
                        range = IntervalSet::of(u.span.0 as i128, u.span.1 as i128);
                    }
                    live.insert(
                        *id,
                        LiveMap {
                            buffer: u.buffer,
                            name: u.name.clone(),
                            range,
                            writable: *writable,
                        },
                    );
                }
            }
            FlowOp::Unmap { id } => {
                if live.remove(id).is_none() {
                    findings.push(FlowFinding {
                        kind: FlowLintKind::UseWhileMapped,
                        severity: Severity::Error,
                        command: i,
                        message: format!("unmap of map#{id}, which is not live"),
                    });
                }
            }
            FlowOp::HostAccess { write, via_map } => {
                let Some(u) = c.uses.first() else { continue };
                let range = u.touched();
                let access = if *write { "host write" } else { "host read" };
                match via_map {
                    None => findings.push(FlowFinding {
                        kind: FlowLintKind::HostSync,
                        severity: Severity::Error,
                        command: i,
                        message: format!(
                            "{access} of buffer `{}` (bytes {}) outside any mapping",
                            u.name,
                            range_str(&range),
                        ),
                    }),
                    Some(id) => match live.get(id) {
                        None => findings.push(FlowFinding {
                            kind: FlowLintKind::HostSync,
                            severity: Severity::Error,
                            command: i,
                            message: format!("{access} through map#{id}, which is not live"),
                        }),
                        Some(m) if m.buffer != u.buffer => findings.push(FlowFinding {
                            kind: FlowLintKind::HostSync,
                            severity: Severity::Error,
                            command: i,
                            message: format!(
                                "{access} of buffer `{}` through map#{id} of a different buffer `{}`",
                                u.name, m.name,
                            ),
                        }),
                        Some(m) if !m.range.covers(&range) => findings.push(FlowFinding {
                            kind: FlowLintKind::HostSync,
                            severity: Severity::Error,
                            command: i,
                            message: format!(
                                "{access} of bytes {} outside map#{id}'s range {}",
                                range_str(&range),
                                range_str(&m.range),
                            ),
                        }),
                        Some(m) if *write && !m.writable => findings.push(FlowFinding {
                            kind: FlowLintKind::HostSync,
                            severity: Severity::Error,
                            command: i,
                            message: format!(
                                "host write through read-only map#{id} of `{}`",
                                m.name,
                            ),
                        }),
                        Some(_) => {}
                    },
                }
            }
            // Device-side command: check every use against live map ranges.
            _ => {
                for u in &c.uses {
                    for m in live.values().filter(|m| m.buffer == u.buffer) {
                        let w = u.may_write.intersect(&m.range);
                        if !w.is_empty() {
                            let definite = u.must_write.overlaps(&m.range);
                            findings.push(FlowFinding {
                                kind: FlowLintKind::UseWhileMapped,
                                severity: if definite {
                                    Severity::Error
                                } else {
                                    Severity::Warning
                                },
                                command: i,
                                message: format!(
                                    "{} {} bytes {} of `{}` while the range is mapped",
                                    c.op.describe(),
                                    if definite { "writes" } else { "may write" },
                                    range_str(&w),
                                    u.name,
                                ),
                            });
                            continue;
                        }
                        if m.writable {
                            let r = u.may_read.intersect(&m.range);
                            if !r.is_empty() {
                                let definite = u.must_read.overlaps(&m.range);
                                findings.push(FlowFinding {
                                    kind: FlowLintKind::UseWhileMapped,
                                    severity: if definite {
                                        Severity::Error
                                    } else {
                                        Severity::Warning
                                    },
                                    command: i,
                                    message: format!(
                                        "{} {} bytes {} of `{}` while the range is writably mapped",
                                        c.op.describe(),
                                        if definite { "reads" } else { "may read" },
                                        range_str(&r),
                                        u.name,
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

fn lint_read_before_write(commands: &[FlowCommand], findings: &mut Vec<FlowFinding>) {
    // Allocation-time initialization (COPY_HOST_PTR) happened before any
    // recorded command: seed the defined sets with every preinit window.
    let mut defined: HashMap<u64, IntervalSet> = HashMap::new();
    for c in commands {
        for u in c.uses.iter().filter(|u| u.preinit) {
            let d = defined.entry(u.buffer).or_default();
            *d = d.union(&IntervalSet::of(u.span.0 as i128, u.span.1 as i128));
        }
    }
    for (i, c) in commands.iter().enumerate() {
        // Check reads first: a command's own writes cannot feed its reads
        // (intra-command ordering is unknown).
        for u in &c.uses {
            let d = defined.entry(u.buffer).or_default();
            let undef_must = u.must_read.subtract(d);
            if !undef_must.is_empty() {
                findings.push(FlowFinding {
                    kind: FlowLintKind::ReadBeforeWrite,
                    severity: Severity::Error,
                    command: i,
                    message: format!(
                        "{} consumes {} bytes of `{}` ({}) no prior command defined",
                        c.op.describe(),
                        undef_must.covered(),
                        u.name,
                        range_str(&undef_must),
                    ),
                });
            } else {
                let undef_may = u.may_read.subtract(d);
                if !undef_may.is_empty() {
                    findings.push(FlowFinding {
                        kind: FlowLintKind::ReadBeforeWrite,
                        severity: Severity::Warning,
                        command: i,
                        message: format!(
                            "{} may read bytes {} of `{}` no prior command defined",
                            c.op.describe(),
                            range_str(&undef_may),
                            u.name,
                        ),
                    });
                }
            }
        }
        for u in &c.uses {
            if !u.must_write.is_empty() {
                let d = defined.entry(u.buffer).or_default();
                *d = d.union(&u.must_write);
            }
        }
    }
}

fn lint_redundant_transfer(commands: &[FlowCommand], findings: &mut Vec<FlowFinding>) {
    for (i, c) in commands.iter().enumerate() {
        if !matches!(
            c.op,
            FlowOp::WriteBuffer | FlowOp::FillBuffer | FlowOp::CopyBuffer
        ) {
            continue;
        }
        for u in &c.uses {
            // Skips the source use of a copy (no writes).
            if u.must_write.is_empty() {
                continue;
            }
            let mut remaining = u.must_write.clone();
            let mut consumed = false;
            let mut overwritten_at = None;
            for (j, d) in commands.iter().enumerate().skip(i + 1) {
                for du in d.uses.iter().filter(|du| du.buffer == u.buffer) {
                    if du.may_read.overlaps(&remaining) {
                        consumed = true;
                        break;
                    }
                    remaining = remaining.subtract(&du.must_write);
                }
                if consumed {
                    break;
                }
                if remaining.is_empty() {
                    overwritten_at = Some(j);
                    break;
                }
            }
            if consumed {
                continue;
            }
            if let Some(j) = overwritten_at {
                findings.push(FlowFinding {
                    kind: FlowLintKind::RedundantTransfer,
                    severity: Severity::Error,
                    command: i,
                    message: format!(
                        "redundant transfer: all {} bytes {} moves into `{}` are \
                         overwritten by command #{j} ({}) before any read — \
                         the transfer cost buys nothing",
                        u.must_write.covered(),
                        c.op.describe(),
                        u.name,
                        commands[j].op.describe(),
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(kernel: &str, uses: Vec<BufUse>) -> FlowCommand {
        FlowCommand::new(
            FlowOp::Launch {
                kernel: kernel.into(),
                has_spec: true,
            },
            kernel,
            uses,
        )
    }

    #[test]
    fn producer_consumer_chain_is_a_proven_raw_edge() {
        let mid = BufUse::new(3, "c", FlagClass::ReadWrite, (0, 4096));
        let cmds = vec![
            launch("producer", vec![mid.clone().writes(0, 4096)]),
            launch("consumer", vec![mid.reads(0, 4096)]),
        ];
        let a = analyze_flow(&cmds);
        assert!(a.clean(), "clean chain: {:?}", a.findings);
        let raw: Vec<_> = a
            .edges_between(0, 1)
            .filter(|e| e.kind == HazardKind::Raw)
            .collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].verdict, Verdict::Proven);
        // The same pair is also a proven WAW? No: consumer never writes.
        assert_eq!(a.edges.len(), 1);
    }

    #[test]
    fn disjoint_windows_are_independent() {
        let base = BufUse::new(7, "halves", FlagClass::ReadWrite, (0, 8192));
        let cmds = vec![
            launch("lo", vec![base.clone().writes(0, 4096)]),
            launch("hi", vec![base.writes(4096, 8192)]),
        ];
        let a = analyze_flow(&cmds);
        assert!(a.edges.is_empty());
        assert_eq!(a.independent_pairs, 1);
    }

    #[test]
    fn may_only_overlap_gives_unknown_edges() {
        let b = BufUse::new(1, "bins", FlagClass::ReadWrite, (0, 1024));
        let mut atomic_use = b.clone().may_reads(0, 1024).may_writes(0, 1024);
        atomic_use.atomic = true;
        let cmds = vec![
            launch("hist", vec![atomic_use]),
            FlowCommand::new(
                FlowOp::ReadBuffer,
                "readback",
                vec![b.reads(0, 1024).preinit(true)],
            ),
        ];
        let a = analyze_flow(&cmds);
        let raw = a
            .edges_between(0, 1)
            .find(|e| e.kind == HazardKind::Raw)
            .expect("RAW edge");
        assert_eq!(raw.verdict, Verdict::Unknown);
    }

    #[test]
    fn kernel_writing_read_only_buffer_is_a_violation() {
        let u = BufUse::new(2, "in", FlagClass::ReadOnly, (0, 256)).writes(0, 256);
        let a = analyze_flow(&[launch("bad", vec![u])]);
        assert_eq!(a.verdict(FlowLintKind::FlagContract), Verdict::Violation);
        // may-only write on READ_ONLY is a warning, not an error.
        let u = BufUse::new(2, "in", FlagClass::ReadOnly, (0, 256)).may_writes(0, 256);
        let a = analyze_flow(&[launch("sus", vec![u])]);
        assert_eq!(a.verdict(FlowLintKind::FlagContract), Verdict::Unknown);
    }

    #[test]
    fn kernel_reading_write_only_buffer_is_a_violation() {
        let u = BufUse::new(4, "out", FlagClass::WriteOnly, (0, 64)).reads(0, 64);
        let a = analyze_flow(&[launch("bad", vec![u])]);
        assert_eq!(a.verdict(FlowLintKind::FlagContract), Verdict::Violation);
    }

    #[test]
    fn launch_overlapping_live_map_is_flagged_and_unmap_clears_it() {
        let b = BufUse::new(5, "out", FlagClass::ReadWrite, (0, 512));
        let map_use = b.clone().reads(0, 512);
        let cmds = vec![
            FlowCommand::new(
                FlowOp::Map {
                    id: 1,
                    writable: false,
                },
                "map",
                vec![map_use.clone()],
            ),
            launch("writer", vec![b.clone().writes(0, 512).preinit(true)]),
            FlowCommand::new(FlowOp::Unmap { id: 1 }, "unmap", vec![b.clone()]),
            launch("writer2", vec![b.writes(0, 512).preinit(true)]),
        ];
        let a = analyze_flow(&cmds);
        assert_eq!(a.verdict(FlowLintKind::UseWhileMapped), Verdict::Violation);
        let offenders: Vec<usize> = a
            .findings
            .iter()
            .filter(|f| f.kind == FlowLintKind::UseWhileMapped)
            .map(|f| f.command)
            .collect();
        assert_eq!(offenders, vec![1], "only the launch inside the map window");
    }

    #[test]
    fn unmap_of_dead_map_is_flagged() {
        let b = BufUse::new(6, "buf", FlagClass::ReadWrite, (0, 64));
        let a = analyze_flow(&[FlowCommand::new(FlowOp::Unmap { id: 9 }, "unmap", vec![b])]);
        assert_eq!(a.verdict(FlowLintKind::UseWhileMapped), Verdict::Violation);
    }

    #[test]
    fn read_before_write_fires_unless_preinit_or_defined() {
        let raw = BufUse::new(8, "in", FlagClass::ReadOnly, (0, 128));
        // Undefined read: violation.
        let a = analyze_flow(&[launch("r", vec![raw.clone().reads(0, 128)])]);
        assert_eq!(a.verdict(FlowLintKind::ReadBeforeWrite), Verdict::Violation);
        // Host-initialized allocation: clean.
        let a = analyze_flow(&[launch("r", vec![raw.clone().reads(0, 128).preinit(true)])]);
        assert_eq!(a.verdict(FlowLintKind::ReadBeforeWrite), Verdict::Proven);
        // Defined by a prior transfer: clean.
        let a = analyze_flow(&[
            FlowCommand::new(FlowOp::WriteBuffer, "w", vec![raw.clone().writes(0, 128)]),
            launch("r", vec![raw.reads(0, 128)]),
        ]);
        assert_eq!(a.verdict(FlowLintKind::ReadBeforeWrite), Verdict::Proven);
    }

    #[test]
    fn fully_overwritten_transfer_is_redundant_partial_is_not() {
        let b = BufUse::new(9, "out", FlagClass::ReadWrite, (0, 1024));
        let cmds = vec![
            FlowCommand::new(FlowOp::WriteBuffer, "w", vec![b.clone().writes(0, 1024)]),
            launch("overwriter", vec![b.clone().writes(0, 1024)]),
            FlowCommand::new(FlowOp::ReadBuffer, "r", vec![b.clone().reads(0, 1024)]),
        ];
        let a = analyze_flow(&cmds);
        assert_eq!(
            a.verdict(FlowLintKind::RedundantTransfer),
            Verdict::Violation
        );
        assert_eq!(
            a.findings
                .iter()
                .filter(|f| f.kind == FlowLintKind::RedundantTransfer)
                .count(),
            1,
            "only the dead host write, not the kernel write"
        );

        // Partial overwrite keeps live bytes: not redundant.
        let cmds = vec![
            FlowCommand::new(FlowOp::WriteBuffer, "w", vec![b.clone().writes(0, 1024)]),
            launch("half", vec![b.clone().writes(0, 512)]),
            FlowCommand::new(FlowOp::ReadBuffer, "r", vec![b.clone().reads(0, 1024)]),
        ];
        assert_eq!(
            analyze_flow(&cmds).verdict(FlowLintKind::RedundantTransfer),
            Verdict::Proven
        );

        // Read between write and overwrite consumes it: not redundant.
        let cmds = vec![
            FlowCommand::new(FlowOp::WriteBuffer, "w", vec![b.clone().writes(0, 1024)]),
            launch("reader", vec![b.clone().reads(0, 1024)]),
            launch("overwriter", vec![b.writes(0, 1024)]),
        ];
        assert_eq!(
            analyze_flow(&cmds).verdict(FlowLintKind::RedundantTransfer),
            Verdict::Proven
        );
    }

    #[test]
    fn host_access_outside_mapping_is_a_violation() {
        let b = BufUse::new(10, "buf", FlagClass::ReadWrite, (0, 256));
        let a = analyze_flow(&[FlowCommand::new(
            FlowOp::HostAccess {
                write: true,
                via_map: None,
            },
            "poke",
            vec![b.clone().writes(0, 256)],
        )]);
        assert_eq!(a.verdict(FlowLintKind::HostSync), Verdict::Violation);

        // Writing through a read-only map is also a violation.
        let cmds = vec![
            FlowCommand::new(
                FlowOp::Map {
                    id: 3,
                    writable: false,
                },
                "map",
                vec![b.clone().reads(0, 256).preinit(true)],
            ),
            FlowCommand::new(
                FlowOp::HostAccess {
                    write: true,
                    via_map: Some(3),
                },
                "poke",
                vec![b.clone().writes(0, 256)],
            ),
        ];
        assert_eq!(
            analyze_flow(&cmds).verdict(FlowLintKind::HostSync),
            Verdict::Violation
        );

        // A host read inside a live read map is clean.
        let cmds = vec![
            FlowCommand::new(
                FlowOp::Map {
                    id: 4,
                    writable: false,
                },
                "map",
                vec![b.clone().reads(0, 256).preinit(true)],
            ),
            FlowCommand::new(
                FlowOp::HostAccess {
                    write: false,
                    via_map: Some(4),
                },
                "peek",
                vec![b.clone().may_reads(0, 256).preinit(true)],
            ),
            FlowCommand::new(FlowOp::Unmap { id: 4 }, "unmap", vec![b]),
        ];
        assert_eq!(
            analyze_flow(&cmds).verdict(FlowLintKind::HostSync),
            Verdict::Proven
        );
    }

    #[test]
    fn write_through_map_defines_bytes_at_unmap() {
        // map (rw) → host writes → unmap carries the must_write → kernel
        // read is defined.
        let b = BufUse::new(11, "in", FlagClass::ReadOnly, (0, 512));
        let cmds = vec![
            FlowCommand::new(
                FlowOp::Map {
                    id: 5,
                    writable: true,
                },
                "map",
                // Write-intent map: no read sets; the live range falls back
                // to the use's span.
                vec![b.clone()],
            ),
            FlowCommand::new(
                FlowOp::Unmap { id: 5 },
                "unmap",
                vec![b.clone().writes(0, 512)],
            ),
            launch("consumer", vec![b.reads(0, 512)]),
        ];
        let a = analyze_flow(&cmds);
        assert_eq!(a.verdict(FlowLintKind::ReadBeforeWrite), Verdict::Proven);
        // And the unmap→launch pair is a proven RAW dependence.
        assert!(a
            .edges_between(1, 2)
            .any(|e| e.kind == HazardKind::Raw && e.verdict == Verdict::Proven));
    }
}
