//! Ablation: SIMD width. The paper's machine is SSE 4.2 (4 × f32); this
//! sweep runs the same lane arithmetic at widths 1, 4 and 8 to show where
//! the implicit vectorizer's payoff comes from and what AVX-width lanes
//! would add.

use cl_bench::crit::{BenchmarkId, Criterion, Throughput};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::tune;
use cl_vec::{simd_apply2, VecF32};

const N: usize = 1 << 18;

fn width_sweep(c: &mut Criterion) {
    let a: Vec<f32> = (0..N).map(|i| (i % 97) as f32 * 0.25).collect();
    let b_in: Vec<f32> = (0..N).map(|i| (i % 89) as f32 * 0.5).collect();
    let mut out = vec![0.0f32; N];
    let mut g = c.benchmark_group("ablation/simd-width");
    tune(&mut g);
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function("scalar", |bench| {
        bench.iter(|| {
            for i in 0..N {
                out[i] = a[i] * b_in[i] + 0.5;
            }
            out[N - 1]
        });
    });
    g.bench_function(BenchmarkId::new("lanes", 4), |bench| {
        bench.iter(|| {
            simd_apply2::<4>(
                &a,
                &b_in,
                &mut out,
                |x, y| x.mul_add(y, VecF32::splat(0.5)),
                |x, y| x * y + 0.5,
            );
            out[N - 1]
        });
    });
    g.bench_function(BenchmarkId::new("lanes", 8), |bench| {
        bench.iter(|| {
            simd_apply2::<8>(
                &a,
                &b_in,
                &mut out,
                |x, y| x.mul_add(y, VecF32::splat(0.5)),
                |x, y| x * y + 0.5,
            );
            out[N - 1]
        });
    });

    // A dependence-bound body (the Figure 11 chain): lanes still help
    // because the chain packs across elements.
    g.bench_function("chain_scalar", |bench| {
        bench.iter(|| {
            for i in 0..N {
                let mut acc = a[i];
                for _ in 0..8 {
                    acc = acc * b_in[i] + 0.5;
                }
                out[i] = acc;
            }
            out[N - 1]
        });
    });
    g.bench_function(BenchmarkId::new("chain_lanes", 4), |bench| {
        bench.iter(|| {
            simd_apply2::<4>(
                &a,
                &b_in,
                &mut out,
                |x, y| {
                    let half = VecF32::splat(0.5);
                    let mut acc = x;
                    for _ in 0..8 {
                        acc = acc.mul_add(y, half);
                    }
                    acc
                },
                |x, y| {
                    let mut acc = x;
                    for _ in 0..8 {
                        acc = acc * y + 0.5;
                    }
                    acc
                },
            );
            out[N - 1]
        });
    });
    g.finish();
}

criterion_group!(benches, width_sweep);
criterion_main!(benches);
