//! Figure 4: Blackscholes workgroup-size sensitivity (native CPU). The
//! paper's point — long per-workitem work makes the CPU insensitive — shows
//! here as near-identical wall-clock across the Table V cases.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::apps::blackscholes;

fn blackscholes_wg(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig4/native");
    tune(&mut g);
    let grid = (128usize, 128usize);
    let options = 128 * 128 * 4; // 4 options per workitem via grid stride
    for (lx, ly) in [(16, 16), (1, 1), (1, 2), (2, 2), (2, 4)] {
        let built = blackscholes::build(&ctx, grid, options, Some((lx, ly)), 7);
        g.bench_with_input(
            BenchmarkId::new("blackscholes", format!("{lx}x{ly}")),
            &(lx, ly),
            |b, _| {
                b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, blackscholes_wg);
criterion_main!(benches);
