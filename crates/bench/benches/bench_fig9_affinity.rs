//! Figure 9: aligned vs misaligned dependent-kernel placement.
//!
//! Benchmarks the deterministic cache-hierarchy replay (aligned vs
//! misaligned mapping) — the plane that reproduces the paper's ~15%
//! wall-clock gap as a cycle count on any machine — plus the raw
//! simulator's access throughput.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cache_sim::{Hierarchy, HierarchyConfig};
use cl_bench::tune;

const CORES: usize = 8;
const SLICE: usize = 4096;

fn replay(shift: usize) -> f64 {
    let mut h = Hierarchy::new(HierarchyConfig::xeon_e5645(CORES));
    let elem = 4u64;
    let total = (CORES * SLICE) as u64;
    let (a, b, cbase, d) = (0u64, total * elem, 2 * total * elem, 3 * total * elem);
    for core in 0..CORES {
        let start = (core * SLICE) as u64;
        for i in start..start + SLICE as u64 {
            h.access(core, a + i * elem, false);
            h.access(core, b + i * elem, false);
            h.access(core, cbase + i * elem, true);
        }
    }
    for core in 0..CORES {
        let slice = (core + shift) % CORES;
        let start = (slice * SLICE) as u64;
        for i in start..start + SLICE as u64 {
            h.access(core, cbase + i * elem, false);
            h.access(core, d + i * elem, true);
        }
    }
    h.amat()
}

fn affinity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/cache-replay");
    tune(&mut g);
    for (label, shift) in [("aligned", 0usize), ("misaligned", 1)] {
        g.bench_with_input(BenchmarkId::new("placement", label), &shift, |b, &s| {
            b.iter(|| replay(s));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig9/simulator-throughput");
    tune(&mut g);
    g.bench_function("sequential_1M_accesses", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::xeon_e5645(4));
        b.iter(|| {
            for i in 0..1_000_000u64 {
                h.access((i % 4) as usize, i * 64 % (1 << 22), false);
            }
            h.total_stats().total()
        });
    });
    g.finish();
}

criterion_group!(benches, affinity);
criterion_main!(benches);
