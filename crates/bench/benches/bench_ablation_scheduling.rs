//! Ablation: the scheduling substrate itself. How expensive is one
//! workgroup dispatch, how do the pool's chunk-claiming strategies compare,
//! and how does the modeled per-group overhead knob move the Figure 1/3
//! curves?

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::tune;
use cl_pool::{ChunkSource, GuidedSource, PoolConfig, ThreadPool};
use perf_model::{CpuModel, CpuSpec, KernelProfile, Launch};

fn dispatch_overhead(c: &mut Criterion) {
    let pool = ThreadPool::new(PoolConfig::default()).unwrap();
    let mut g = c.benchmark_group("ablation/scheduling/dispatch");
    tune(&mut g);
    for n_tasks in [100usize, 1000, 10_000] {
        g.bench_with_input(
            BenchmarkId::new("empty_tasks", n_tasks),
            &n_tasks,
            |b, &n| {
                b.iter(|| {
                    pool.scope(|s| {
                        for _ in 0..n {
                            s.spawn(|| {});
                        }
                    });
                });
            },
        );
    }
    g.finish();
}

fn chunk_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/scheduling/chunking");
    tune(&mut g);
    const N: usize = 1 << 20;
    g.bench_function("fixed_chunks", |b| {
        b.iter(|| {
            let src = ChunkSource::new(N, 256);
            let mut total = 0usize;
            while let Some(r) = src.claim() {
                total += r.len();
            }
            total
        });
    });
    g.bench_function("guided_chunks", |b| {
        b.iter(|| {
            let src = GuidedSource::new(N, 8, 64);
            let mut total = 0usize;
            while let Some(r) = src.claim() {
                total += r.len();
            }
            total
        });
    });
    g.finish();
}

fn overhead_sensitivity(c: &mut Criterion) {
    // Sweep the modeled per-group dispatch cost: the knob that turns the
    // Figure 3 cliff on and off.
    let mut g = c.benchmark_group("ablation/scheduling/model-knob");
    tune(&mut g);
    for dispatch_ns in [0.0f64, 200.0, 2000.0] {
        let mut spec = CpuSpec::xeon_e5645();
        spec.group_dispatch_ns = dispatch_ns;
        let model = CpuModel::new(spec);
        let profile = KernelProfile::streaming(1.0, 8.0);
        g.bench_with_input(
            BenchmarkId::new("wg_sweep_eval", dispatch_ns as u64),
            &dispatch_ns,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for wg in [1usize, 10, 100, 1000] {
                        acc += model.kernel_time(&profile, Launch::new(1_000_000, wg));
                    }
                    acc
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    dispatch_overhead,
    chunk_strategies,
    overhead_sensitivity
);
criterion_main!(benches);
