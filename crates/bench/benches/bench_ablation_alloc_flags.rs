//! Ablation: do allocation flags change anything on a CPU device?
//! (Section III-D's negative result, verified as wall-clock: READ_ONLY /
//! WRITE_ONLY / READ_WRITE access flags and device vs pinned placement.)

use cl_bench::crit::{BenchmarkId, Criterion, Throughput};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::apps::square;
use ocl_rt::MemFlags;

fn alloc_flags(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    const N: usize = 1 << 18;

    // Kernel-side: the same kernel reading from buffers created with each
    // access-flag combination (square::build uses RO in / WO out; here we
    // compare against an all-READ_WRITE build done by hand).
    let mut g = c.benchmark_group("ablation/alloc-flags/kernel");
    tune(&mut g);
    let built_ro_wo = square::build(&ctx, N, 1, Some(512), 1);
    g.bench_function("ro_in_wo_out", |b| {
        b.iter(|| {
            q.enqueue_kernel(&built_ro_wo.kernel, built_ro_wo.range)
                .unwrap()
        });
    });
    {
        use cl_kernels::util::random_f32;
        use std::sync::Arc;
        let host = random_f32(1, N, -2.0, 2.0);
        let input = ctx.buffer_from(MemFlags::default(), &host).unwrap();
        let output = ctx.buffer::<f32>(MemFlags::default(), N).unwrap();
        let kernel: Arc<dyn ocl_rt::Kernel> = Arc::new(square::Square {
            input,
            output,
            n: N,
            items_per_wi: 1,
        });
        let range = ocl_rt::NDRange::d1(N).local1(512);
        g.bench_function("read_write_both", |b| {
            b.iter(|| q.enqueue_kernel(&kernel, range).unwrap());
        });
    }
    g.finish();

    // Transfer-side: placement (device vs pinned host) for the copy path.
    let mut g = c.benchmark_group("ablation/alloc-flags/placement");
    tune(&mut g);
    g.throughput(Throughput::Bytes((N * 4) as u64));
    let host = vec![1.0f32; N];
    for (label, flags) in [
        ("device", MemFlags::default()),
        ("pinned_host", MemFlags::ALLOC_HOST_PTR),
    ] {
        let buf = ctx.buffer::<f32>(flags, N).unwrap();
        g.bench_with_input(BenchmarkId::new("write_copy", label), &label, |b, _| {
            b.iter(|| q.write_buffer(&buf, 0, &host).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, alloc_flags);
criterion_main!(benches);
