//! Figure 6: the ILP microbenchmark, measured natively. The dependent-FMA
//! chains execute on the real out-of-order host core, so throughput rising
//! with ILP here is the paper's mechanism itself, not a model.

use cl_bench::crit::{BenchmarkId, Criterion, Throughput};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::ilp;

fn ilp_native(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig6/native");
    tune(&mut g);
    const N: usize = 1 << 14;
    const ROUNDS: usize = 256;
    g.throughput(Throughput::Elements(
        (N as u64) * ilp::flops_per_item(ROUNDS) as u64,
    ));
    for k in 1..=4usize {
        let built = ilp::build(&ctx, N, k, ROUNDS, 256, 1);
        g.bench_with_input(BenchmarkId::new("ilp", k), &k, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    g.finish();

    // The same kernels with the implicit vectorizer disabled (scalar
    // chains): the ILP effect in its purest form.
    let mut device = ocl_rt::Device::native_cpu(cl_pool::available_cores()).unwrap();
    device.set_vectorize(false);
    let ctx = ocl_rt::Context::new(device);
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig6/native-scalar");
    tune(&mut g);
    for k in 1..=4usize {
        let built = ilp::build(&ctx, N, k, ROUNDS, 256, 1);
        g.bench_with_input(BenchmarkId::new("ilp", k), &k, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, ilp_native);
criterion_main!(benches);
