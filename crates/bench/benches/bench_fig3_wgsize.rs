//! Figure 3 / Table V: workgroup-size sweep on the native CPU runtime.
//! The per-workgroup dispatch overhead is physically present here (one pool
//! task per group), so the sweep exposes the paper's CPU-side shape in
//! wall-clock.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::apps::{matrixmul, square, vectoradd};

fn wg_sweep(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig3/native");
    tune(&mut g);

    const N: usize = 100_000;
    for wg in [1usize, 10, 100, 1000] {
        let built = square::build(&ctx, N, 1, Some(wg), 1);
        g.bench_with_input(BenchmarkId::new("square", wg), &wg, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
        let built = vectoradd::build(&ctx, N, 1, Some(wg), 2);
        g.bench_with_input(BenchmarkId::new("vectoradd", wg), &wg, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    // NULL baseline.
    let built = square::build(&ctx, N, 1, None, 1);
    g.bench_function("square/NULL", |b| {
        b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
    });

    // Tiled matrix multiply across Table V tile sides.
    for tile in [1usize, 2, 4, 8, 16] {
        let built = matrixmul::build_tiled(&ctx, 64, 64, 64, tile, 3);
        g.bench_with_input(BenchmarkId::new("matrixmul_tile", tile), &tile, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, wg_sweep);
criterion_main!(benches);
