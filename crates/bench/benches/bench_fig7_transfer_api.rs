//! Figure 7: copy vs map transfer APIs on the native CPU device. The copy
//! path really moves every byte twice through a staging object; the map
//! path really returns a pointer.

use cl_bench::crit::{BenchmarkId, Criterion, Throughput};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use ocl_rt::MemFlags;

fn transfer_apis(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig7/native");
    tune(&mut g);
    for mib in [1usize, 4, 16] {
        let n = mib << 20 >> 2; // f32 count
        g.throughput(Throughput::Bytes((n * 4) as u64));
        let buf = ctx.buffer::<f32>(MemFlags::default(), n).unwrap();
        let host = vec![1.0f32; n];
        g.bench_with_input(BenchmarkId::new("write_copy", mib), &mib, |b, _| {
            b.iter(|| q.write_buffer(&buf, 0, &host).unwrap());
        });
        let mut out = vec![0.0f32; n];
        g.bench_with_input(BenchmarkId::new("read_copy", mib), &mib, |b, _| {
            b.iter(|| q.read_buffer(&buf, 0, &mut out).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("map", mib), &mib, |b, _| {
            b.iter(|| {
                let (m, _ev) = q.map_buffer(&buf).unwrap();
                m[0]
            });
        });
        // Placement dimension: pinned-host allocation behaves identically
        // on a CPU device (the paper's finding).
        let pinned = ctx.buffer::<f32>(MemFlags::ALLOC_HOST_PTR, n).unwrap();
        g.bench_with_input(BenchmarkId::new("write_copy_pinned", mib), &mib, |b, _| {
            b.iter(|| q.write_buffer(&pinned, 0, &host).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, transfer_apis);
criterion_main!(benches);
