//! Figure 5: Parboil workgroup-size sweep (native CPU), ×1 … ×16 of the
//! Table III defaults.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::parboil::{cp, mriq};

fn parboil_wg(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig5/native");
    tune(&mut g);

    // cenergy(X): 1x8 .. 16x8 over a 64x64 grid.
    for lx in [1usize, 2, 4, 8, 16] {
        let built = cp::build(&ctx, 64, 64, 128, 1, Some((lx, 8)), 1);
        g.bench_with_input(BenchmarkId::new("cenergy_x", lx), &lx, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    // computeQ: 16 .. 256.
    for wg in [16usize, 32, 64, 128, 256] {
        let built = mriq::build_q(&ctx, 1024, 128, 1, Some(wg), 2);
        g.bench_with_input(BenchmarkId::new("computeQ", wg), &wg, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    // computePhiMag: 32 .. 512.
    for wg in [32usize, 64, 128, 256, 512] {
        let built = mriq::build_phimag(&ctx, 3072, 1, Some(wg), 3);
        g.bench_with_input(BenchmarkId::new("computePhiMag", wg), &wg, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, parboil_wg);
criterion_main!(benches);
