//! Figure 10: OpenMP vs OpenCL execution of MBench1–8, measured natively.
//! The OpenMP plane runs scalar wherever the loop vectorizer refuses; the
//! OpenCL plane always runs the cross-workitem SIMD form.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::tune;
use cl_kernels::mbench;
use cl_kernels::util::random_f32;
use cl_vec::VectorizerPolicy;
use par_for::Team;

const N_OUT: usize = 1 << 16;

fn vectorization(c: &mut Criterion) {
    let team = Team::new(cl_pool::available_cores()).unwrap();
    let policy = VectorizerPolicy::default();
    let mut g = c.benchmark_group("fig10/native");
    tune(&mut g);
    for bench in mbench::all() {
        let n_in = bench.input_len(N_OUT);
        let a = random_f32(1, n_in, 0.1, 1.5);
        let b_in = random_f32(2, n_in, 0.1, 1.5);
        let mut out = vec![0.0f32; N_OUT];
        g.bench_with_input(
            BenchmarkId::new("openmp", bench.name),
            &bench.id,
            |bencher, _| {
                bencher.iter(|| bench.run_openmp(&team, &a, &b_in, &mut out, policy));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("opencl", bench.name),
            &bench.id,
            |bencher, _| {
                bencher.iter(|| bench.run_opencl_plane(&team, &a, &b_in, &mut out));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, vectorization);
criterion_main!(benches);
