//! Figure 8: Parboil transfer footprints, host→device and device→host,
//! copy vs map, on the native CPU device.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use ocl_rt::MemFlags;

/// `(benchmark, f32s uploaded, f32s downloaded)` per Table III geometry.
const FOOTPRINTS: &[(&str, usize, usize)] = &[
    ("CP", 4 * 4096, 64 * 512),
    ("MRI-Q", 3 * 32_768 + 3 * 2048 + 2 * 3072, 2 * 32_768),
    ("MRI-FHD", 3 * 32_768 + 3 * 2048 + 4 * 3072, 2 * 32_768),
];

fn parboil_transfers(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig8/native");
    tune(&mut g);
    for &(name, up, down) in FOOTPRINTS {
        let inputs = ctx.buffer::<f32>(MemFlags::default(), up).unwrap();
        let outputs = ctx.buffer::<f32>(MemFlags::default(), down).unwrap();
        let host_up = vec![0.5f32; up];
        let mut host_down = vec![0.0f32; down];

        g.bench_with_input(BenchmarkId::new("h2d_copy", name), &name, |b, _| {
            b.iter(|| q.write_buffer(&inputs, 0, &host_up).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("h2d_map", name), &name, |b, _| {
            b.iter(|| {
                let (mut m, _ev) = q.map_buffer_mut(&inputs).unwrap();
                m[0] = 0.5;
            });
        });
        g.bench_with_input(BenchmarkId::new("d2h_copy", name), &name, |b, _| {
            b.iter(|| q.read_buffer(&outputs, 0, &mut host_down).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("d2h_map", name), &name, |b, _| {
            b.iter(|| {
                let (m, _ev) = q.map_buffer(&outputs).unwrap();
                m[0]
            });
        });
    }
    g.finish();
}

criterion_group!(benches, parboil_transfers);
criterion_main!(benches);
