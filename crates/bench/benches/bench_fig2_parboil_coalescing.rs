//! Figure 2: Parboil kernels with 1×, 2×, 4× workload per workitem (CPU).

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::parboil::{cp, mriq};

fn parboil_coalescing(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig2/native");
    tune(&mut g);
    for factor in [1usize, 2, 4] {
        let built = cp::build(&ctx, 64, 64, 128, factor, None, 1);
        g.bench_with_input(BenchmarkId::new("cenergy", factor), &factor, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
        let built = mriq::build_phimag(&ctx, 3072, factor, None, 2);
        g.bench_with_input(
            BenchmarkId::new("computePhiMag", factor),
            &factor,
            |b, _| {
                b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
            },
        );
        let built = mriq::build_q(&ctx, 1024, 128, factor, None, 3);
        g.bench_with_input(BenchmarkId::new("computeQ", factor), &factor, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, parboil_coalescing);
criterion_main!(benches);
