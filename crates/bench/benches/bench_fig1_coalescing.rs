//! Figure 1 / Table IV: throughput vs workload per workitem.
//!
//! Native plane: Square and VectorAdd launched through `ocl-rt` with 1×,
//! 10×, 100×, 1000× coalescing (constant total work). Modeled plane: the
//! deterministic CPU/GPU evaluation, benchmarked for evaluation cost.

use cl_bench::crit::{BenchmarkId, Criterion};
use cl_bench::{criterion_group, criterion_main};

use cl_bench::{native_ctx, tune};
use cl_kernels::apps::{square, vectoradd};
use perf_model::{CpuModel, CpuSpec, GpuModel, GpuSpec, KernelProfile, Launch};

const N: usize = 100_000;

fn native(c: &mut Criterion) {
    let ctx = native_ctx();
    let q = ctx.queue();
    let mut g = c.benchmark_group("fig1/native");
    tune(&mut g);
    for factor in [1usize, 10, 100, 1000] {
        let built = square::build(&ctx, N, factor, None, 1);
        g.bench_with_input(BenchmarkId::new("square", factor), &factor, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
        let built = vectoradd::build(&ctx, N, factor, None, 2);
        g.bench_with_input(BenchmarkId::new("vectoradd", factor), &factor, |b, _| {
            b.iter(|| q.enqueue_kernel(&built.kernel, built.range).unwrap());
        });
    }
    g.finish();
}

fn modeled(c: &mut Criterion) {
    let cpu = CpuModel::new(CpuSpec::xeon_e5645());
    let gpu = GpuModel::new(GpuSpec::gtx580());
    let mut g = c.benchmark_group("fig1/model-eval");
    tune(&mut g);
    g.bench_function("cpu+gpu sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for factor in [1usize, 10, 100, 1000] {
                let p = KernelProfile::streaming(1.0, 8.0).coalesced(factor);
                let launch = Launch::new((10_000_000 / factor).max(1), 500);
                acc += cpu.kernel_time(&p, launch) + gpu.kernel_time(&p, launch);
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, native, modeled);
criterion_main!(benches);
