//! A miniature Criterion-compatible measurement harness.
//!
//! The workspace builds offline, so the benches cannot depend on the
//! `criterion` crate. This module keeps the subset of its API the bench
//! targets use — groups, `BenchmarkId`, throughput annotation, warm-up /
//! measurement-time / sample-count tuning — backed by a simple
//! warmup-then-sample wall-clock loop. Results print one line per
//! benchmark: median, min and max time per iteration, plus derived
//! throughput when annotated.
//!
//! `CL_BENCH_SMOKE=1` overrides every group's tuning to a compile+smoke
//! profile (3 samples, 10 ms warm-up, 50 ms measurement) so CI can prove
//! each bench target builds and runs without paying full measurement time.

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Is the smoke profile requested? Read once; the answer is process-wide.
fn smoke() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var_os("CL_BENCH_SMOKE").is_some_and(|v| v == "1"))
}

/// Opaque value sink (re-exported name-compatibly with criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement marker types (only wall-clock time is supported).
pub mod measurement {
    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// A `group/function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Throughput annotation: per-iteration volume for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    ran: usize,
}

impl Criterion {
    /// Build from the process environment; any non-flag CLI argument is a
    /// substring filter on benchmark names (cargo's `--bench` flag and
    /// friends are ignored).
    pub fn from_env() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter, ran: 0 }
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut g = self.benchmark_group("");
        g.run(&id.render(), f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Print a closing line (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) run", self.ran);
    }
}

/// A group of related benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = usize::max(n, 2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.render(), f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.render(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, bench_name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            bench_name.to_string()
        } else {
            format!("{}/{}", self.name, bench_name)
        };
        if !self.criterion.matches(&full) {
            return;
        }
        // The smoke profile wins over per-group tuning: the targets dial in
        // real measurement budgets, CI only needs "builds and runs".
        let mut bencher = if smoke() {
            Bencher {
                warm_up: Duration::from_millis(10),
                measurement: Duration::from_millis(50),
                sample_size: 3,
                stats: None,
            }
        } else {
            Bencher {
                warm_up: self.warm_up,
                measurement: self.measurement,
                sample_size: self.sample_size,
                stats: None,
            }
        };
        f(&mut bencher);
        let Some(stats) = bencher.stats else {
            println!("{full:<50} (no measurement: closure never called iter)");
            return;
        };
        self.criterion.ran += 1;
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(b) => format!(
                "  {:>10}/s",
                human_bytes(b as f64 / (stats.median_ns / 1e9))
            ),
            Throughput::Elements(e) => {
                format!("  {:>10.3e} elem/s", e as f64 / (stats.median_ns / 1e9))
            }
        });
        println!(
            "{full:<50} time: [{} {} {}]{}",
            human_time(stats.min_ns),
            human_time(stats.median_ns),
            human_time(stats.max_ns),
            rate.unwrap_or_default()
        );
    }
}

struct Stats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Measure `f`: warm up, pick an iteration batch that fits the
    /// measurement budget, then time `sample_size` batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Batch size so that sample_size batches fill the measurement time.
        let budget_ns = self.measurement.as_nanos() as f64;
        let per_sample = budget_ns / self.sample_size as f64;
        let batch = u64::max(1, (per_sample / est_ns.max(1.0)) as u64);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.stats = Some(Stats {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("nonempty"),
        });
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_bytes(bps: f64) -> String {
    if bps < 1e3 {
        format!("{bps:.0} B")
    } else if bps < 1e6 {
        format!("{:.1} KiB", bps / 1024.0)
    } else if bps < 1e9 {
        format!("{:.1} MiB", bps / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bps / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Define a benchmark group function from a list of bench functions
/// (compatible with `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::crit::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running the listed groups (compatible with
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::crit::Criterion::from_env();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_stats() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut hits = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
            })
        });
        g.finish();
        assert!(hits > 0);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            ran: 0,
        };
        let mut g = c.benchmark_group("t");
        g.bench_function("skipped", |b| b.iter(|| ()));
        g.finish();
        assert_eq!(c.ran, 0);
    }

    #[test]
    fn ids_render_with_parameters() {
        assert_eq!(BenchmarkId::new("f", 42).render(), "f/42");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn humanized_units() {
        assert!(human_time(12.0).contains("ns"));
        assert!(human_time(12_000.0).contains("µs"));
        assert!(human_time(12_000_000.0).contains("ms"));
        assert!(human_bytes(2e9).contains("GiB"));
    }
}
