//! # cl-bench — Criterion benchmarks, one per table/figure
//!
//! Each `benches/bench_figN_*.rs` target regenerates the native-plane
//! measurement behind the corresponding figure of the paper at
//! benchmark-friendly sizes (the full-size deterministic regeneration lives
//! in `cl-harness`, run via the `repro` binary). Three `bench_ablation_*`
//! targets probe design choices DESIGN.md calls out: allocation flags,
//! scheduling granularity, and SIMD width.
//!
//! This library crate only hosts shared helpers; the measurements live in
//! the bench targets.

use std::time::Duration;

use ocl_rt::{Context, Device};

pub mod crit;

/// A native CPU context sized to the host.
pub fn native_ctx() -> Context {
    Context::new(Device::native_cpu(cl_pool::available_cores()).unwrap())
}

/// Benchmark-group defaults: short, stable, CI-friendly.
pub fn tune(group: &mut crate::crit::BenchmarkGroup<'_>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
}
